//! Determinism suite for the batched evaluation engine (DESIGN.md §13).
//!
//! Three contracts, all bitwise:
//! 1. `BatchEvaluator::eval_many` ≡ per-mapping `evaluate()` on arbitrary
//!    instances and batches — every field of every report.
//! 2. `eval_many_parallel` is worker-count invariant (1/2/4 workers).
//! 3. The solver hot-path rewiring onto `EvalTables` left every solver's
//!    output mapping and objective bit-identical to the pre-rewire values
//!    (pinned goldens captured before the batch engine existed).

use obm::mapping::algorithms::{
    BalancedGreedy, BranchAndBound, HybridSssSa, Mapper, MonteCarlo, RandomMapper,
    SimulatedAnnealing, SortSelectSwap,
};
use obm::mapping::{evaluate, BatchEvaluator, Mapping, ObmInstance};
use obm::model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use obm::workload::{PaperConfig, WorkloadBuilder};
use proptest::prelude::*;

/// Strategy: a random OBM instance on an n×n mesh (n ∈ 2..=5) with 2–4
/// applications and positive rates, possibly fewer threads than tiles.
fn arb_instance() -> impl Strategy<Value = ObmInstance> {
    (2usize..=5, 2usize..=4, 0usize..=3)
        .prop_flat_map(|(n, apps, spare)| {
            let tiles_total = n * n;
            let threads = tiles_total.saturating_sub(spare).max(apps);
            (
                Just(n),
                Just(apps),
                Just(threads),
                proptest::collection::vec(0.01f64..10.0, threads),
                proptest::collection::vec(0.0f64..2.0, threads),
            )
        })
        .prop_map(|(n, apps, threads, c, m)| {
            let mesh = Mesh::square(n);
            let mcs = MemoryControllers::corners(&mesh);
            let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
            let mut bounds = vec![0];
            for a in 1..=apps {
                bounds.push(a * threads / apps);
            }
            bounds.dedup();
            if bounds.len() < 2 {
                bounds.push(threads);
            }
            *bounds.last_mut().unwrap() = threads;
            ObmInstance::new(tl, bounds, c, m)
        })
}

/// Draw `count` random mappings from a seeded RNG.
fn random_batch(inst: &ObmInstance, count: usize, seed: u64) -> Vec<Mapping> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| RandomMapper::draw(inst, &mut rng))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `eval_many` is bit-identical to per-mapping `evaluate()` — every
    /// report field, down to the sign of zero.
    #[test]
    fn eval_many_matches_scratch_bitwise(
        inst in arb_instance(),
        count in 1usize..120,
        seed in any::<u64>(),
    ) {
        let batch = random_batch(&inst, count, seed);
        let be = BatchEvaluator::new(&inst);
        let got = be.eval_many(&batch);
        prop_assert_eq!(got.len(), batch.len());
        for (r, m) in got.iter().zip(&batch) {
            let want = evaluate(&inst, m);
            prop_assert_eq!(r.per_app.len(), want.per_app.len());
            for (a, b) in r.per_app.iter().zip(&want.per_app) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(r.max_apl.to_bits(), want.max_apl.to_bits());
            prop_assert_eq!(r.min_apl.to_bits(), want.min_apl.to_bits());
            prop_assert_eq!(r.argmax, want.argmax);
            prop_assert_eq!(r.dev_apl.to_bits(), want.dev_apl.to_bits());
            prop_assert_eq!(r.g_apl.to_bits(), want.g_apl.to_bits());
        }
    }

    /// `eval_many_into` recycling a live report buffer across batches of
    /// different sizes (shrinking and growing) produces the same bits as
    /// a fresh `eval_many` of each batch.
    #[test]
    fn eval_many_into_recycled_buffer_matches_fresh(
        inst in arb_instance(),
        count_a in 1usize..120,
        count_b in 1usize..120,
        seed in any::<u64>(),
    ) {
        let be = BatchEvaluator::new(&inst);
        let mut reports = Vec::new();
        for count in [count_a, count_b, count_a] {
            let batch = random_batch(&inst, count, seed ^ count as u64);
            be.eval_many_into(&batch, &mut reports);
            let fresh = be.eval_many(&batch);
            prop_assert_eq!(reports.len(), fresh.len());
            for (r, w) in reports.iter().zip(&fresh) {
                prop_assert_eq!(r.per_app.len(), w.per_app.len());
                for (a, b) in r.per_app.iter().zip(&w.per_app) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                prop_assert_eq!(r.max_apl.to_bits(), w.max_apl.to_bits());
                prop_assert_eq!(r.min_apl.to_bits(), w.min_apl.to_bits());
                prop_assert_eq!(r.argmax, w.argmax);
                prop_assert_eq!(r.dev_apl.to_bits(), w.dev_apl.to_bits());
                prop_assert_eq!(r.g_apl.to_bits(), w.g_apl.to_bits());
            }
        }
    }

    /// The parallel chunked path returns the same bits at any worker count.
    #[test]
    fn parallel_eval_is_worker_count_invariant(
        inst in arb_instance(),
        count in 1usize..600,
        seed in any::<u64>(),
    ) {
        let batch = random_batch(&inst, count, seed);
        let be = BatchEvaluator::new(&inst);
        let sequential = be.eval_many(&batch);
        for workers in [1, 2, 4] {
            let par = be.eval_many_parallel(&batch, workers);
            prop_assert_eq!(par.len(), sequential.len());
            for (a, b) in par.iter().zip(&sequential) {
                prop_assert_eq!(a.max_apl.to_bits(), b.max_apl.to_bits());
                prop_assert_eq!(a.g_apl.to_bits(), b.g_apl.to_bits());
                prop_assert_eq!(a.dev_apl.to_bits(), b.dev_apl.to_bits());
                for (x, y) in a.per_app.iter().zip(&b.per_app) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned goldens: solver outputs captured BEFORE the hot paths were rewired
// onto `EvalTables`. The rewiring contract is bit-identity, so these must
// never change. If a legitimate change to an algorithm (not the evaluator)
// moves one, re-capture and justify in the commit message.
// ---------------------------------------------------------------------------

fn c1_instance() -> ObmInstance {
    let (workload, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = workload.rate_vectors();
    ObmInstance::new(tiles, workload.boundaries(), c, m)
}

fn fig5_instance() -> ObmInstance {
    let mesh = Mesh::square(4);
    let mcs = MemoryControllers::corners(&mesh);
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
    let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
    ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16])
}

/// Assert a solver's output against its pre-rewire capture: the objective
/// bits AND the full tile assignment.
fn assert_golden(name: &str, inst: &ObmInstance, m: &Mapping, obj_bits: u64, tiles: &[usize]) {
    let got: Vec<usize> = m.as_slice().iter().map(|t| t.index()).collect();
    assert_eq!(got, tiles, "{name}: mapping drifted from pre-rewire golden");
    let v = evaluate(inst, m).max_apl;
    assert_eq!(
        v.to_bits(),
        obj_bits,
        "{name}: objective drifted (got {v}, bits 0x{:016x})",
        v.to_bits()
    );
    // The batch engine must agree with the scratch evaluator on the golden.
    let b = BatchEvaluator::new(inst).eval_one(m).max_apl;
    assert_eq!(
        b.to_bits(),
        obj_bits,
        "{name}: eval_one disagrees with evaluate"
    );
}

#[test]
fn golden_sss_c1() {
    let c1 = c1_instance();
    let m = SortSelectSwap::default().map(&c1, 0);
    assert_golden(
        "sss_c1",
        &c1,
        &m,
        0x403649c022b803ea,
        &[
            28, 17, 37, 14, 6, 36, 31, 44, 18, 55, 21, 12, 54, 51, 7, 47, 27, 26, 34, 38, 43, 33,
            46, 56, 2, 32, 50, 40, 57, 58, 24, 60, 19, 20, 52, 25, 30, 41, 9, 10, 8, 49, 5, 39, 48,
            1, 4, 0, 35, 45, 22, 42, 11, 29, 13, 53, 63, 59, 61, 3, 15, 23, 16, 62,
        ],
    );
}

#[test]
fn golden_sa_5k_c1() {
    let c1 = c1_instance();
    let sa = SimulatedAnnealing {
        iterations: 5_000,
        ..SimulatedAnnealing::default()
    };
    assert_golden(
        "sa5k_c1_seed1",
        &c1,
        &sa.map(&c1, 1),
        0x40365dc1edd9ccce,
        &[
            27, 50, 29, 24, 0, 38, 4, 43, 33, 32, 20, 11, 16, 21, 7, 25, 42, 19, 52, 40, 18, 44,
            12, 23, 3, 17, 61, 31, 46, 39, 14, 59, 28, 36, 10, 45, 22, 53, 60, 34, 54, 8, 48, 6,
            56, 63, 1, 57, 35, 51, 30, 26, 41, 37, 58, 9, 15, 13, 49, 2, 55, 47, 5, 62,
        ],
    );
    assert_golden(
        "sa5k_c1_seed2",
        &c1,
        &sa.map(&c1, 2),
        0x40365c7d72dd52f6,
        &[
            20, 52, 30, 5, 32, 41, 22, 36, 44, 8, 13, 12, 45, 24, 39, 58, 19, 43, 29, 42, 51, 21,
            10, 3, 60, 17, 9, 55, 15, 63, 53, 47, 27, 28, 38, 34, 33, 61, 40, 54, 56, 1, 11, 62, 7,
            59, 49, 48, 35, 37, 50, 14, 26, 18, 46, 25, 0, 16, 31, 6, 2, 4, 57, 23,
        ],
    );
}

#[test]
fn golden_monte_carlo_c1() {
    let c1 = c1_instance();
    let mc = MonteCarlo {
        samples: 2_000,
        workers: 1,
    };
    assert_golden(
        "mc2k_c1_seed0",
        &c1,
        &mc.map(&c1, 0),
        0x4036e764db9593db,
        &[
            45, 30, 25, 43, 4, 58, 48, 12, 32, 34, 41, 29, 63, 6, 13, 38, 28, 19, 56, 24, 9, 14,
            10, 39, 44, 59, 16, 17, 8, 46, 18, 37, 26, 3, 52, 57, 20, 31, 27, 55, 53, 62, 21, 49,
            7, 50, 5, 23, 40, 22, 35, 2, 42, 1, 51, 60, 0, 33, 36, 11, 61, 47, 54, 15,
        ],
    );
    let mc4 = MonteCarlo {
        samples: 2_000,
        workers: 4,
    };
    assert_golden(
        "mc2k4w_c1_seed0",
        &c1,
        &mc4.map(&c1, 0),
        0x4036bff5856cbf62,
        &[
            33, 59, 20, 21, 54, 49, 58, 44, 7, 14, 28, 46, 16, 19, 15, 25, 50, 9, 42, 30, 53, 34,
            37, 2, 35, 27, 62, 6, 1, 31, 3, 39, 18, 12, 23, 22, 17, 38, 13, 4, 56, 32, 52, 10, 0,
            8, 11, 40, 45, 48, 24, 41, 26, 51, 43, 5, 61, 55, 36, 29, 57, 47, 63, 60,
        ],
    );
}

#[test]
fn golden_greedy_and_hybrid_c1() {
    let c1 = c1_instance();
    assert_golden(
        "greedy_c1",
        &c1,
        &BalancedGreedy.map(&c1, 0),
        0x4036c7f51edbf0b0,
        &[
            27, 34, 19, 24, 1, 33, 49, 10, 11, 48, 18, 41, 2, 3, 0, 40, 28, 20, 37, 12, 21, 38, 13,
            6, 47, 4, 46, 5, 7, 55, 31, 54, 35, 26, 43, 42, 25, 51, 50, 17, 16, 32, 59, 9, 57, 8,
            58, 56, 36, 29, 45, 44, 52, 30, 22, 53, 23, 14, 39, 60, 63, 61, 62, 15,
        ],
    );
    let hy = HybridSssSa {
        sa_iterations: 5_000,
        ..HybridSssSa::default()
    };
    // Hybrid converges to the SSS fixed point on C1 — same golden as sss_c1.
    assert_golden(
        "hybrid5k_c1_seed1",
        &c1,
        &hy.map(&c1, 1),
        0x403649c022b803ea,
        &[
            28, 17, 37, 14, 6, 36, 31, 44, 18, 55, 21, 12, 54, 51, 7, 47, 27, 26, 34, 38, 43, 33,
            46, 56, 2, 32, 50, 40, 57, 58, 24, 60, 19, 20, 52, 25, 30, 41, 9, 10, 8, 49, 5, 39, 48,
            1, 4, 0, 35, 45, 22, 42, 11, 29, 13, 53, 63, 59, 61, 3, 15, 23, 16, 62,
        ],
    );
}

#[test]
fn golden_branch_and_bound_fig5() {
    let f5 = fig5_instance();
    let bnb = BranchAndBound {
        node_budget: 200_000,
    };
    assert_golden(
        "bnb_fig5",
        &f5,
        &bnb.map(&f5, 0),
        0x4024accccccccccd,
        &[3, 2, 11, 6, 12, 4, 13, 9, 0, 1, 8, 5, 15, 7, 14, 10],
    );
}
