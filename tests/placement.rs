//! Placement co-optimization integration tests (DESIGN.md §15).
//!
//! 1. a golden pin of the analytic `TileLatencies::for_layout` arrays for
//!    a non-corner controller placement — any drift in the layout-aware
//!    latency model breaks reproducibility of every placement result;
//! 2. a property test that the analytic `TM(k)` equals the cycle-level
//!    simulator's uncontended memory latency for *arbitrary* valid
//!    placements on both mesh and torus (the generalized Eq. (2) check:
//!    the two implementations share nothing but the layout);
//! 3. typed [`PlacementError`] construction failures surfacing through
//!    the public API;
//! 4. a pinned deterministic search win: on a fixed 4×4 configuration the
//!    exhaustive outer search beats the paper's corner default, and the
//!    simulator confirms the analytic ranking end to end.

use obm::mapping::{co_optimize, evaluate, sss_inner, ObmInstance, PlacementOptions, SearchMode};
use obm::model::{
    ChipLayout, LatencyParams, MemoryControllers, Mesh, PlacementError, TileId, TileLatencies,
    Topology,
};
use obm::sim::{Network, Schedule, SimConfig, SourceSpec, TrafficSpec};
use proptest::prelude::*;

/// Golden pin: 4×4 mesh, controllers at interior tiles 5 and 10 (0-based),
/// Table 2 parameters. Values captured from the PR 8 implementation.
#[test]
fn golden_non_corner_placement_latencies() {
    let mesh = Mesh::square(4);
    let mcs = MemoryControllers::try_custom(&mesh, vec![TileId(5), TileId(10)])
        .expect("interior tiles are a valid placement");
    let layout = ChipLayout::try_new(mesh, Topology::Mesh, mcs, Vec::new())
        .expect("no failed links, valid controllers");
    let tl = TileLatencies::for_layout(&layout, LatencyParams::paper_table2());
    let golden = [
        (0usize, 14.8125, 11.0),
        (5, 10.8125, 0.0), // a controller tile: zero memory distance
        (7, 12.8125, 11.0),
        (15, 14.8125, 11.0),
    ];
    for (k, tc, tm) in golden {
        assert!(
            (tl.tc(TileId(k)) - tc).abs() < 1e-12,
            "TC({k}) = {}, want {tc}",
            tl.tc(TileId(k))
        );
        assert!(
            (tl.tm(TileId(k)) - tm).abs() < 1e-12,
            "TM({k}) = {}, want {tm}",
            tl.tm(TileId(k))
        );
    }
}

/// Strategy: an arbitrary chip layout (mesh or torus, 2..=4 per side,
/// 1–3 controllers anywhere) plus a source tile.
fn arb_layout_case() -> impl Strategy<Value = (usize, usize, bool, Vec<usize>, usize)> {
    (2usize..=4, 2usize..=4, any::<bool>()).prop_flat_map(|(rows, cols, torus)| {
        let tiles = rows * cols;
        (
            Just(rows),
            Just(cols),
            Just(torus),
            proptest::collection::vec(0..tiles, 1..=3).prop_map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            }),
            0..tiles,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The analytic TM(k) from `for_layout` must equal the simulator's
    /// uncontended memory latency from tile k, for any placement and
    /// either topology. Analytic side: Eq. (2) with 3-cycle routers,
    /// 1-cycle links and single-flit serialization. Simulator side: one
    /// low-rate source, no cache traffic, short packets only.
    #[test]
    fn tm_matches_uncontended_simulator_latency(case in arb_layout_case()) {
        let (rows, cols, torus, mcs, src) = case;
        let mesh = Mesh::new(rows, cols);
        let topology = if torus { Topology::Torus } else { Topology::Mesh };
        let controllers =
            MemoryControllers::try_custom(&mesh, mcs.into_iter().map(TileId).collect())
                .expect("generated tiles are in range");
        let layout = ChipLayout::try_new(mesh, topology, controllers, Vec::new())
            .expect("valid layout");
        let params = LatencyParams {
            td_r: 3.0,
            td_w: 1.0,
            td_q: 0.0,
            td_s_cache: 1.0,
            td_s_mem: 1.0,
        };
        let tl = TileLatencies::for_layout(&layout, params);

        let mut cfg = SimConfig::for_layout(&layout).expect("no failed links");
        cfg.long_fraction = 0.0; // single-flit packets: serialization = 1
        cfg.warmup_cycles = 200;
        cfg.measure_cycles = 5_000;
        cfg.seed = 7;
        let source = SourceSpec {
            tile: TileId(src),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01),
        };
        let traffic = TrafficSpec::new(vec![source], 1).expect("valid traffic");
        let report = Network::new(cfg, traffic).expect("valid config").run();
        prop_assert!(report.fully_drained);

        let expected = tl.tm(TileId(src));
        if expected == 0.0 {
            // The source hosts a controller: memory requests never enter
            // the network, so any recorded packets have zero latency.
            prop_assert!(report.memory.packets == 0 || report.memory.apl() == 0.0);
        } else {
            prop_assert!(report.memory.packets > 0, "no memory packets generated");
            prop_assert!(
                (report.memory.apl() - expected).abs() < 1e-9,
                "sim APL {} vs analytic TM {} ({}x{} {:?} mcs {:?} src {})",
                report.memory.apl(), expected, rows, cols, topology,
                layout.controllers().tiles(), src
            );
        }
    }
}

/// Typed construction failures through the public API.
#[test]
fn placement_errors_are_typed_and_readable() {
    let mesh = Mesh::square(4);

    let e = MemoryControllers::try_custom(&mesh, Vec::new()).unwrap_err();
    assert_eq!(e, PlacementError::NoControllers);

    let e = MemoryControllers::try_custom(&mesh, vec![TileId(16)]).unwrap_err();
    assert!(
        matches!(e, PlacementError::ControllerOutOfRange { .. }),
        "{e:?}"
    );
    assert!(e.to_string().contains("16"), "{e}");

    let mcs = MemoryControllers::corners(&mesh);
    let e = ChipLayout::try_new(
        mesh,
        Topology::Mesh,
        mcs.clone(),
        vec![(TileId(0), TileId(0))],
    )
    .unwrap_err();
    assert_eq!(e, PlacementError::SelfLink(0));

    let e = ChipLayout::try_new(
        mesh,
        Topology::Mesh,
        mcs.clone(),
        vec![(TileId(0), TileId(5))],
    )
    .unwrap_err();
    assert!(matches!(e, PlacementError::LinkNotAdjacent { .. }), "{e:?}");

    // Cutting every link of tile 0 disconnects the chip.
    let e = ChipLayout::try_new(
        mesh,
        Topology::Mesh,
        mcs,
        vec![(TileId(0), TileId(1)), (TileId(0), TileId(4))],
    )
    .unwrap_err();
    assert!(matches!(e, PlacementError::Disconnected { .. }), "{e:?}");
}

/// The fixed 4×4 configuration of `experiments placement`: four 4-thread
/// apps, app 4 the most memory-intensive.
fn sweep_rates() -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    let c: Vec<f64> = (0..16).map(|j| 1.0 + 0.5 * (j % 4) as f64).collect();
    let m: Vec<f64> = (0..16).map(|j| 0.2 + 0.15 * (j / 4) as f64).collect();
    (c, m, vec![0, 4, 8, 12, 16])
}

/// Pinned search win: the exhaustive outer search strictly beats the
/// corner default on this configuration, deterministically, and the
/// cycle-level simulator agrees with the analytic ranking.
#[test]
fn exhaustive_search_win_is_pinned_and_sim_validated() {
    let mesh = Mesh::square(4);
    let params = LatencyParams::paper_table2();
    let (c, m, bounds) = sweep_rates();
    let corners = TileLatencies::compute(&mesh, &MemoryControllers::corners(&mesh), params);
    let inst = ObmInstance::new(corners, bounds.clone(), c.clone(), m.clone());

    let mut opts = PlacementOptions::new(4);
    opts.mode = SearchMode::Exhaustive;
    let run = || co_optimize(&inst, &mesh, &opts, sss_inner).expect("valid search");
    let out = run();

    // Pinned result (captured from the PR 8 implementation, seed 1).
    assert_eq!(
        out.layout.controllers().tiles(),
        &[TileId(0), TileId(2), TileId(9), TileId(11)]
    );
    assert!(
        (out.objective - 11.165_064_102_564_102).abs() < 1e-9,
        "{}",
        out.objective
    );
    assert!(
        (out.baseline_objective - 11.344_551_282_051_283).abs() < 1e-9,
        "{}",
        out.baseline_objective
    );
    assert!(
        out.objective < out.baseline_objective,
        "must strictly beat corners"
    );
    assert!(out.exhaustive);
    assert_eq!(out.evaluated, 252); // canonical C(16,4) orbits under D4

    // Deterministic: a second run reproduces the outcome exactly.
    let again = run();
    assert_eq!(out.layout.controllers(), again.layout.controllers());
    assert_eq!(out.mapping, again.mapping);
    assert!((out.objective - again.objective).abs() == 0.0);

    // Cross-validation: simulate both layouts under their own optimized
    // mappings; the best-found layout must also win in the simulator.
    let sim_max_apl = |layout: &ChipLayout, mapping: &obm::mapping::Mapping| {
        let il = ObmInstance::new(
            TileLatencies::for_layout(layout, params),
            bounds.clone(),
            c.clone(),
            m.clone(),
        );
        let mut cfg = SimConfig::for_layout(layout).expect("no failed links");
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 5_000;
        cfg.seed = 0xBEEF;
        let traffic = obm::mapping::traffic_spec(&il, mapping);
        let report = Network::new(cfg, traffic).expect("valid config").run();
        assert!(report.fully_drained);
        // Analytic and simulated rankings are both computed per app.
        let analytic = evaluate(&il, mapping);
        assert!(analytic.max_apl > 0.0);
        report
            .groups
            .iter()
            .map(|g| g.apl())
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let sim_corner = sim_max_apl(&out.baseline_layout, &out.baseline_mapping);
    let sim_best = sim_max_apl(&out.layout, &out.mapping);
    assert!(
        sim_best < sim_corner,
        "simulator must confirm the placement win: best {sim_best} vs corner {sim_corner}"
    );
}
