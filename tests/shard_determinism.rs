//! Sharded-simulation determinism tests (DESIGN.md §16).
//!
//! The row-band sharded simulator must be **bit-identical** to the
//! serial path for any shard count — same [`SimReport`], same telemetry
//! records, same RNG stream. These tests pin that contract on the
//! pinned 8×8 C1 scenario (shards 1/2/4, report + windows + heatmap +
//! flow + per-packet records), on a torus with YX routing, under
//! geometric injection with the event-horizon fast-forward (clamp
//! interaction), through the controlled-run path, and property-based
//! over random loads and shard counts.
//!
//! `OBM_SIM_SHARDS` (the CLI/env knob) doubles as the *maximum verified
//! shard count* here, so CI can force e.g. 4 while a many-core host can
//! verify more.
//!
//! [`SimReport`]: obm::sim::SimReport

use obm::model::{ChipLayout, MemoryControllers, Mesh, TileId, Topology};
use obm::sim::{
    env_shards, ConfigError, InjectionProcess, Network, RoutingKind, Schedule, SimConfig,
    SimReport, SourceCounters, SourceSpec, SwapController, TrafficSpec,
};
use obm::telemetry::{RingSink, WindowRecord};
use proptest::prelude::*;

/// Highest shard count the suite verifies: `OBM_SIM_SHARDS` if set,
/// otherwise 4 (the CI-pinned value).
fn max_shards() -> usize {
    env_shards().unwrap_or(4)
}

/// The pinned 8×8 C1 scenario: paper-default network, uniform C1-rate
/// traffic (7.0 cache / 0.9 memory packets per kilocycle per tile),
/// seed 42 — the same shape as the `c1_8x8` benches, shortened to test
/// length.
fn c1_8x8_config() -> (SimConfig, TrafficSpec) {
    let mesh = Mesh::square(8);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 3_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 42;
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(7.0),
        Schedule::per_kilocycle(0.9),
    );
    (cfg, traffic)
}

/// Run a scenario at a given shard count with full telemetry capture.
fn run_sharded(mut cfg: SimConfig, traffic: TrafficSpec, shards: usize) -> (SimReport, RingSink) {
    cfg.shards = shards;
    let mut sink = RingSink::new(65_536).with_packets();
    let report = Network::new(cfg, traffic)
        .expect("valid config")
        .run_probed(&mut sink);
    (report, sink)
}

/// Assert the full observable surface matches: report (bit-for-bit via
/// `semantic_eq` plus spot-checked accumulators) and every telemetry
/// stream.
fn assert_identical(
    (base_report, base_sink): &(SimReport, RingSink),
    (report, sink): &(SimReport, RingSink),
    label: &str,
) {
    assert!(
        base_report.semantic_eq(report),
        "{label}: report diverged from serial"
    );
    assert_eq!(base_report.cache, report.cache, "{label}: cache accum");
    assert_eq!(base_report.memory, report.memory, "{label}: memory accum");
    assert_eq!(base_report.groups, report.groups, "{label}: group accums");
    assert_eq!(
        base_report.per_source, report.per_source,
        "{label}: per-source accums"
    );
    let base_windows: Vec<_> = base_sink.windows().cloned().collect();
    let windows: Vec<_> = sink.windows().cloned().collect();
    assert_eq!(base_windows, windows, "{label}: window records diverged");
    let base_heat: Vec<_> = base_sink.heatmaps().cloned().collect();
    let heat: Vec<_> = sink.heatmaps().cloned().collect();
    assert_eq!(base_heat, heat, "{label}: heatmap diverged");
    let base_flow: Vec<_> = base_sink.flow_summaries().cloned().collect();
    let flow: Vec<_> = sink.flow_summaries().cloned().collect();
    assert_eq!(base_flow, flow, "{label}: flow summary diverged");
    let base_packets: Vec<_> = base_sink.packets().copied().collect();
    let packets: Vec<_> = sink.packets().copied().collect();
    assert_eq!(base_packets, packets, "{label}: packet records diverged");
}

/// The acceptance pin: 1/2/4 shards (and up to `OBM_SIM_SHARDS`) on the
/// 8×8 C1 scenario, bit-identical report and telemetry.
#[test]
fn pinned_c1_8x8_shards_bit_identical() {
    let (cfg, traffic) = c1_8x8_config();
    let base = run_sharded(cfg.clone(), traffic.clone(), 1);
    assert!(base.0.fully_drained);
    assert!(base.0.delivered > 0);
    let mut verified = vec![1usize];
    for shards in [2usize, 4, 8] {
        if shards > max_shards() {
            break;
        }
        let run = run_sharded(cfg.clone(), traffic.clone(), shards);
        assert_identical(&base, &run, &format!("{shards} shards"));
        verified.push(shards);
    }
    assert!(
        verified.len() >= 3,
        "suite must verify at least shards 1/2/4, got {verified:?}"
    );
}

/// Torus topology with YX routing: wrap-around links cross the band
/// boundary between the first and last shard every cycle.
#[test]
fn torus_yx_sharded_matches_serial() {
    let mesh = Mesh::square(8);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.topology = Topology::Torus;
    cfg.routing = RoutingKind::Yx;
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 2_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 99;
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(7.0),
        Schedule::per_kilocycle(0.9),
    );
    let base = run_sharded(cfg.clone(), traffic.clone(), 1);
    assert!(base.0.delivered > 0);
    for shards in [2usize, 4] {
        let run = run_sharded(cfg.clone(), traffic.clone(), shards);
        assert_identical(&base, &run, &format!("torus {shards} shards"));
    }
}

/// Geometric injection with the event-horizon fast-forward: the jump is
/// computed on the coordinator after the barrier, so the clamp to the
/// telemetry window grid must behave identically at any shard count.
#[test]
fn geometric_fast_forward_sharded_matches_serial() {
    let mesh = Mesh::square(8);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.injection = InjectionProcess::Geometric;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 4_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 7;
    // Sparse load: long quiescent stretches, so the fast-forward engages
    // and its window-boundary clamp is exercised.
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(0.4),
        Schedule::per_kilocycle(0.1),
    );
    let base = run_sharded(cfg.clone(), traffic.clone(), 1);
    assert!(
        base.0.network.skipped_cycles > 0,
        "scenario must exercise the fast-forward"
    );
    for shards in [2usize, 4] {
        let run = run_sharded(cfg.clone(), traffic.clone(), shards);
        assert_identical(&base, &run, &format!("geometric {shards} shards"));
        assert_eq!(
            base.0.network.skipped_cycles, run.0.network.skipped_cycles,
            "fast-forward jumps diverged at {shards} shards"
        );
        assert_eq!(base.0.network.arrival_draws, run.0.network.arrival_draws);
    }
}

/// A controller that swaps two sources once, at the second window — the
/// controlled-run path (windower tee, source accumulators, retarget at a
/// window boundary) shares the sharded drive loop.
struct SwapOnce {
    windows_seen: usize,
    tiles: Vec<TileId>,
}

impl SwapController for SwapOnce {
    fn on_window(
        &mut self,
        _record: &WindowRecord,
        _per_source: &[SourceCounters],
    ) -> Option<Vec<TileId>> {
        self.windows_seen += 1;
        if self.windows_seen == 2 {
            let mut tiles = self.tiles.clone();
            tiles.swap(0, 1);
            Some(tiles)
        } else {
            None
        }
    }
}

/// The controlled (mid-run remap) path is shard-invariant too.
#[test]
fn controlled_run_sharded_matches_serial() {
    let (cfg, traffic) = c1_8x8_config();
    let tiles: Vec<TileId> = Mesh::square(8).tiles().collect();
    let run = |shards: usize| {
        let mut cfg = cfg.clone();
        cfg.shards = shards;
        let mut sink = RingSink::new(4_096);
        let mut ctrl = SwapOnce {
            windows_seen: 0,
            tiles: tiles.clone(),
        };
        let report = Network::new(cfg, traffic.clone())
            .expect("valid config")
            .run_controlled(&mut sink, &mut ctrl)
            .expect("controlled run");
        (report, sink)
    };
    let base = run(1);
    for shards in [2usize, 4] {
        let r = run(shards);
        assert_identical(&base, &r, &format!("controlled {shards} shards"));
    }
}

/// Failed-link layouts are rejected before any engine (serial or
/// sharded) is chosen, and the rejection is shard-independent; a healthy
/// layout built through the same `ChipLayout` API runs sharded and
/// matches serial.
#[test]
fn chip_layout_paths_are_shard_invariant() {
    let mesh = Mesh::square(4);
    let broken = ChipLayout::try_new(
        mesh,
        Topology::Mesh,
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement"),
        vec![(TileId(0), TileId(1))],
    )
    .expect("valid layout");
    match SimConfig::for_layout(&broken) {
        Err(ConfigError::FailedLinksUnsupported { num_links }) => assert_eq!(num_links, 1),
        other => panic!("expected FailedLinksUnsupported, got {other:?}"),
    }

    let healthy = ChipLayout::try_new(
        mesh,
        Topology::Torus,
        MemoryControllers::try_custom(&mesh, vec![TileId(5), TileId(10)]).expect("valid"),
        Vec::new(),
    )
    .expect("valid layout");
    let mut cfg = SimConfig::for_layout(&healthy).expect("healthy layout accepted");
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 1_500;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 13;
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(10.0),
        Schedule::per_kilocycle(2.0),
    );
    let base = run_sharded(cfg.clone(), traffic.clone(), 1);
    assert!(base.0.delivered > 0);
    let sharded = run_sharded(cfg, traffic, 4);
    assert_identical(&base, &sharded, "layout torus 4 shards");
}

/// Shard counts beyond the row count clamp (and still match), and the
/// plain unprobed path (no telemetry allocated at all) is shard-
/// invariant too.
#[test]
fn shard_count_clamps_to_rows_and_unprobed_path_matches() {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 2_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 3;
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(20.0),
        Schedule::per_kilocycle(4.0),
    );
    let serial = Network::new(cfg.clone(), traffic.clone())
        .expect("valid config")
        .run();
    cfg.shards = 64; // 4 rows → effective 4
    assert_eq!(cfg.effective_shards(), 4);
    let sharded = Network::new(cfg, traffic).expect("valid config").run();
    assert!(serial.semantic_eq(&sharded), "unprobed sharded diverged");
    assert_eq!(serial.per_source, sharded.per_source);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: for random loads, seeds, VC counts, buffer depths,
    /// topology/routing and shard counts, the sharded report is
    /// bit-identical to the serial one.
    #[test]
    fn sharded_reports_match_serial(
        shards in 2usize..=4,
        vcs in 1usize..=3,
        depth in 2usize..=6,
        cache_rate in 0.001f64..0.05,
        mem_rate in 0.0f64..0.01,
        torus in any::<bool>(),
        yx in any::<bool>(),
        geometric in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mesh = Mesh::square(4);
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.vcs_per_class = vcs;
        cfg.buffer_depth = depth;
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 1_500;
        cfg.max_drain_cycles = 200_000;
        cfg.seed = seed;
        if torus {
            cfg.topology = Topology::Torus;
        }
        if yx {
            cfg.routing = RoutingKind::Yx;
        }
        if geometric {
            cfg.injection = InjectionProcess::Geometric;
        }
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(cache_rate),
                mem: Schedule::Constant(mem_rate),
            })
            .collect();
        let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
        let serial = Network::new(cfg.clone(), traffic.clone())
            .expect("valid config")
            .run();
        cfg.shards = shards;
        let sharded = Network::new(cfg, traffic).expect("valid config").run();
        prop_assert!(serial.semantic_eq(&sharded), "sharded run diverged");
        prop_assert_eq!(serial.per_source, sharded.per_source);
        prop_assert_eq!(
            serial.network.link_flit_traversals,
            sharded.network.link_flit_traversals
        );
        prop_assert_eq!(
            serial.network.peak_buffered_flits,
            sharded.network.peak_buffered_flits
        );
    }
}
