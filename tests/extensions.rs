//! Integration tests for the extension features: weighted OBM, torus
//! topology, oversubscription, the first-principles cache pipeline, and
//! the exact solver — all exercised through the public facade.

use obm::cache::address::AddressPattern;
use obm::cache::system::{CacheAppSpec, CmpSystem, SystemConfig, ThreadSpec};
use obm::mapping::algorithms::{BranchAndBound, Global, Mapper, SortSelectSwap};
use obm::mapping::oversub::map_with_capacity;
use obm::mapping::{evaluate, ObmInstance};
use obm::model::{ChipLayout, LatencyParams, MemoryControllers, Mesh, TileLatencies, Topology};
use obm::workload::{PaperConfig, WorkloadBuilder};

fn c1_instance() -> ObmInstance {
    let (w, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let tiles = TileLatencies::paper_default(&Mesh::square(8));
    let (c, m) = w.rate_vectors();
    ObmInstance::new(tiles, w.boundaries(), c, m)
}

/// Weighted OBM: promoting an application must strictly lower its APL and
/// the weighted objective must equal max(w·d).
#[test]
fn weighted_priority_lowers_latency() {
    let plain = c1_instance();
    let weighted = c1_instance().with_app_weights(vec![2.0, 1.0, 1.0, 1.0]);
    let rp = evaluate(&plain, &SortSelectSwap::default().map(&plain, 0));
    let rw = evaluate(&weighted, &SortSelectSwap::default().map(&weighted, 0));
    assert!(
        rw.per_app[0] < rp.per_app[0] - 0.5,
        "prioritized app not faster: {} vs {}",
        rw.per_app[0],
        rp.per_app[0]
    );
    let expect = (0..4)
        .map(|i| weighted.app_weight(i) * rw.per_app[i])
        .fold(f64::NEG_INFINITY, f64::max);
    assert!((rw.max_apl - expect).abs() < 1e-9);
}

/// Torus: the cache-latency array is uniform, so even Global cannot
/// create much imbalance.
#[test]
fn torus_suppresses_imbalance() {
    let (w, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let mesh = Mesh::square(8);
    let mcs = MemoryControllers::corners(&mesh);
    let params = LatencyParams::paper_table2();
    let (c, m) = w.rate_vectors();
    let mesh_inst = ObmInstance::new(
        TileLatencies::compute(&mesh, &mcs, params),
        w.boundaries(),
        c.clone(),
        m.clone(),
    );
    let torus = ChipLayout::try_new(mesh, Topology::Torus, mcs.clone(), Vec::new())
        .expect("corner controllers are valid on a torus");
    let torus_inst = ObmInstance::new(
        TileLatencies::for_layout(&torus, params),
        w.boundaries(),
        c,
        m,
    );
    let on_mesh = evaluate(&mesh_inst, &Global.map(&mesh_inst, 0)).dev_apl;
    let on_torus = evaluate(&torus_inst, &Global.map(&torus_inst, 0)).dev_apl;
    assert!(
        on_torus < 0.6 * on_mesh,
        "torus dev-APL {on_torus} not well below mesh {on_mesh}"
    );
}

/// Oversubscription: a capacity-2 chip hosts twice the threads with
/// bounded occupancy and balanced APLs.
#[test]
fn oversubscribed_chip_stays_balanced() {
    let mesh = Mesh::square(8);
    let mcs = MemoryControllers::corners(&mesh);
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    // Two C-style workloads side by side: 128 threads.
    let (w1, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let (w2, _) = WorkloadBuilder::paper(PaperConfig::C2).seed(5).build();
    let mut c = Vec::new();
    let mut m = Vec::new();
    let mut bounds = vec![0];
    for w in [&w1, &w2] {
        let (cw, mw) = w.rate_vectors();
        for app in 0..4 {
            let range = w.boundaries()[app]..w.boundaries()[app + 1];
            c.extend_from_slice(&cw[range.clone()]);
            m.extend_from_slice(&mw[range]);
            bounds.push(c.len());
        }
    }
    let (mapping, report) =
        map_with_capacity(&tiles, bounds, c, m, 2, &SortSelectSwap::default(), 0);
    assert!(mapping.occupancy(64).iter().all(|&o| o <= 2));
    assert_eq!(report.per_app.len(), 8);
    let spread = report.max_apl - report.min_apl;
    assert!(
        spread < 0.5,
        "APL spread {spread} too wide: {:?}",
        report.per_app
    );
}

/// First-principles pipeline: cache-derived rates feed the mapper and the
/// headline ordering holds.
#[test]
fn cache_derived_rates_reproduce_headline() {
    let mesh = Mesh::square(8);
    let cfg = SystemConfig {
        epochs: 60,
        ..SystemConfig::paper_defaults(mesh)
    };
    let mk = |name: &str, base: u64, rate: f64, ws: u64| CacheAppSpec {
        name: name.into(),
        threads: (0..16)
            .map(|i| ThreadSpec {
                accesses_per_kilocycle: rate,
                write_fraction: 0.2,
                line_reuse: 8,
                private: AddressPattern::working_set(base + i * (0x0100_0000 + 131 * 64), ws, 0.9),
                shared_fraction: 0.05,
            })
            .collect(),
        shared: AddressPattern::working_set(base + 0xF000_0000, 128, 0.9),
    };
    let traces = CmpSystem::new(
        cfg,
        vec![
            mk("light", 0x0001_0000_0000, 300.0, 400),
            mk("mid", 0x0002_0000_0000, 900.0, 2_000),
            mk("heavy", 0x0003_0000_0000, 1_800.0, 4_000),
            mk("heaviest", 0x0004_0000_0000, 2_600.0, 8_000),
        ],
    )
    .run();
    let w = traces.to_workload();
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = w.rate_vectors();
    let inst = ObmInstance::new(tiles, w.boundaries(), c, m);
    let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
    let glob = evaluate(&inst, &Global.map(&inst, 0));
    assert!(sss.max_apl < glob.max_apl);
    // With only 60 epochs the derived rates are noisy; the balance claim
    // is directional rather than the full two-orders-of-magnitude one.
    assert!(
        sss.dev_apl < glob.dev_apl,
        "SSS dev {} vs Global {}",
        sss.dev_apl,
        glob.dev_apl
    );
    let spread = sss.max_apl - sss.min_apl;
    assert!(spread < 1.0, "per-app spread {spread}: {:?}", sss.per_app);
}

/// Exact solver through the facade: proves a small optimum that SSS
/// cannot beat.
#[test]
fn bnb_proof_bounds_sss_through_facade() {
    let mesh = Mesh::square(3);
    let mcs = MemoryControllers::corners(&mesh);
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let c = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
    let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
    let inst = ObmInstance::new(tiles, vec![0, 3, 6, 9], c, m);
    let r =
        BranchAndBound::default().solve_budgeted(&inst, &obm::prelude::CancelToken::never(), None);
    assert!(r.proven_optimal);
    let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).max_apl;
    assert!(sss >= r.objective - 1e-9);
    assert!(
        sss <= r.objective * 1.10,
        "SSS {} vs optimum {}",
        sss,
        r.objective
    );
}
