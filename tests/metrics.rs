//! Metrics purity and snapshot round-trip tests (DESIGN.md §17).
//!
//! The `noc-metrics` registry is a write-only observer riding along with
//! the simulator, the solver portfolio and the placement search. These
//! tests pin the PR 2 purity contract for it:
//!
//! 1. a seeded simulation produces a bit-identical `SimReport` with
//!    metrics enabled or disabled, across random loads and shard counts,
//!    and the exported counters reconcile exactly with `NetworkStats`;
//! 2. a solver-portfolio race returns the identical mapping/objective
//!    with metrics on or off, and the exported counters reconcile with
//!    the returned `SolveStats`;
//! 3. snapshots round-trip losslessly through both export formats
//!    (Prometheus text and JSON lines), and under the logical clock two
//!    identical seeded runs export byte-identical snapshots.

use obm::metrics::{ClockMode, MetricsHandle, MetricsRegistry, MetricsSnapshot};
use obm::prelude::*;
use obm::sim::InjectionProcess;
use proptest::prelude::*;

/// A 4×4 scenario parameterized on load, injection process and shard
/// count — the randomized surface for the purity properties.
fn network(seed: u64, cache_rate: f64, mem_rate: f64, shards: usize, geometric: bool) -> Network {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.shards = shards;
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 1_500;
    cfg.max_drain_cycles = 200_000;
    cfg.seed = seed;
    if geometric {
        cfg.injection = InjectionProcess::Geometric;
    }
    let sources: Vec<SourceSpec> = mesh
        .tiles()
        .map(|t| SourceSpec {
            tile: t,
            group: t.index() % 2,
            cache: Schedule::Constant(cache_rate),
            mem: Schedule::Constant(mem_rate),
        })
        .collect();
    let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
    Network::new(cfg, traffic).expect("valid config")
}

/// A small OBM instance over random per-thread rates: 4 apps × 4 threads
/// on the 4×4 paper-default chip.
fn instance(cache_rates: &[f64]) -> ObmInstance {
    let mesh = Mesh::square(4);
    let tiles = TileLatencies::paper_default(&mesh);
    let mem_rates: Vec<f64> = cache_rates.iter().map(|r| r * 0.15).collect();
    ObmInstance::new(
        tiles,
        vec![0, 4, 8, 12, 16],
        cache_rates.to_vec(),
        mem_rates,
    )
}

fn solve(inst: &ObmInstance, metrics: Option<MetricsHandle>) -> SolveOutcome {
    let mut builder = SolveRequest::builder(inst)
        .algorithm(Algorithm::SortSelectSwap(SortSelectSwap::default()))
        .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
            iterations: 2_000,
            ..SimulatedAnnealing::default()
        }))
        .algorithm(Algorithm::BalancedGreedy)
        .seeds([0, 1])
        .workers(2);
    if let Some(handle) = metrics {
        builder = builder.metrics(handle);
    }
    builder.build().expect("valid request").solve()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Purity, simulator side: metrics-on and metrics-off runs of the
    /// same seeded scenario are bit-identical (wall clock excluded), for
    /// random loads, both injection processes and serial/sharded
    /// engines — and the registry's counters reconcile exactly with the
    /// `NetworkStats` the run returned.
    #[test]
    fn sim_report_is_bit_identical_with_metrics_on(
        cache_rate in 0.001f64..0.04,
        mem_rate in 0.0f64..0.01,
        seed in any::<u64>(),
        shards in 1usize..=2,
        geometric in any::<bool>(),
    ) {
        let off = network(seed, cache_rate, mem_rate, shards, geometric).run();
        let registry = MetricsRegistry::new();
        let on = network(seed, cache_rate, mem_rate, shards, geometric)
            .with_metrics(registry.handle())
            .run();
        prop_assert!(off.semantic_eq(&on), "metrics perturbed the simulation");
        // semantic_eq is bit-for-bit on the accumulators; spot-check the
        // per-class/per-source breakdowns too.
        prop_assert_eq!(&off.cache, &on.cache);
        prop_assert_eq!(&off.memory, &on.memory);
        prop_assert_eq!(&off.groups, &on.groups);
        prop_assert_eq!(&off.per_source, &on.per_source);

        // The registry saw exactly what the report counted.
        let h = registry.handle();
        let counter = |name: &str| h.counter_value(name).unwrap_or(0);
        prop_assert_eq!(counter("sim_runs_total"), 1);
        prop_assert_eq!(counter("sim_cycles_total"), on.network.cycles_run);
        prop_assert_eq!(counter("sim_injected_packets_total"), on.injected);
        prop_assert_eq!(counter("sim_delivered_packets_total"), on.delivered);
        prop_assert_eq!(
            counter("sim_link_flit_traversals_total"),
            on.network.link_flit_traversals
        );
        prop_assert_eq!(counter("sim_skipped_cycles_total"), on.network.skipped_cycles);
        prop_assert_eq!(
            h.gauge_value("sim_shards").map(|v| v as usize),
            Some(shards)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Purity, solver side: the portfolio race returns the identical
    /// winner, objective and mapping with metrics on or off, for random
    /// instances — and the exported counters reconcile with the returned
    /// `SolveStats`.
    #[test]
    fn solve_outcome_is_bit_identical_with_metrics_on(
        rates in proptest::collection::vec(0.05f64..10.0, 16),
    ) {
        let inst = instance(&rates);
        let off = solve(&inst, None);
        let registry = MetricsRegistry::new();
        let on = solve(&inst, Some(registry.handle()));

        prop_assert_eq!(&off.winner, &on.winner);
        prop_assert_eq!(off.winner_seed, on.winner_seed);
        prop_assert_eq!(off.objective.to_bits(), on.objective.to_bits());
        prop_assert_eq!(off.mapping.as_slice(), on.mapping.as_slice());
        prop_assert_eq!(off.stats.len(), on.stats.len());

        let h = registry.handle();
        let counter = |name: &str| h.counter_value(name).unwrap_or(0);
        prop_assert_eq!(counter("portfolio_solves_total"), 1);
        prop_assert_eq!(counter("portfolio_tasks_total"), on.stats.len() as u64);
        let completed_evals: u64 = on
            .stats
            .iter()
            .filter(|s| s.objective.is_some())
            .map(|s| s.evaluations)
            .sum();
        prop_assert_eq!(counter("portfolio_evals_total"), completed_evals);
        prop_assert_eq!(
            h.gauge_value("portfolio_workers").map(|v| v as usize),
            Some(2)
        );
    }
}

/// One deterministic "everything" registry: a seeded simulation plus a
/// portfolio solve reporting into the same logical-clock registry. Used
/// by the round-trip and byte-determinism tests below.
fn full_snapshot() -> MetricsSnapshot {
    let registry = MetricsRegistry::with_clock(ClockMode::Logical);
    network(42, 0.02, 0.004, 2, false)
        .with_metrics(registry.handle())
        .run();
    let rates: Vec<f64> = (1..=16).map(|i| i as f64 * 0.5).collect();
    solve(&instance(&rates), Some(registry.handle()));
    registry.snapshot()
}

/// Both export formats parse back to the exact snapshot that was
/// exported: counters, gauges, exact histograms and spans survive, so
/// `obm status` renders from lossless inputs.
#[test]
fn snapshots_round_trip_through_both_formats() {
    let snap = full_snapshot();
    assert!(!snap.is_empty());

    let prom = snap.to_prometheus();
    let from_prom = MetricsSnapshot::parse(&prom).expect("prometheus parses");
    assert_eq!(snap, from_prom, "prometheus round-trip lost data");

    let json = snap.to_json_lines();
    let from_json = MetricsSnapshot::parse(&json).expect("json lines parse");
    assert_eq!(snap, from_json, "json-lines round-trip lost data");

    // The families every instrumented subsystem contributes are present.
    for name in [
        "sim_runs_total",
        "sim_cycles_total",
        "portfolio_solves_total",
        "portfolio_evals_total",
    ] {
        assert!(
            snap.counters.contains_key(name),
            "missing counter {name} in snapshot"
        );
        assert!(prom.contains(name), "missing {name} in prometheus text");
        assert!(json.contains(name), "missing {name} in json lines");
    }
    assert!(
        snap.spans.keys().any(|k| k.starts_with("sim/shard/")),
        "shard-pool spans missing"
    );
    assert!(
        snap.spans.keys().any(|k| k.starts_with("portfolio/task/")),
        "portfolio task spans missing"
    );
}

/// Under the logical clock, two identical seeded runs export
/// byte-identical snapshots in both formats — the property `check.sh`
/// smoke-tests end-to-end through the CLI.
#[test]
fn logical_clock_snapshots_are_byte_deterministic() {
    let a = full_snapshot();
    let b = full_snapshot();
    assert_eq!(a.to_prometheus(), b.to_prometheus());
    assert_eq!(a.to_json_lines(), b.to_json_lines());
}

/// Merging is the dashboard's aggregation primitive: counters and span
/// counts add, so merging a snapshot with itself exactly doubles them.
#[test]
fn merged_snapshot_doubles_counters() {
    let snap = full_snapshot();
    let mut merged = snap.clone();
    merged.merge(&snap);
    for (name, value) in &snap.counters {
        assert_eq!(merged.counters[name], value * 2, "counter {name}");
    }
    for (path, span) in &snap.spans {
        assert_eq!(merged.spans[path].count, span.count * 2, "span {path}");
    }
    // The dashboard renders without panicking on the merged snapshot.
    let dash = merged.render_dashboard(2);
    assert!(dash.contains("2 snapshots merged"), "{dash}");
}
