//! End-to-end pipeline tests: synthetic traces → rate collection → OBM
//! instance → mapping → cycle-level simulation, with conservation and
//! model-fidelity checks spanning every crate.

use obm::mapping::algorithms::{Mapper, SortSelectSwap};
use obm::mapping::{evaluate, traffic_spec, ObmInstance};
use obm::model::{Mesh, TileLatencies};
use obm::sim::{Network, Schedule, SimConfig, SourceSpec, TrafficSpec};
use obm::workload::{PaperConfig, WorkloadBuilder};

fn build_pipeline(cfg: PaperConfig) -> (ObmInstance, obm::mapping::Mapping) {
    let (w, _) = WorkloadBuilder::paper(cfg).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = w.rate_vectors();
    let inst = ObmInstance::new(tiles, w.boundaries(), c, m);
    let mapping = SortSelectSwap::default().map(&inst, 0);
    (inst, mapping)
}

fn simulate(
    inst: &ObmInstance,
    mapping: &obm::mapping::Mapping,
    cycles: u64,
) -> obm::sim::SimReport {
    let mesh = Mesh::square(8);
    let cfg = SimConfig::builder(mesh)
        .warmup_cycles(2_000)
        .measure_cycles(cycles)
        .seed(11)
        .build()
        .expect("valid config");
    Network::new(cfg, traffic_spec(inst, mapping))
        .expect("valid scenario")
        .run()
}

/// Every measured packet injected is eventually delivered (flit
/// conservation through the wormhole network).
#[test]
fn packet_conservation_through_the_network() {
    let (inst, mapping) = build_pipeline(PaperConfig::C2);
    let report = simulate(&inst, &mapping, 20_000);
    assert!(report.fully_drained, "{}", report.summary());
    assert_eq!(report.injected, report.delivered);
    assert!(report.injected > 500, "too few packets to be meaningful");
}

/// The simulated g-APL tracks the analytic Eq. (5) value the mapping was
/// optimized against (within the queueing + sampling tolerance).
#[test]
fn simulated_apl_tracks_analytic_model() {
    let (inst, mapping) = build_pipeline(PaperConfig::C1);
    let analytic = evaluate(&inst, &mapping);
    let report = simulate(&inst, &mapping, 60_000);
    let rel = (report.g_apl() - analytic.g_apl).abs() / analytic.g_apl;
    assert!(
        rel < 0.10,
        "simulated g-APL {} vs analytic {} ({:.1}% off)",
        report.g_apl(),
        analytic.g_apl,
        rel * 100.0
    );
    // Per-application ordering must largely carry over: the per-app APLs
    // are near-equal analytically, so simulated ones must stay in a
    // narrow band too.
    let apls = report.group_apls();
    let spread = apls.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - apls.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 1.5,
        "simulated per-app spread {spread} too wide: {apls:?}"
    );
}

/// The measured per-hop queueing latency stays in the paper's observed
/// 0–1 cycle band at Table 3 loads.
#[test]
fn queueing_latency_in_paper_band() {
    let (inst, mapping) = build_pipeline(PaperConfig::C4); // heaviest traffic
    let report = simulate(&inst, &mapping, 30_000);
    let tdq = report.mean_td_q();
    assert!(
        (0.0..1.0).contains(&tdq),
        "td_q {tdq} outside the paper's 0–1 cycle observation"
    );
}

/// Trace replay: piecewise schedules built from the bursty epoch traces
/// drive the simulator and conserve packets.
#[test]
fn trace_replay_conserves_packets() {
    let (w, traces) = WorkloadBuilder::paper(PaperConfig::C7).epochs(200).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = w.rate_vectors();
    let inst = ObmInstance::new(tiles, w.boundaries(), c, m);
    let mapping = SortSelectSwap::default().map(&inst, 0);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = 1_000;
    cfg.measure_cycles = 20_000;
    let sources: Vec<SourceSpec> = (0..inst.num_threads())
        .map(|j| SourceSpec {
            tile: mapping.tile_of(j),
            group: inst.app_of_thread(j),
            cache: Schedule::trace_per_kilocycle(traces.epoch_cycles, &traces.traces[j].cache),
            mem: Schedule::trace_per_kilocycle(traces.epoch_cycles, &traces.traces[j].mem),
        })
        .collect();
    let traffic = TrafficSpec::new(sources, inst.num_apps()).expect("valid traffic");
    let report = Network::new(cfg, traffic).expect("valid config").run();
    assert!(report.fully_drained, "{}", report.summary());
    assert_eq!(report.injected, report.delivered);
}

/// The workload statistics that feed the instance match what the traces
/// report (the "runtime statistics collection" contract of §IV.B).
#[test]
fn workload_rates_are_trace_means() {
    let (w, traces) = WorkloadBuilder::paper(PaperConfig::C6).build();
    let (c, m) = w.rate_vectors();
    // Workload::new sorts apps ascending by rate; rebuild the same order.
    let w2 = traces.to_workload();
    let (c2, m2) = w2.rate_vectors();
    assert_eq!(c, c2);
    assert_eq!(m, m2);
}

/// Power estimates respond to mapping quality: the analytic dynamic power
/// of SSS stays within a few percent of Global's (Figure 11's claim).
#[test]
fn power_overhead_small() {
    use obm::mapping::algorithms::Global;
    use obm::power::{analytic_power, PlacedLoad, PowerParams};
    let (inst, sss_mapping) = build_pipeline(PaperConfig::C3);
    let glob_mapping = Global.map(&inst, 0);
    let mesh = Mesh::square(8);
    let params = PowerParams::dsent_45nm();
    let power_of = |mapping: &obm::mapping::Mapping| {
        let loads: Vec<PlacedLoad> = (0..inst.num_threads())
            .map(|j| PlacedLoad {
                tile: mapping.tile_of(j),
                cache_rate: inst.cache_rate(j) / 1000.0,
                mem_rate: inst.mem_rate(j) / 1000.0,
            })
            .collect();
        analytic_power(&params, &mesh, inst.tiles(), &loads, 3.0).dynamic_mw
    };
    let p_sss = power_of(&sss_mapping);
    let p_glob = power_of(&glob_mapping);
    assert!(
        p_sss / p_glob < 1.06,
        "SSS power {p_sss} mW vs Global {p_glob} mW exceeds +6%"
    );
}
