//! Facade-level integration tests for the portfolio engine: the
//! determinism contract (worker count never changes the answer, and a
//! 1-worker race is bit-identical to the sequential best-of loop it
//! replaces), budget/deadline/cancellation semantics, and checkpoint
//! resume — all through the public `obm::prelude` API.

use std::time::Duration;

use obm::mapping::algorithms::{Mapper, SimulatedAnnealing, SortSelectSwap};
use obm::mapping::{evaluate, CancelToken, Mapping, ObmInstance};
use obm::model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use obm::prelude::{Algorithm, SolveRequest, Termination};
use obm::workload::{PaperConfig, WorkloadBuilder};
use proptest::prelude::*;

/// The paper's C1 instance: 8×8 mesh, four 16-thread applications.
fn c1_instance() -> ObmInstance {
    let (workload, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = workload.rate_vectors();
    ObmInstance::new(tiles, workload.boundaries(), c, m)
}

/// Strategy: a random OBM instance on an n×n mesh (n ∈ 2..=4) with 2–3
/// contiguous applications and positive rates.
fn arb_instance() -> impl Strategy<Value = ObmInstance> {
    (2usize..=4, 2usize..=3)
        .prop_flat_map(|(n, apps)| {
            let threads = n * n;
            (
                Just(n),
                Just(apps),
                proptest::collection::vec(0.01f64..10.0, threads),
                proptest::collection::vec(0.0f64..2.0, threads),
            )
        })
        .prop_map(|(n, apps, c, m)| {
            let mesh = Mesh::square(n);
            let mcs = MemoryControllers::corners(&mesh);
            let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
            let threads = n * n;
            let mut bounds = vec![0];
            for a in 1..=apps {
                bounds.push(a * threads / apps);
            }
            bounds.dedup();
            if bounds.len() < 2 {
                bounds.push(threads);
            }
            *bounds.last_mut().unwrap() = threads;
            ObmInstance::new(tl, bounds, c, m)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A 1-worker portfolio over multi-seed SA is bit-identical to the
    /// sequential best-of loop it replaces: same objective, same mapping,
    /// same winning seed (ties break toward the earlier seed in both).
    #[test]
    fn one_worker_matches_sequential_best_of(inst in arb_instance(), s0 in any::<u64>()) {
        let sa = SimulatedAnnealing { iterations: 400, ..SimulatedAnnealing::default() };
        let seeds = [s0, s0.wrapping_add(1), s0.wrapping_add(2)];

        let mut best: Option<(f64, u64, Mapping)> = None;
        for seed in seeds {
            let m = sa.map(&inst, seed);
            let v = evaluate(&inst, &m).max_apl;
            let better = match &best {
                Some((bv, _, _)) => v.total_cmp(bv) == std::cmp::Ordering::Less,
                None => true,
            };
            if better {
                best = Some((v, seed, m));
            }
        }
        let (seq_value, seq_seed, seq_mapping) = best.expect("non-empty seed list");

        let outcome = SolveRequest::builder(&inst)
            .algorithm(Algorithm::SimulatedAnnealing(sa))
            .seeds(seeds)
            .workers(1)
            .build()
            .expect("valid request")
            .solve();

        prop_assert_eq!(outcome.termination, Termination::Completed);
        prop_assert_eq!(outcome.objective.to_bits(), seq_value.to_bits());
        prop_assert_eq!(outcome.winner_seed, seq_seed);
        prop_assert_eq!(outcome.mapping.as_slice(), seq_mapping.as_slice());
    }
}

/// Pinned determinism on the 8×8 paper instance: 1, 2 and 4 workers all
/// return the same winner, objective bits, and stats table.
#[test]
fn worker_count_never_changes_the_answer_on_8x8() {
    let inst = c1_instance();
    let solve = |workers: usize| {
        SolveRequest::builder(&inst)
            .algorithm(Algorithm::SortSelectSwap(SortSelectSwap::default()))
            .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
                iterations: 3_000,
                ..SimulatedAnnealing::default()
            }))
            .seeds([1, 2])
            .workers(workers)
            .build()
            .expect("valid request")
            .solve()
    };
    let one = solve(1);
    assert_eq!(one.termination, Termination::Completed);
    for workers in [2usize, 4] {
        let multi = solve(workers);
        assert_eq!(multi.objective.to_bits(), one.objective.to_bits());
        assert_eq!(multi.winner, one.winner);
        assert_eq!(multi.winner_seed, one.winner_seed);
        assert_eq!(multi.mapping.as_slice(), one.mapping.as_slice());
        assert_eq!(multi.stats.len(), one.stats.len());
        for (a, b) in multi.stats.iter().zip(&one.stats) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.algo, b.algo);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.objective.map(f64::to_bits), b.objective.map(f64::to_bits));
        }
    }
}

/// An already-expired deadline interrupts the long SA tasks mid-run: the
/// outcome reports `Deadline`, still returns a valid fallback or partial
/// winner, and every unfinished task shows `objective: None`.
#[test]
fn deadline_expiry_interrupts_simulated_annealing() {
    let inst = c1_instance();
    let outcome = SolveRequest::builder(&inst)
        .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
            iterations: 50_000_000,
            ..SimulatedAnnealing::default()
        }))
        .seeds([1, 2])
        .workers(2)
        .deadline(Duration::from_millis(1))
        .build()
        .expect("valid request")
        .solve();
    assert_eq!(outcome.termination, Termination::Deadline);
    // The mapping is always usable, even when every racer was cut off.
    assert_eq!(outcome.mapping.as_slice().len(), inst.num_threads());
    assert!(outcome.objective.is_finite());
    if outcome.fallback {
        assert!(outcome.stats.iter().all(|s| s.objective.is_none()));
    }
}

/// Cancelling before the race starts: no task runs, the outcome is
/// `Cancelled`, and the deterministic greedy fallback supplies a valid
/// mapping so callers never receive garbage.
#[test]
fn cancellation_before_start_yields_fallback() {
    let inst = c1_instance();
    let token = CancelToken::new();
    token.cancel();
    let outcome = SolveRequest::builder(&inst)
        .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing::default()))
        .seeds([1, 2, 3])
        .workers(4)
        .cancel_token(token)
        .build()
        .expect("valid request")
        .solve();
    assert_eq!(outcome.termination, Termination::Cancelled);
    assert!(outcome.fallback);
    assert_eq!(outcome.winner, "Greedy");
    assert_eq!(outcome.mapping.as_slice().len(), inst.num_threads());
    assert!(outcome.stats.iter().all(|s| s.objective.is_none()));
    assert_eq!(outcome.completed_tasks(), 0);
}

/// Checkpoint round-trip through the facade: a completed run's checkpoint
/// resumes into a bit-identical outcome with every task marked resumed.
#[test]
fn checkpoint_resume_reproduces_the_outcome() {
    let inst = c1_instance();
    let build = || {
        SolveRequest::builder(&inst)
            .algorithm(Algorithm::SortSelectSwap(SortSelectSwap::default()))
            .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
                iterations: 2_000,
                ..SimulatedAnnealing::default()
            }))
            .seeds([5, 6])
            .workers(2)
    };
    let first = build().build().expect("valid request").solve();
    assert_eq!(first.termination, Termination::Completed);

    let json = first.checkpoint.to_json();
    let restored = obm::prelude::Checkpoint::from_json(&json).expect("round-trips");
    let resumed = build()
        .resume(restored)
        .build()
        .expect("valid request")
        .solve();

    assert!(!resumed.resume_rejected);
    assert_eq!(resumed.objective.to_bits(), first.objective.to_bits());
    assert_eq!(resumed.winner, first.winner);
    assert_eq!(resumed.winner_seed, first.winner_seed);
    assert_eq!(resumed.mapping.as_slice(), first.mapping.as_slice());
    assert!(resumed.stats.iter().all(|s| s.resumed));
}
