//! Simulator determinism and conservation tests.
//!
//! The cycle-level simulator is only useful as an experimental instrument
//! if a fixed seed reproduces a run exactly — across repeated runs in one
//! process and across the performance work done on the hot loop (activity
//! worklists, scratch buffers, packet-slab recycling must all be invisible
//! to the simulated semantics). These tests pin that contract:
//!
//! 1. two runs of the same seeded scenario compare equal under
//!    [`SimReport::semantic_eq`] (bit-for-bit, wall-clock excluded);
//! 2. a small seeded scenario reproduces golden values captured from the
//!    pre-optimization simulator — any drift means simulated semantics
//!    changed, which is a bug even if the new numbers look plausible;
//! 3. packet and flit conservation hold under randomized loads, buffer
//!    depths and VC counts (property-based).
//!
//! [`SimReport::semantic_eq`]: obm::sim::SimReport::semantic_eq

use obm::model::{MemoryControllers, Mesh, TileId};
use obm::sim::{
    InjectionProcess, Network, Schedule, SimConfig, SimReport, SourceSpec, TrafficSpec,
};
use obm::telemetry::{NoopSink, Phase, RingSink};
use proptest::prelude::*;

/// The pinned scenario's network: 4×4 mesh, one far memory controller,
/// mixed classes, moderate contention, seed 42. Identical to
/// `scenario_small` in `crates/noc-sim/examples/report_dump.rs`, which
/// regenerates the golden values below.
fn small_scenario_network() -> Network {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 3_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 42;
    let sources: Vec<SourceSpec> = mesh
        .tiles()
        .map(|t| SourceSpec {
            tile: t,
            group: t.index() % 2,
            cache: Schedule::per_kilocycle(20.0),
            mem: Schedule::per_kilocycle(4.0),
        })
        .collect();
    let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
    Network::new(cfg, traffic).expect("valid config")
}

fn small_scenario() -> SimReport {
    small_scenario_network().run()
}

#[test]
fn identical_seeded_runs_produce_identical_reports() {
    let a = small_scenario();
    let b = small_scenario();
    assert!(a.semantic_eq(&b), "seeded runs diverged");
    // Spot-check that semantic_eq actually saw identical accumulators
    // (PartialEq on LatencyAccum is bit-for-bit, f64 sums included).
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.memory, b.memory);
    assert_eq!(a.groups, b.groups);
    assert_eq!(a.per_source, b.per_source);
    // wall_nanos is the one legitimately nondeterministic field; both runs
    // must still have measured it.
    assert!(a.network.wall_nanos > 0 && b.network.wall_nanos > 0);
}

/// Golden regression: values captured from the simulator *before* the
/// hot-loop optimization work (activity worklists, occupancy-mask switch
/// allocation, scratch buffers, packet-slab recycling). The optimized
/// simulator must reproduce them bit-for-bit.
#[test]
fn pinned_golden_small_scenario() {
    let r = small_scenario();
    assert_eq!(r.injected, 1092);
    assert_eq!(r.delivered, 1092);
    assert!(r.fully_drained);
    assert_eq!(r.measured_cycles, 3_000);
    assert_eq!(r.network.link_flit_traversals, 9_592);
    assert_eq!(r.network.peak_buffered_flits, 39);
    assert_eq!(r.network.cycles_run, 3_520);
    assert_eq!(r.network.num_links, 48);
    assert_eq!(r.cache.packets, 896);
    assert_eq!(r.cache.total_hops, 2_198);
    assert_eq!(r.cache.total_flits, 2_676);
    assert_eq!(r.cache.flit_hops, 6_362);
    // Latencies are integer cycle counts summed into an f64, so the sum is
    // exact and == is meaningful.
    assert_eq!(r.cache.total_latency, 11_716.0);
    assert_eq!(r.memory.packets, 196);
    assert_eq!(r.memory.total_latency, 3_048.0);
    assert!((r.g_apl() - 13.520146520146521).abs() < 1e-9);
    assert!((r.max_apl() - 14.340823970037453).abs() < 1e-9);
    assert!((r.mean_td_q() - 0.321970443349754).abs() < 1e-9);
}

/// Telemetry must be a pure observer. A probed run through an explicit
/// `NoopSink` (the disabled probe) takes the telemetry-aware code path
/// yet must reproduce the golden report bit-for-bit, and an *enabled*
/// `RingSink` probe must not change simulated semantics either.
#[test]
fn probed_runs_reproduce_the_golden_report() {
    let golden = small_scenario();
    let noop = small_scenario_network().run_probed(&mut NoopSink);
    assert!(
        golden.semantic_eq(&noop),
        "NoopSink run diverged from the golden report"
    );
    assert_eq!(noop.injected, 1092);
    assert_eq!(noop.network.link_flit_traversals, 9_592);

    let mut sink = RingSink::new(1024);
    let probed = small_scenario_network().run_probed(&mut sink);
    assert!(
        golden.semantic_eq(&probed),
        "RingSink run diverged from the golden report"
    );
    assert!(sink.windows().count() > 0);
}

/// Window arithmetic on the pinned scenario: with the paper-default
/// 1000-cycle window, warmup 500 / measure 3000 / cycles_run 3520, the
/// global window grid is truncated at the warmup→measure boundary, at the
/// measure→drain boundary, and at the end of the run.
#[test]
fn ring_sink_windows_truncate_at_phase_boundaries() {
    let mut sink = RingSink::new(1024);
    let report = small_scenario_network().run_probed(&mut sink);
    assert_eq!(report.network.cycles_run, 3_520);
    assert_eq!(sink.dropped(), 0);
    let spans: Vec<(u64, u64, Phase)> = sink
        .windows()
        .map(|w| (w.start_cycle, w.end_cycle, w.phase))
        .collect();
    assert_eq!(
        spans,
        vec![
            (0, 500, Phase::Warmup),
            (500, 1_000, Phase::Measure),
            (1_000, 2_000, Phase::Measure),
            (2_000, 3_000, Phase::Measure),
            (3_000, 3_500, Phase::Measure),
            (3_500, 3_520, Phase::Drain),
        ]
    );
    let measure_width: u64 = sink
        .windows()
        .filter(|w| w.phase == Phase::Measure)
        .map(|w| w.width())
        .sum();
    assert_eq!(measure_width, 3_000, "measure windows must tile the phase");
    // Conservation across the whole run: windows see every packet.
    let injected: u64 = sink.windows().map(|w| w.injected_packets).sum();
    let ejected: u64 = sink.windows().map(|w| w.ejected_packets).sum();
    assert_eq!(injected, ejected, "run fully drained");
    assert!(injected >= report.injected, "windows cover warmup too");
}

/// Satellite for the peak-occupancy telemetry: `peak_buffered_flits` is now
/// a counter maintained incrementally at flit push/pop instead of an
/// O(routers) end-of-cycle scan; on the seeded contention scenario it must
/// still report the value the scan measured.
#[test]
fn peak_buffered_flits_matches_pre_optimization_scan() {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    // All memory traffic from two heavy sources funnels into one corner
    // controller — a deterministic hot-spot that exercises deep queues.
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 2_000;
    cfg.max_drain_cycles = 50_000;
    cfg.seed = 9;
    let sources: Vec<SourceSpec> = (0..2)
        .map(|t| SourceSpec {
            tile: TileId(t),
            group: 0,
            cache: Schedule::Constant(0.3),
            mem: Schedule::Constant(0.3),
        })
        .collect();
    let run = |cfg: SimConfig, sources: Vec<SourceSpec>| {
        let traffic = TrafficSpec::new(sources, 1).expect("valid traffic");
        Network::new(cfg, traffic).expect("valid config").run()
    };
    let a = run(cfg.clone(), sources.clone());
    let b = run(cfg, sources);
    assert_eq!(a.network.peak_buffered_flits, b.network.peak_buffered_flits);
    // Pinned regression value; the counter≡scan equivalence itself is proven
    // by `pinned_golden_small_scenario` (39 there was measured by the old
    // per-cycle scan).
    assert_eq!(a.network.peak_buffered_flits, 79);
}

/// The pinned scenario again, but under `InjectionProcess::Geometric`.
/// Same seed, same rates — a *different* (but equally pinned) RNG stream,
/// since geometric sampling spends one uniform per packet instead of one
/// per source, class and cycle.
fn geometric_small_scenario_network() -> Network {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 3_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 42;
    cfg.injection = InjectionProcess::Geometric;
    let sources: Vec<SourceSpec> = mesh
        .tiles()
        .map(|t| SourceSpec {
            tile: t,
            group: t.index() % 2,
            cache: Schedule::per_kilocycle(20.0),
            mem: Schedule::per_kilocycle(4.0),
        })
        .collect();
    let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
    Network::new(cfg, traffic).expect("valid config")
}

/// Golden regression for the geometric injection process, captured when
/// the mode was introduced. Drift in any value means either the sampler
/// (`Schedule::next_arrival`), the arrival heap's tie-breaking, or the
/// fast-forward clamping changed semantics.
#[test]
fn pinned_golden_geometric_small_scenario() {
    let r = geometric_small_scenario_network().run();
    assert_eq!(r.injected, 1_159);
    assert_eq!(r.delivered, 1_159);
    assert!(r.fully_drained);
    assert_eq!(r.measured_cycles, 3_000);
    assert_eq!(r.network.link_flit_traversals, 10_325);
    assert_eq!(r.network.peak_buffered_flits, 37);
    assert_eq!(r.network.cycles_run, 3_506);
    assert_eq!(r.cache.packets, 968);
    assert_eq!(r.cache.total_hops, 2_427);
    assert_eq!(r.cache.total_flits, 2_928);
    assert_eq!(r.cache.flit_hops, 7_311);
    // Latencies are integer cycle counts summed into an f64, so the sum is
    // exact and == is meaningful.
    assert_eq!(r.cache.total_latency, 12_984.0);
    assert_eq!(r.memory.packets, 191);
    assert_eq!(r.memory.total_latency, 3_023.0);
    assert!((r.g_apl() - 13.81104400345125).abs() < 1e-9);
    assert!((r.max_apl() - 14.245762711864407).abs() < 1e-9);
    assert!((r.mean_td_q() - 0.316100397918580).abs() < 1e-9);
    assert_eq!(r.network.arrival_draws, 1_365);
    // At this load the network is rarely quiescent; the unprobed run still
    // finds a few dead stretches. (Not part of semantic_eq — probed runs
    // clamp differently — but deterministic for the unprobed path.)
    assert_eq!(r.network.skipped_cycles, 23);

    // Two geometric runs of the same seed are bit-identical, probed or not.
    let again = geometric_small_scenario_network().run();
    assert!(r.semantic_eq(&again), "geometric seeded runs diverged");
    let probed = geometric_small_scenario_network().run_probed(&mut NoopSink);
    assert!(r.semantic_eq(&probed), "NoopSink diverged under Geometric");
    let mut sink = RingSink::new(1024);
    let ringed = geometric_small_scenario_network().run_probed(&mut sink);
    assert!(r.semantic_eq(&ringed), "RingSink diverged under Geometric");
}

/// Window spans stay exact when the fast-forward jumps over multi-window
/// idle stretches: one ultra-low-rate source (~0.5 pkt/kcycle/class) makes
/// the simulator skip ~98% of all cycles, yet every window on the grid is
/// emitted with its full span and the right phase.
#[test]
fn geometric_windows_stay_exact_across_skipped_regions() {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 5_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 7;
    cfg.injection = InjectionProcess::Geometric;
    let src = SourceSpec {
        tile: TileId(0),
        group: 0,
        cache: Schedule::per_kilocycle(0.5),
        mem: Schedule::per_kilocycle(0.5),
    };
    let traffic = TrafficSpec::new(vec![src], 1).expect("valid traffic");
    let mut sink = RingSink::new(1024);
    let r = Network::new(cfg, traffic)
        .expect("valid config")
        .run_probed(&mut sink);
    // Pinned: 3 arrivals total (2 in warmup), the run ends exactly at the
    // injection horizon, and the vast majority of cycles were skipped.
    assert_eq!(r.injected, 1);
    assert_eq!(r.delivered, 1);
    assert_eq!(r.network.cycles_run, 5_500);
    assert_eq!(r.network.arrival_draws, 5);
    assert_eq!(r.network.skipped_cycles, 5_409);
    let spans: Vec<(u64, u64, Phase, u64)> = sink
        .windows()
        .map(|w| (w.start_cycle, w.end_cycle, w.phase, w.injected_packets))
        .collect();
    assert_eq!(
        spans,
        vec![
            (0, 500, Phase::Warmup, 2),
            (500, 1_000, Phase::Measure, 0),
            (1_000, 2_000, Phase::Measure, 0),
            (2_000, 3_000, Phase::Measure, 1),
            (3_000, 4_000, Phase::Measure, 0),
            (4_000, 5_000, Phase::Measure, 0),
            (5_000, 5_500, Phase::Measure, 0),
        ]
    );
}

/// Piecewise epochs stay exact under geometric sampling: with a schedule
/// alternating silent and busy 1000-cycle epochs aligned to the window
/// grid, every silent-epoch window must report zero injections — a draw
/// leaking across an epoch boundary would break this immediately.
#[test]
fn geometric_piecewise_epoch_boundaries_are_exact() {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 4_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 11;
    cfg.injection = InjectionProcess::Geometric;
    let src = SourceSpec {
        tile: TileId(0),
        group: 0,
        cache: Schedule::Piecewise {
            epoch_cycles: 1_000,
            rates: vec![0.0, 0.05],
        },
        mem: Schedule::Constant(0.0),
    };
    let traffic = TrafficSpec::new(vec![src], 1).expect("valid traffic");
    let mut sink = RingSink::new(1024);
    let r = Network::new(cfg, traffic)
        .expect("valid config")
        .run_probed(&mut sink);
    assert_eq!(r.injected, 106);
    assert_eq!(r.delivered, 106);
    assert_eq!(r.network.cycles_run, 4_004);
    assert_eq!(r.network.arrival_draws, 107);
    assert_eq!(r.network.skipped_cycles, 2_889);
    assert_eq!(r.cache.total_latency, 1_749.0);
    let spans: Vec<(u64, u64, Phase, u64)> = sink
        .windows()
        .map(|w| (w.start_cycle, w.end_cycle, w.phase, w.injected_packets))
        .collect();
    // Epochs [0,1000) and [2000,3000) are silent: zero injections, exactly.
    assert_eq!(
        spans,
        vec![
            (0, 1_000, Phase::Measure, 0),
            (1_000, 2_000, Phase::Measure, 43),
            (2_000, 3_000, Phase::Measure, 0),
            (3_000, 4_000, Phase::Measure, 63),
            (4_000, 4_004, Phase::Drain, 0),
        ]
    );
}

/// The DESIGN.md §12 decomposition identity, pinned on the golden
/// scenario: for every delivered packet, `source_queue + in_network +
/// serialization = latency` holds *exactly*, and the measured packets'
/// latencies aggregate to the same totals the report accumulates.
#[test]
fn pinned_decomposition_identity_on_golden_scenario() {
    let mut sink = RingSink::new(65_536).with_packets();
    let r = small_scenario_network().run_probed(&mut sink);
    assert!(r.semantic_eq(&small_scenario()), "packet probe perturbed");

    let packets: Vec<_> = sink.packets().copied().collect();
    assert!(!packets.is_empty());
    for p in &packets {
        assert_eq!(
            p.source_queue() + p.in_network() + p.serialization(),
            p.latency(),
            "decomposition identity broken for {p:?}"
        );
        assert!(p.inject_cycle >= p.enqueue_cycle);
        assert!(p.head_eject_cycle >= p.inject_cycle);
        assert!(p.tail_eject_cycle >= p.head_eject_cycle);
    }
    // Measured packet records reconcile with the report: same count, and
    // their latencies sum to the report's exact f64 totals.
    let measured: Vec<_> = packets.iter().filter(|p| p.measured).collect();
    assert_eq!(measured.len() as u64, r.delivered);
    assert_eq!(measured.len(), 1_092);
    let latency_sum: u64 = measured.iter().map(|p| p.latency()).sum();
    assert_eq!(
        latency_sum as f64,
        r.cache.total_latency + r.memory.total_latency
    );

    // The flow summary is exactly the aggregation of the measured records.
    let flow = sink
        .flow_summaries()
        .next()
        .expect("probed run emits a flow summary");
    assert_eq!(flow.total_packets(), r.delivered);
    assert_eq!(flow.cache.packets, r.cache.packets);
    assert_eq!(flow.memory.packets, r.memory.packets);
    let merged = flow.merged();
    assert_eq!(merged.histogram.total(), r.delivered);
    assert_eq!(
        merged.source_queue + merged.in_network + merged.serialization,
        latency_sum
    );
}

/// The heatmap conservation law on both pinned scenarios: the per-link
/// flit counts sum to exactly `NetworkStats.link_flit_traversals`
/// (9 592 under Bernoulli, 10 325 under Geometric — the PR 1/PR 4 golden
/// values), and the ASCII rendering is deterministic.
#[test]
fn pinned_heatmap_link_conservation_both_injection_modes() {
    let mut sink = RingSink::new(1_024);
    let r = small_scenario_network().run_probed(&mut sink);
    let heat = sink.heatmaps().next().expect("heatmap emitted");
    assert_eq!(r.network.link_flit_traversals, 9_592);
    assert_eq!(heat.total_link_flits(), 9_592);
    assert_eq!(heat.links().map(|l| l.flits).sum::<u64>(), 9_592);
    assert_eq!(heat.num_links(), r.network.num_links);
    assert_eq!(heat.cycles, r.network.cycles_run);
    assert_eq!(heat.ascii_mesh(), heat.ascii_mesh());

    let mut sink = RingSink::new(1_024);
    let r = geometric_small_scenario_network().run_probed(&mut sink);
    let heat = sink.heatmaps().next().expect("heatmap emitted");
    assert_eq!(r.network.link_flit_traversals, 10_325);
    assert_eq!(heat.total_link_flits(), 10_325);
    assert_eq!(heat.links().map(|l| l.flits).sum::<u64>(), 10_325);

    // Occupancy integrals only accumulate where flits actually were, and
    // the stall counters stay plausible (bounded by cycles × routers).
    let total_occ: u64 = heat.vc_occupancy.iter().sum();
    assert!(total_occ > 0, "traffic must occupy buffers");
    let n_routers = (heat.rows * heat.cols) as u64;
    for stalls in [&heat.credit_stalls, &heat.vc_stalls] {
        let total: u64 = stalls.iter().sum();
        assert!(total <= heat.cycles * n_routers);
    }
}

/// Wall-clock profile records are opt-in observers: a `with_profile`
/// probe must not perturb the golden semantics, and the profiled windows
/// must tile the run exactly like the telemetry windows do.
#[test]
fn profile_records_cover_run_without_perturbing_it() {
    let mut sink = RingSink::new(1_024).with_profile();
    let r = small_scenario_network().run_probed(&mut sink);
    assert!(
        r.semantic_eq(&small_scenario()),
        "profile probe perturbed the run"
    );
    let profiles: Vec<_> = sink.profiles().copied().collect();
    let windows: Vec<_> = sink.windows().cloned().collect();
    assert_eq!(profiles.len(), windows.len());
    for (p, w) in profiles.iter().zip(&windows) {
        assert_eq!(p.window_index, w.index);
        assert_eq!(p.start_cycle, w.start_cycle);
        assert_eq!(p.end_cycle, w.end_cycle);
    }
    // Wall time was actually measured somewhere in the run.
    assert!(profiles.iter().map(|p| p.total_nanos()).sum::<u64>() > 0);
    // A probe that does NOT opt in receives no profile records.
    let mut plain = RingSink::new(1_024);
    small_scenario_network().run_probed(&mut plain);
    assert_eq!(plain.profiles().count(), 0);
}

/// Nearest-rank quantile on a plain sorted vector — the reference the
/// histogram implementation must match.
fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact-quantile reconstruction: the flow histogram's quantiles must
    /// equal quantiles computed from the raw sorted per-packet latency
    /// list, for random loads and random probe points — the histogram is
    /// lossless, not an approximation.
    #[test]
    fn histogram_quantiles_match_sorted_raw_latencies(
        cache_rate in 0.002f64..0.04,
        seed in any::<u64>(),
        qs in proptest::collection::vec(0.01f64..1.0, 1..6),
    ) {
        let mesh = Mesh::square(4);
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 1_500;
        cfg.max_drain_cycles = 200_000;
        cfg.seed = seed;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(cache_rate),
                mem: Schedule::Constant(cache_rate * 0.2),
            })
            .collect();
        let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
        let mut sink = RingSink::new(65_536).with_packets();
        let r = Network::new(cfg, traffic).expect("valid config").run_probed(&mut sink);
        prop_assert!(r.fully_drained);

        let mut raw: Vec<u64> = sink
            .packets()
            .filter(|p| p.measured)
            .map(|p| p.latency())
            .collect();
        prop_assert_eq!(raw.len() as u64, r.delivered);
        raw.sort_unstable();

        let flow = sink.flow_summaries().next().expect("flow summary emitted");
        let h = &flow.merged().histogram;
        prop_assert_eq!(h.total(), raw.len() as u64);
        if raw.is_empty() {
            prop_assert_eq!(h.quantile(0.99), None);
        } else {
            prop_assert_eq!(h.min(), Some(raw[0]));
            prop_assert_eq!(h.max(), Some(*raw.last().unwrap()));
            prop_assert_eq!(h.quantile(1.0), h.max());
            for &q in &qs {
                prop_assert_eq!(
                    h.quantile(q),
                    Some(sorted_quantile(&raw, q)),
                    "quantile({}) drifted from the sorted reference", q
                );
            }
        }
        // Per-packet decomposition identity holds under random load too.
        for p in sink.packets() {
            prop_assert_eq!(
                p.source_queue() + p.in_network() + p.serialization(),
                p.latency()
            );
        }
        // And the heatmap conserves flit traversals under random load.
        let heat = sink.heatmaps().next().expect("heatmap emitted");
        prop_assert_eq!(heat.total_link_flits(), r.network.flit_hops());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Heatmap link conservation under `InjectionProcess::Geometric` with
    /// fast-forward: skipped regions must not lose or invent link
    /// traversals.
    #[test]
    fn geometric_heatmap_conserves_link_flits(
        cache_rate in 0.0005f64..0.03,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh::square(4);
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 1_500;
        cfg.max_drain_cycles = 200_000;
        cfg.seed = seed;
        cfg.injection = InjectionProcess::Geometric;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(cache_rate),
                mem: Schedule::Constant(cache_rate * 0.2),
            })
            .collect();
        let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
        let mut sink = RingSink::new(4_096);
        let r = Network::new(cfg, traffic).expect("valid config").run_probed(&mut sink);
        prop_assert!(r.fully_drained);
        let heat = sink.heatmaps().next().expect("heatmap emitted");
        prop_assert_eq!(heat.total_link_flits(), r.network.link_flit_traversals);
        prop_assert_eq!(heat.links().map(|l| l.flits).sum::<u64>(), heat.total_link_flits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: with a drain budget generous enough to finish, every
    /// injected (measured) packet is delivered exactly once, and the flit
    /// totals agree across all three accounting axes (class, group,
    /// source) — under random loads, buffer depths and VC counts.
    #[test]
    fn packets_and_flits_are_conserved(
        n in 3usize..=4,
        vcs in 1usize..=3,
        depth in 2usize..=6,
        cache_rate in 0.001f64..0.05,
        mem_rate in 0.0f64..0.01,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh::square(n);
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.vcs_per_class = vcs;
        cfg.buffer_depth = depth;
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 1_500;
        cfg.max_drain_cycles = 200_000;
        cfg.seed = seed;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(cache_rate),
                mem: Schedule::Constant(mem_rate),
            })
            .collect();
        let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
        let r = Network::new(cfg, traffic).expect("valid config").run();
        prop_assert!(r.fully_drained, "drain budget exhausted");
        prop_assert_eq!(r.injected, r.delivered);
        // Class, group and source accounting must agree packet-by-packet.
        let by_class = r.cache.packets + r.memory.packets;
        let by_group: u64 = r.groups.iter().map(|g| g.packets).sum();
        let by_source: u64 = r.per_source.iter().map(|s| s.packets).sum();
        prop_assert_eq!(by_class, r.delivered);
        prop_assert_eq!(by_group, r.delivered);
        prop_assert_eq!(by_source, r.delivered);
        let flits_by_class = r.cache.total_flits + r.memory.total_flits;
        let flits_by_group: u64 = r.groups.iter().map(|g| g.total_flits).sum();
        prop_assert_eq!(flits_by_class, flits_by_group);
        let hops_by_class = r.cache.flit_hops + r.memory.flit_hops;
        let hops_by_group: u64 = r.groups.iter().map(|g| g.flit_hops).sum();
        prop_assert_eq!(hops_by_class, hops_by_group);
        prop_assert_eq!(r.total_flit_hops(), hops_by_class);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation under `InjectionProcess::Geometric` + fast-forward:
    /// the event-driven front-end must inject/deliver exactly like a
    /// cycle-stepped one — no packet may be lost or duplicated across
    /// skipped regions, and all accounting axes must still agree.
    #[test]
    fn geometric_packets_and_flits_are_conserved(
        n in 3usize..=4,
        vcs in 1usize..=3,
        depth in 2usize..=6,
        cache_rate in 0.0005f64..0.05,
        mem_rate in 0.0f64..0.01,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh::square(n);
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.vcs_per_class = vcs;
        cfg.buffer_depth = depth;
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 1_500;
        cfg.max_drain_cycles = 200_000;
        cfg.seed = seed;
        cfg.injection = InjectionProcess::Geometric;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(cache_rate),
                mem: Schedule::Constant(mem_rate),
            })
            .collect();
        let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
        let r = Network::new(cfg, traffic).expect("valid config").run();
        prop_assert!(r.fully_drained, "drain budget exhausted");
        prop_assert_eq!(r.injected, r.delivered);
        let by_class = r.cache.packets + r.memory.packets;
        let by_group: u64 = r.groups.iter().map(|g| g.packets).sum();
        let by_source: u64 = r.per_source.iter().map(|s| s.packets).sum();
        prop_assert_eq!(by_class, r.delivered);
        prop_assert_eq!(by_group, r.delivered);
        prop_assert_eq!(by_source, r.delivered);
        let flits_by_class = r.cache.total_flits + r.memory.total_flits;
        let flits_by_group: u64 = r.groups.iter().map(|g| g.total_flits).sum();
        prop_assert_eq!(flits_by_class, flits_by_group);
        // One uniform per injected packet is the *minimum* draw count
        // (cross-epoch resamples add more; constant schedules never do,
        // but warmup+measure packets both draw while only measured ones
        // count into `injected`).
        prop_assert!(r.network.arrival_draws >= r.injected);
    }
}
