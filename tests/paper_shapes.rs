//! Integration tests pinning the paper's headline result *shapes* (not
//! absolute numbers): who wins, by roughly what factor, and in which
//! direction — across the full trace → workload → instance → mapping
//! pipeline.

use obm::mapping::algorithms::{Global, Mapper, MonteCarlo, SortSelectSwap};
use obm::mapping::{evaluate, ObmInstance};
use obm::model::{Mesh, TileLatencies};
use obm::workload::{PaperConfig, WorkloadBuilder};

fn instance_for(cfg: PaperConfig) -> ObmInstance {
    let (w, _) = WorkloadBuilder::paper(cfg).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = w.rate_vectors();
    ObmInstance::new(tiles, w.boundaries(), c, m)
}

/// Table 1's story: Global lowers g-APL but raises max-APL and dev-APL
/// relative to the random-mapping average.
#[test]
fn global_trades_balance_for_overall_latency() {
    for cfg in [PaperConfig::C1, PaperConfig::C3] {
        let inst = instance_for(cfg);
        let rand = obm::mapping::algorithms::RandomMapper::averages(&inst, 1_000, 5);
        let glob = evaluate(&inst, &Global.map(&inst, 0));
        assert!(
            glob.g_apl < rand.mean_g_apl,
            "{}: Global must win on g-APL",
            cfg.name()
        );
        assert!(
            glob.max_apl > rand.mean_max_apl,
            "{}: Global must lose on max-APL",
            cfg.name()
        );
        assert!(
            glob.dev_apl > 2.0 * rand.mean_dev_apl,
            "{}: Global dev-APL should be multiples of random ({} vs {})",
            cfg.name(),
            glob.dev_apl,
            rand.mean_dev_apl
        );
    }
}

/// Figure 9's story: SSS reduces max-APL vs Global by roughly ten percent
/// (paper: 10.42% average).
#[test]
fn sss_reduces_max_apl_by_around_ten_percent() {
    let mut total_gain = 0.0;
    let configs = PaperConfig::ALL;
    for cfg in configs {
        let inst = instance_for(cfg);
        let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
        let glob = evaluate(&inst, &Global.map(&inst, 0));
        assert!(
            sss.max_apl < glob.max_apl,
            "{}: SSS must beat Global on max-APL",
            cfg.name()
        );
        total_gain += 1.0 - sss.max_apl / glob.max_apl;
    }
    let avg_gain = total_gain / configs.len() as f64;
    assert!(
        (0.05..0.25).contains(&avg_gain),
        "average max-APL gain {avg_gain:.3} not in the paper's ballpark (~0.10)"
    );
}

/// Table 4's story: SSS collapses dev-APL by ~two orders of magnitude vs
/// Global (paper: −99.65%) and clearly beats MC.
#[test]
fn sss_collapses_dev_apl() {
    let mut g_sum = 0.0;
    let mut mc_sum = 0.0;
    let mut sss_sum = 0.0;
    for cfg in [PaperConfig::C1, PaperConfig::C5, PaperConfig::C7] {
        let inst = instance_for(cfg);
        g_sum += evaluate(&inst, &Global.map(&inst, 0)).dev_apl;
        mc_sum += evaluate(&inst, &MonteCarlo::with_samples(2_000).map(&inst, 1)).dev_apl;
        sss_sum += evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).dev_apl;
    }
    assert!(
        sss_sum < 0.05 * g_sum,
        "SSS dev-APL {sss_sum} not ≪ Global {g_sum}"
    );
    assert!(
        sss_sum < mc_sum,
        "SSS dev-APL {sss_sum} not better than MC {mc_sum}"
    );
}

/// Figure 10's story: SSS's g-APL overhead vs Global stays within a few
/// percent (paper: < 3.82%).
#[test]
fn sss_g_apl_overhead_is_small() {
    for cfg in PaperConfig::ALL {
        let inst = instance_for(cfg);
        let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
        let glob = evaluate(&inst, &Global.map(&inst, 0));
        let overhead = sss.g_apl / glob.g_apl - 1.0;
        assert!(
            overhead < 0.06,
            "{}: g-APL overhead {overhead:.3} exceeds 6%",
            cfg.name()
        );
        assert!(
            overhead > -1e-9,
            "Global is the g-APL optimum by construction"
        );
    }
}

/// The applications end up with *near-equal* APLs under SSS — the paper's
/// Figure 8(b).
#[test]
fn sss_apls_nearly_equal() {
    let inst = instance_for(PaperConfig::C1);
    let r = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
    let spread = r.max_apl - r.min_apl;
    assert!(
        spread < 0.15,
        "per-app APL spread {spread:.3} cycles too wide: {:?}",
        r.per_app
    );
}

/// MC with the paper's 10⁴ draws lands between Global and SSS on max-APL.
#[test]
fn mc_is_between_global_and_sss() {
    let inst = instance_for(PaperConfig::C2);
    let glob = evaluate(&inst, &Global.map(&inst, 0)).max_apl;
    let mc = evaluate(&inst, &MonteCarlo::with_samples(10_000).map(&inst, 3)).max_apl;
    let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).max_apl;
    assert!(mc < glob, "MC {mc} must beat Global {glob}");
    assert!(
        sss <= mc + 0.15,
        "SSS {sss} should not lose clearly to MC {mc}"
    );
}
