//! Property-based integration tests: every mapping algorithm must produce
//! valid, deterministic-or-seeded mappings on arbitrary instances, and the
//! evaluation obeys its mathematical invariants.

use obm::mapping::algorithms::{
    BruteForce, Global, Mapper, MonteCarlo, RandomMapper, SimulatedAnnealing, SortSelectSwap,
};
use obm::mapping::{evaluate, ObmInstance};
use obm::model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use proptest::prelude::*;

/// Strategy: a random OBM instance on an n×n mesh (n ∈ 2..=5) with 2–4
/// applications and positive rates, possibly fewer threads than tiles.
fn arb_instance() -> impl Strategy<Value = ObmInstance> {
    (2usize..=5, 2usize..=4, 0usize..=3, any::<u64>())
        .prop_flat_map(|(n, apps, spare, seed)| {
            let tiles_total = n * n;
            let threads = tiles_total.saturating_sub(spare).max(apps);
            (
                Just(n),
                Just(apps),
                Just(threads),
                proptest::collection::vec(0.01f64..10.0, threads),
                proptest::collection::vec(0.0f64..2.0, threads),
                Just(seed),
            )
        })
        .prop_map(|(n, apps, threads, c, m, _seed)| {
            let mesh = Mesh::square(n);
            let mcs = MemoryControllers::corners(&mesh);
            let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
            // contiguous app boundaries splitting threads as evenly as possible
            let mut bounds = vec![0];
            for a in 1..=apps {
                bounds.push(a * threads / apps);
            }
            // ensure strictly increasing (possible duplicates for tiny thread counts)
            bounds.dedup();
            if bounds.len() < 2 {
                bounds.push(threads);
            }
            *bounds.last_mut().unwrap() = threads;
            ObmInstance::new(tl, bounds, c, m)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every algorithm returns a valid injective mapping.
    #[test]
    fn all_algorithms_produce_valid_mappings(inst in arb_instance(), seed in any::<u64>()) {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(RandomMapper),
            Box::new(Global),
            Box::new(MonteCarlo::with_samples(50)),
            Box::new(SimulatedAnnealing::with_iterations(500)),
            Box::new(SortSelectSwap::default()),
        ];
        for mapper in &mappers {
            let m = mapper.map(&inst, seed);
            prop_assert!(m.is_valid_for(&inst), "{} produced invalid mapping", mapper.name());
        }
    }

    /// max-APL dominates every per-app APL and the volume-weighted mean
    /// (g-APL); per-app APLs live inside the per-tile cost hull.
    #[test]
    fn apl_invariants(inst in arb_instance(), seed in any::<u64>()) {
        let m = RandomMapper.map(&inst, seed);
        let r = evaluate(&inst, &m);
        for &d in &r.per_app {
            prop_assert!(d <= r.max_apl + 1e-9);
            prop_assert!(d >= r.min_apl - 1e-9);
            prop_assert!(d >= 0.0);
        }
        prop_assert!(r.g_apl <= r.max_apl + 1e-9);
        prop_assert!(r.g_apl >= r.min_apl - 1e-9);
        // hull: an app's APL can't exceed the worst single-tile unit cost
        let worst_tile = (0..inst.num_tiles())
            .map(|k| {
                let t = obm::model::TileId(k);
                inst.tiles().tc(t).max(inst.tiles().tc(t) + inst.tiles().tm(t))
            })
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(r.max_apl <= worst_tile + 1e-9);
    }

    /// Global is the optimum of the g-APL objective: no other algorithm
    /// can undercut it.
    #[test]
    fn global_is_g_apl_lower_bound(inst in arb_instance(), seed in any::<u64>()) {
        let g = evaluate(&inst, &Global.map(&inst, 0)).g_apl;
        for mapper in [&SortSelectSwap::default() as &dyn Mapper, &RandomMapper] {
            let r = evaluate(&inst, &mapper.map(&inst, seed));
            prop_assert!(r.g_apl >= g - 1e-9, "{} beat the Global optimum", mapper.name());
        }
    }

    /// The default objective is bit-identical with the historical paths:
    /// `ObjectiveSpec::MinMaxApl.score` equals `evaluate().max_apl`
    /// exactly (same f64 bits), and `Mapper::map_objective` under
    /// MinMaxApl returns the very mapping `map` does.
    #[test]
    fn min_max_apl_objective_is_bit_identical(inst in arb_instance(), seed in any::<u64>()) {
        use obm::mapping::ObjectiveSpec;
        let spec = ObjectiveSpec::MinMaxApl;
        for mapper in [&SortSelectSwap::default() as &dyn Mapper, &Global, &RandomMapper] {
            let m = mapper.map(&inst, seed);
            prop_assert_eq!(
                spec.score(&inst, &m).to_bits(),
                evaluate(&inst, &m).max_apl.to_bits(),
                "{} score diverged from evaluate()", mapper.name()
            );
            let via_objective = mapper.map_objective(&inst, seed, spec.build().as_ref());
            prop_assert_eq!(via_objective, m, "{} map_objective diverged", mapper.name());
        }
    }

    /// SSS and Global are deterministic; seeded algorithms reproduce.
    #[test]
    fn determinism(inst in arb_instance(), seed in any::<u64>()) {
        prop_assert_eq!(
            SortSelectSwap::default().map(&inst, 0),
            SortSelectSwap::default().map(&inst, 1)
        );
        prop_assert_eq!(Global.map(&inst, 0), Global.map(&inst, 1));
        let sa = SimulatedAnnealing::with_iterations(200);
        prop_assert_eq!(sa.map(&inst, seed), sa.map(&inst, seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On instances small enough for exact search, no heuristic beats the
    /// brute-force optimum, and SSS stays within 25% of it.
    #[test]
    fn heuristics_respect_exact_optimum(
        c in proptest::collection::vec(0.05f64..5.0, 6),
        seed in any::<u64>(),
    ) {
        let mesh = Mesh::new(2, 3);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let m: Vec<f64> = c.iter().map(|x| x * 0.1).collect();
        let inst = ObmInstance::new(tl, vec![0, 3, 6], c, m);
        let best = evaluate(&inst, &BruteForce.map(&inst, 0)).max_apl;
        let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).max_apl;
        let sa = evaluate(&inst, &SimulatedAnnealing::with_iterations(2_000).map(&inst, seed)).max_apl;
        prop_assert!(sss >= best - 1e-9);
        prop_assert!(sa >= best - 1e-9);
        prop_assert!(sss <= best * 1.25, "SSS {sss} too far from optimum {best}");
    }
}
