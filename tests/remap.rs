//! Integration tests for the closed-loop online remapping subsystem
//! (DESIGN.md §14): the headline drifting-workload scenario where the
//! [`RemapController`] beats a static mapping's realized max-APL, the
//! golden determinism pins (remap cycles + final mapping for a fixed
//! seed), the no-drift guarantee (zero remaps and a semantically
//! identical report), and the retarget-vector validation errors.

use obm::prelude::*;

const SEED: u64 = 0xD01F;
const WARMUP: u64 = 2_000;
const MEASURE: u64 = 28_000;
const WINDOW: u64 = 1_000;
const EPOCH: u64 = 6_000;

/// The drifting-workload scenario: 2 apps × 4 threads on a 4×4 mesh
/// with a single memory controller at tile 0, so distance-to-memory
/// dominates placement quality. In epoch 1 app 0 is memory-bound and
/// app 1 is a light cache-bound app; epoch 2 flips the roles, so the
/// mapping solved for epoch 1 strands the (newly memory-bound) app 1
/// far from the controller.
fn drift_epochs() -> (ObmInstance, ObmInstance, Mesh) {
    let mesh = Mesh::square(4);
    let mcs = MemoryControllers::try_custom(&mesh, vec![TileId(0)]).expect("valid placement");
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let heavy = (2.0, 10.0); // (cache, mem) packets per kilocycle per thread
    let light = (3.0, 0.3);
    let build = |first: (f64, f64), second: (f64, f64)| {
        let c: Vec<f64> = std::iter::repeat_n(first.0, 4)
            .chain(std::iter::repeat_n(second.0, 4))
            .collect();
        let m: Vec<f64> = std::iter::repeat_n(first.1, 4)
            .chain(std::iter::repeat_n(second.1, 4))
            .collect();
        ObmInstance::new(tiles.clone(), vec![0, 4, 8], c, m)
    };
    (build(heavy, light), build(light, heavy), mesh)
}

fn drift_config(mesh: Mesh) -> SimConfig {
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(0)]).expect("valid placement");
    cfg.warmup_cycles = WARMUP;
    cfg.measure_cycles = MEASURE;
    cfg.seed = SEED;
    cfg.telemetry_window = WINDOW;
    cfg
}

/// The drifting traffic: epoch 1 until cycle 6 000, epoch 2 for the
/// rest of the run (the trace covers warmup + measurement exactly, so
/// the wrap-around of `piecewise_traffic_spec` never engages).
fn drift_traffic(e1: &ObmInstance, e2: &ObmInstance, mapping: &Mapping) -> TrafficSpec {
    piecewise_traffic_spec(&[e1, e2, e2, e2, e2], mapping, EPOCH)
}

fn max_group_apl(report: &SimReport) -> f64 {
    report
        .groups
        .iter()
        .filter(|g| g.packets > 0)
        .map(|g| g.apl())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Run the drifting scenario under the controller; returns the report
/// and the controller (with its event log and final mapping).
fn run_controlled_drift() -> (SimReport, RemapController) {
    let (e1, e2, mesh) = drift_epochs();
    let mapping = SortSelectSwap::default().map(&e1, 0);
    let traffic = drift_traffic(&e1, &e2, &mapping);
    let mut ctrl = RemapController::new(e1.clone(), mapping, mesh).expect("valid controller");
    let report = Network::new(drift_config(mesh), traffic)
        .expect("valid scenario")
        .run_controlled(&mut NoopSink, &mut ctrl)
        .expect("controller produces valid retargets");
    (report, ctrl)
}

/// Headline: on the drifting workload the closed-loop controller beats
/// the static epoch-1 mapping's realized max-APL by at least 5%, with
/// a bounded number of migrations.
#[test]
fn controller_beats_static_mapping_on_drifting_workload() {
    let (e1, e2, mesh) = drift_epochs();
    let mapping = SortSelectSwap::default().map(&e1, 0);

    let static_report = Network::new(drift_config(mesh), drift_traffic(&e1, &e2, &mapping))
        .expect("valid scenario")
        .run();
    let (controlled_report, ctrl) = run_controlled_drift();

    let static_apl = max_group_apl(&static_report);
    let controlled_apl = max_group_apl(&controlled_report);
    assert!(
        ctrl.remap_count() >= 1,
        "the drift must trigger at least one accepted remap"
    );
    let improvement = (static_apl - controlled_apl) / static_apl;
    assert!(
        improvement >= 0.05,
        "controller must beat static max-APL by >= 5%: \
         static {static_apl:.3}, controlled {controlled_apl:.3} \
         ({:.1}% better, {} remaps, {} threads moved over {} hops)",
        improvement * 100.0,
        ctrl.remap_count(),
        ctrl.events().iter().map(|e| e.threads_moved).sum::<usize>(),
        ctrl.total_migration_cost(),
    );
    // The migrations that bought the improvement are accounted for.
    assert!(ctrl.total_migration_cost() > 0);
    for ev in ctrl.events() {
        assert!(ev.threads_moved > 0);
        assert!(ev.migration_cost >= ev.threads_moved as u64);
        assert!(ev.drift > 0.0);
    }
}

/// Golden determinism: the fixed seed pins the controller's decision
/// sequence — same remap cycles, same final mapping, bit-identical
/// report on a re-run.
#[test]
fn controlled_run_is_deterministic_and_pinned() {
    let (first_report, first_ctrl) = run_controlled_drift();
    let (second_report, second_ctrl) = run_controlled_drift();

    assert_eq!(first_ctrl.events(), second_ctrl.events());
    assert_eq!(
        first_ctrl.mapping().as_slice(),
        second_ctrl.mapping().as_slice()
    );
    assert!(
        first_report.semantic_eq(&second_report),
        "same seed must replay bit-identically"
    );

    // Pinned decision sequence for SEED (regenerate deliberately if the
    // simulator or controller semantics change).
    let cycles: Vec<u64> = first_ctrl.events().iter().map(|e| e.cycle).collect();
    assert_eq!(cycles, vec![8_000], "remap cycles drifted from the pin");
    let final_tiles: Vec<usize> = first_ctrl
        .mapping()
        .as_slice()
        .iter()
        .map(|t| t.index())
        .collect();
    assert_eq!(
        final_tiles,
        vec![0, 2, 12, 1, 9, 8, 5, 4],
        "final mapping drifted from the pin"
    );
}

/// No drift, no action: under steady traffic the controller never
/// remaps, never even re-solves, and the report is semantically
/// identical to the plain uncontrolled run. Bernoulli injection keeps
/// both paths on the exact same per-cycle RNG schedule. The telemetry
/// window is sized so each app sees a few hundred packets per window:
/// drift detection compares per-window sample means against the
/// calibration baseline, and the window must be long enough that
/// sampling noise stays well below the 15% drift threshold (a
/// mixed near/far app on ~50-packet windows can wander past it by
/// chance — window sizing is the deployment knob that sets the
/// detector's noise floor, see DESIGN.md §14).
#[test]
fn steady_traffic_is_left_untouched() {
    let (e1, _, mesh) = drift_epochs();
    let mapping = SortSelectSwap::default().map(&e1, 0);
    let traffic = || traffic_spec(&e1, &mapping);
    let mut cfg = drift_config(mesh);
    cfg.measure_cycles = 24_000;
    cfg.telemetry_window = 4_000;
    cfg.injection = obm::sim::InjectionProcess::BernoulliPerCycle;

    let plain = Network::new(cfg.clone(), traffic())
        .expect("valid scenario")
        .run();
    let mut ctrl =
        RemapController::new(e1.clone(), mapping.clone(), mesh).expect("valid controller");
    let controlled = Network::new(cfg, traffic())
        .expect("valid scenario")
        .run_controlled(&mut NoopSink, &mut ctrl)
        .expect("no retarget can fail");

    assert_eq!(ctrl.remap_count(), 0, "steady traffic must not remap");
    assert_eq!(ctrl.solves(), 0, "steady traffic must not even re-solve");
    assert_eq!(
        ctrl.mapping().as_slice(),
        mapping.as_slice(),
        "incumbent mapping must survive"
    );
    assert!(
        plain.semantic_eq(&controlled),
        "an idle controller must not perturb the simulation"
    );
}

/// A controller handing back a malformed retarget vector aborts the
/// run with the matching [`ConfigError`] instead of corrupting it.
struct BadRetarget(Option<Vec<TileId>>);

impl SwapController for BadRetarget {
    fn on_window(&mut self, record: &WindowRecord, _: &[SourceCounters]) -> Option<Vec<TileId>> {
        if record.phase == Phase::Measure {
            self.0.take()
        } else {
            None
        }
    }
}

#[test]
fn malformed_retargets_abort_the_run() {
    let (e1, _, mesh) = drift_epochs();
    let mapping = SortSelectSwap::default().map(&e1, 0);
    let run_with = |tiles: Vec<TileId>| {
        let mut ctrl = BadRetarget(Some(tiles));
        Network::new(drift_config(mesh), traffic_spec(&e1, &mapping))
            .expect("valid scenario")
            .run_controlled(&mut NoopSink, &mut ctrl)
    };

    assert!(matches!(
        run_with(vec![TileId(0)]),
        Err(ConfigError::RetargetLength {
            got: 1,
            expected: 8
        })
    ));
    assert!(matches!(
        run_with((0..7).map(TileId).chain([TileId(99)]).collect()),
        Err(ConfigError::SourceTileOutOfRange { tile: 99, .. })
    ));
    assert!(matches!(
        run_with(vec![TileId(3); 8]),
        Err(ConfigError::DuplicateSourceTile(3))
    ));
}
