#!/usr/bin/env bash
# Repo-wide quality gate. Run from anywhere; exits non-zero on the first
# failure. This is what CI (and reviewers) should run before merging:
#
#   1. rustfmt          — formatting must be canonical (`--check`, no writes)
#   2. clippy           — whole workspace incl. tests/benches, warnings fatal
#   3. tier-1 gate      — release build + full test suite
#   4. examples         — every example must build *and* run to completion
#   5. determinism      — the portfolio engine's worker-count-invariance
#                         suite, the batch-evaluation suite (eval_many ≡
#                         scratch evaluate bitwise + pinned solver goldens),
#                         the simulator's golden-report suite
#                         (Bernoulli + geometric injection), the
#                         online-remap controller's pinned decision
#                         sequence, the placement search's pinned
#                         exhaustive win + TM-vs-simulator agreement,
#                         and the sharded-engine suite (any shard
#                         count bit-identical to serial, forced to
#                         verify 4 shards via OBM_SIM_SHARDS),
#                         all in release mode (optimizations change
#                         f64 codegen timing, never the pinned bit
#                         patterns)
#   6. CLI smoke        — the observability subcommands (`experiments
#                         heatmap --json`, `experiments trace --chrome`)
#                         run on a generated C1 instance; the emitted
#                         JSON is arithmetic-checked (heatmap link
#                         conservation, chrome measured-event count =
#                         delivered) and the heatmap output must be
#                         byte-identical across two same-seed runs;
#                         the metrics surface (`--metrics` on simulate/
#                         solve + `obm status`) is smoke-tested the same
#                         way: family grep on the Prometheus text and
#                         byte-determinism across two same-seed runs
#                         under OBM_METRICS_CLOCK=logical
#   6b. bench gate       — `bench_compare.sh BENCH_PR9.json
#                         BENCH_PR10.json` guards the simulator hot
#                         loop: the disabled metrics path is priced by
#                         the raw c1 median (<= 10% vs the PR 9
#                         snapshot; DESIGN.md §17 budgets <= 1% on a
#                         quiet host), the enabled path by the
#                         metrics_delta_pct/enabled derived key
#   7. panic gate       — no new unwrap()/assert!/panic! in the non-test
#                         portions of noc-sim's config/network/traffic
#                         constructor paths (typed ConfigError), the
#                         portfolio engine (typed RequestError/
#                         CheckpointError), the CLI spec parser (typed
#                         SpecError), noc-telemetry's histogram/
#                         heatmap observers (probes must never abort a
#                         simulation), the batched evaluation engine
#                         (the parallel path must degrade, not abort),
#                         the Objective implementations and the
#                         online remap controller (typed RemapError;
#                         a mid-run controller must never abort a
#                         simulation), the ChipLayout/placement
#                         constructors and the outer placement search
#                         (typed PlacementError), the shard worker
#                         pool (a dead worker must surface as a
#                         closed channel, never an abort), or the
#                         noc-metrics registry (a metrics write must
#                         never abort the run it observes — poisoned
#                         locks are recovered, snapshot parsing
#                         returns SnapshotError)
#
# The tier-1 commands match ROADMAP.md; `--workspace` matters because the
# root package is a facade crate and a bare `cargo build` would silently
# skip obm-bench and the vendored crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q --workspace

echo "==> examples: build and run every example"
cargo build --release --workspace --examples
for ex in quickstart simulate_mapping app_consolidation custom_chip \
    np_reduction qos_priorities portfolio_solve noc_observability \
    online_remap placement_search runtime_metrics; do
    echo "--> example: $ex"
    cargo run --quiet --release --example "$ex" >/dev/null
done
echo "--> example: report_dump (noc-sim)"
cargo run --quiet --release -p noc-sim --example report_dump >/dev/null

echo "==> portfolio determinism suite (release)"
# The engine's contract — bit-identical outcome for any worker count — is
# pinned by unit tests in obm-portfolio and by the facade integration
# tests (proptest 1-worker == sequential best-of; pinned 1/2/4-worker
# equality on the 8x8 paper instance). Run them in release too: the f64
# codegen that optimizations pick must not change the pinned bits.
cargo test -q --release -p obm-portfolio
cargo test -q --release --test portfolio

echo "==> batch-evaluation determinism suite (release)"
# The batched SoA engine's contract — eval_many bit-identical to the
# scratch evaluator, worker-count-invariant parallel path, and solver
# goldens pinned to their pre-rewire bits — must hold under release
# codegen (the autovectorized kernel is only emitted there).
cargo test -q --release --test eval_batch

echo "==> simulator determinism suite (release)"
# The pinned golden SimReports — the default Bernoulli stream (unchanged
# since PR 1) and the geometric-injection goldens with their exact
# window spans across fast-forwarded regions — must hold under release
# codegen too.
cargo test -q --release --test sim_determinism

echo "==> shard determinism suite (release, OBM_SIM_SHARDS=4)"
# The row-band parallel engine's contract — bit-identical SimReport and
# telemetry for any shard count (DESIGN.md §16) — pinned on the 8×8 C1
# scenario, torus/YX, geometric fast-forward, the controlled-run path
# and a randomized proptest. OBM_SIM_SHARDS=4 forces the suite to
# verify up to 4 shards even on a 1-core host, and routes every
# env-consulting entry point through the sharded engine.
OBM_SIM_SHARDS=4 cargo test -q --release --test shard_determinism
# The bridge helpers every experiment shares must honor the same env
# knob without perturbing their goldens.
OBM_SIM_SHARDS=4 cargo test -q --release -p obm-bench sim_bridge

echo "==> online-remap determinism suite (release)"
# The closed-loop controller's decision sequence (remap cycles + final
# mapping for the pinned seed) and the headline drifting-workload win
# must replay bit-identically under release codegen.
cargo test -q --release --test remap

echo "==> placement determinism suite (release)"
# The outer placement search's contract — pinned exhaustive win over the
# corner default, D4 canonical-orbit count, bit-identical reruns from a
# fixed seed, and the analytic-vs-simulator TM agreement for arbitrary
# layouts — must hold under release codegen too.
cargo test -q --release --test placement

echo "==> metrics purity suite (release)"
# The noc-metrics registry's contract — metrics-on runs bit-identical to
# metrics-off (simulator report + portfolio mapping), lossless snapshot
# round-trips through both export formats, and byte-deterministic
# logical-clock exports — must hold under release codegen too.
cargo test -q --release --test metrics
cargo test -q --release -p noc-metrics

echo "==> CLI observability smoke: heatmap + chrome-trace JSON"
# Run the spatial-observability subcommands end to end on a generated C1
# instance and re-derive the invariants the test suite pins — in shell,
# against the actual shipped JSON, so a serialization regression that
# unit tests cannot see (key renames, float formatting) still fails CI.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
obm=target/release/obm
cargo build --release -q -p obm-cli
"$obm" gen C1 --seed 1 > "$smokedir/c1.spec"
"$obm" experiments heatmap "$smokedir/c1.spec" --cycles 2000 --json \
    --out "$smokedir/heat.json"
"$obm" experiments heatmap "$smokedir/c1.spec" --cycles 2000 --json \
    --out "$smokedir/heat2.json"
cmp -s "$smokedir/heat.json" "$smokedir/heat2.json" \
    || { echo "heatmap JSON differs across two same-seed runs"; exit 1; }
# Link conservation: the heatmap's per-link sum must equal the report's
# global traversal counter, both present at fixed keys in the JSON.
total=$(grep -o '"link_flit_traversals":[0-9]*' "$smokedir/heat.json" | cut -d: -f2)
heat=$(grep -o '"total_link_flits":[0-9]*' "$smokedir/heat.json" | cut -d: -f2)
[[ -n "$total" && "$total" == "$heat" ]] \
    || { echo "heatmap link conservation broken: report=$total heatmap=$heat"; exit 1; }
echo "--> heatmap: deterministic, $total flit traversals conserved"
"$obm" experiments trace "$smokedir/c1.spec" --chrome --cycles 2000 \
    --window 500 --out "$smokedir/c1.trace.json"
grep -q '"traceEvents"' "$smokedir/c1.trace.json" \
    || { echo "chrome trace missing traceEvents"; exit 1; }
# Every delivered (measured) packet is exactly one chrome "X" event with
# "measured":true — the counter in the metadata block must agree.
delivered=$(grep -o '"delivered":[0-9]*' "$smokedir/c1.trace.json" | cut -d: -f2)
measured=$(grep -o '"measured":true' "$smokedir/c1.trace.json" | wc -l)
[[ -n "$delivered" && "$delivered" -eq "$measured" ]] \
    || { echo "chrome trace drift: metadata delivered=$delivered, measured X events=$measured"; exit 1; }
echo "--> chrome trace: $measured measured packet events = delivered"

echo "==> CLI metrics smoke: --metrics export + obm status"
# Drive the metrics surface end to end against the shipped binary: a
# seeded simulate and a seeded solve export Prometheus snapshots under
# the logical clock (all wall-derived values zeroed), which must be
# byte-identical across two same-seed runs; the expected metric
# families from both subsystems must be present; and `obm status` must
# merge and render the snapshots.
OBM_METRICS_CLOCK=logical "$obm" simulate "$smokedir/c1.spec" --cycles 2000 \
    --metrics "$smokedir/sim.prom" >/dev/null
OBM_METRICS_CLOCK=logical "$obm" simulate "$smokedir/c1.spec" --cycles 2000 \
    --metrics "$smokedir/sim2.prom" >/dev/null
cmp -s "$smokedir/sim.prom" "$smokedir/sim2.prom" \
    || { echo "metrics snapshot differs across two same-seed logical-clock runs"; exit 1; }
for family in sim_runs_total sim_cycles_total sim_injected_packets_total \
    sim_delivered_packets_total sim_link_flit_traversals_total sim_shards; do
    grep -q "^$family " "$smokedir/sim.prom" \
        || { echo "metrics family $family missing from simulate snapshot"; exit 1; }
done
OBM_METRICS_CLOCK=logical "$obm" solve "$smokedir/c1.spec" --algos sss,greedy \
    --seeds 0 --metrics "$smokedir/solve.prom" >/dev/null
for family in portfolio_solves_total portfolio_tasks_total \
    portfolio_evals_total portfolio_workers; do
    grep -q "^$family " "$smokedir/solve.prom" \
        || { echo "metrics family $family missing from solve snapshot"; exit 1; }
done
"$obm" status "$smokedir/sim.prom" "$smokedir/solve.prom" > "$smokedir/status.txt"
grep -q "2 snapshots merged" "$smokedir/status.txt" \
    || { echo "obm status did not merge both snapshots"; exit 1; }
grep -q "sim_cycles_total" "$smokedir/status.txt" \
    || { echo "obm status dashboard missing sim counters"; exit 1; }
echo "--> metrics: deterministic logical-clock snapshots, status renders $(wc -l < "$smokedir/status.txt") lines"

echo "==> bench snapshot regression gate (PR 9 -> PR 10)"
# Compares the committed snapshots; raw ns/iter labels may not regress
# by more than 10%. The disabled metrics path rides in the raw c1
# median; metrics_delta_pct/* keys are informational in the comparison
# but bounded by the budgets documented in DESIGN.md §17.
scripts/bench_compare.sh BENCH_PR9.json BENCH_PR10.json

echo "==> panic gate: error-typed constructor and solver paths"
# SimConfig::validate(), TrafficSpec::new() and Network::new() report bad
# input through typed ConfigError values; the portfolio engine reports
# through RequestError/CheckpointError and degrades to its greedy
# fallback instead of panicking; the CLI spec parser returns SpecError;
# the ChipLayout/MemoryControllers constructors and the outer placement
# search report through PlacementError.
# Reintroducing unwrap()/assert!/panic! in the non-test portions of these
# files would silently bring panicking paths back, so fail on any
# occurrence outside the #[cfg(test)] module and doc comments
# (debug_assert! is fine). Files without a test module are scanned whole.
for f in crates/noc-sim/src/config.rs crates/noc-sim/src/network.rs \
    crates/noc-sim/src/traffic.rs crates/noc-sim/src/shard.rs \
    crates/noc-telemetry/src/histogram.rs crates/noc-telemetry/src/heatmap.rs \
    crates/portfolio/src/*.rs crates/cli/src/spec.rs \
    crates/obm-core/src/batch.rs \
    crates/obm-core/src/objective.rs crates/obm-core/src/remap.rs \
    crates/noc-model/src/layout.rs crates/noc-model/src/placement.rs \
    crates/obm-core/src/placement.rs crates/noc-metrics/src/*.rs; do
    cut=$(grep -n '#\[cfg(test)\]' "$f" | head -1 | cut -d: -f1 || true)
    cut=${cut:-$(( $(wc -l < "$f") + 1 ))}
    if hits=$(head -n $((cut - 1)) "$f" \
        | grep -vE '^[[:space:]]*//[/!]' \
        | grep -E '\.unwrap\(\)|(^|[^_.[:alnum:]])(assert!|assert_eq!|assert_ne!|panic!)'); then
        echo "panicking call in non-test portion of $f:"
        echo "$hits"
        exit 1
    fi
done

echo "All checks passed."
