#!/usr/bin/env bash
# Repo-wide quality gate. Run from anywhere; exits non-zero on the first
# failure. This is what CI (and reviewers) should run before merging:
#
#   1. rustfmt          — formatting must be canonical (`--check`, no writes)
#   2. clippy           — whole workspace incl. tests/benches, warnings fatal
#   3. tier-1 gate      — release build + full test suite
#   4. examples         — every example must build *and* run to completion
#   5. determinism      — the portfolio engine's worker-count-invariance
#                         suite and the simulator's golden-report suite
#                         (Bernoulli + geometric injection) in release mode
#                         (optimizations change f64 codegen timing, never
#                         the pinned bit patterns)
#   6. panic gate       — no new unwrap()/assert!/panic! in the non-test
#                         portions of noc-sim's config/network/traffic
#                         constructor paths (typed ConfigError), the
#                         portfolio engine (typed RequestError/
#                         CheckpointError), or the CLI spec parser (typed
#                         SpecError)
#
# The tier-1 commands match ROADMAP.md; `--workspace` matters because the
# root package is a facade crate and a bare `cargo build` would silently
# skip obm-bench and the vendored crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q --workspace

echo "==> examples: build and run every example"
cargo build --release --workspace --examples
for ex in quickstart simulate_mapping app_consolidation custom_chip \
    np_reduction qos_priorities portfolio_solve; do
    echo "--> example: $ex"
    cargo run --quiet --release --example "$ex" >/dev/null
done
echo "--> example: report_dump (noc-sim)"
cargo run --quiet --release -p noc-sim --example report_dump >/dev/null

echo "==> portfolio determinism suite (release)"
# The engine's contract — bit-identical outcome for any worker count — is
# pinned by unit tests in obm-portfolio and by the facade integration
# tests (proptest 1-worker == sequential best-of; pinned 1/2/4-worker
# equality on the 8x8 paper instance). Run them in release too: the f64
# codegen that optimizations pick must not change the pinned bits.
cargo test -q --release -p obm-portfolio
cargo test -q --release --test portfolio

echo "==> simulator determinism suite (release)"
# The pinned golden SimReports — the default Bernoulli stream (unchanged
# since PR 1) and the geometric-injection goldens with their exact
# window spans across fast-forwarded regions — must hold under release
# codegen too.
cargo test -q --release --test sim_determinism

echo "==> panic gate: error-typed constructor and solver paths"
# SimConfig::validate(), TrafficSpec::new() and Network::new() report bad
# input through typed ConfigError values; the portfolio engine reports
# through RequestError/CheckpointError and degrades to its greedy
# fallback instead of panicking; the CLI spec parser returns SpecError.
# Reintroducing unwrap()/assert!/panic! in the non-test portions of these
# files would silently bring panicking paths back, so fail on any
# occurrence outside the #[cfg(test)] module and doc comments
# (debug_assert! is fine). Files without a test module are scanned whole.
for f in crates/noc-sim/src/config.rs crates/noc-sim/src/network.rs \
    crates/noc-sim/src/traffic.rs \
    crates/portfolio/src/*.rs crates/cli/src/spec.rs; do
    cut=$(grep -n '#\[cfg(test)\]' "$f" | head -1 | cut -d: -f1 || true)
    cut=${cut:-$(( $(wc -l < "$f") + 1 ))}
    if hits=$(head -n $((cut - 1)) "$f" \
        | grep -vE '^[[:space:]]*//[/!]' \
        | grep -E '\.unwrap\(\)|(^|[^_.[:alnum:]])(assert!|assert_eq!|assert_ne!|panic!)'); then
        echo "panicking call in non-test portion of $f:"
        echo "$hits"
        exit 1
    fi
done

echo "All checks passed."
