#!/usr/bin/env bash
# Repo-wide quality gate. Run from anywhere; exits non-zero on the first
# failure. This is what CI (and reviewers) should run before merging:
#
#   1. rustfmt          — formatting must be canonical (`--check`, no writes)
#   2. clippy           — whole workspace incl. tests/benches, warnings fatal
#   3. tier-1 gate      — release build + full test suite
#
# The tier-1 commands match ROADMAP.md; `--workspace` matters because the
# root package is a facade crate and a bare `cargo build` would silently
# skip obm-bench and the vendored crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q --workspace

echo "All checks passed."
