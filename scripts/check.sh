#!/usr/bin/env bash
# Repo-wide quality gate. Run from anywhere; exits non-zero on the first
# failure. This is what CI (and reviewers) should run before merging:
#
#   1. rustfmt          — formatting must be canonical (`--check`, no writes)
#   2. clippy           — whole workspace incl. tests/benches, warnings fatal
#   3. tier-1 gate      — release build + full test suite
#   4. examples         — every example must build *and* run to completion
#   5. panic gate       — no new unwrap()/assert!/panic! in the non-test
#                         portions of noc-sim's config/network constructor
#                         paths (they return typed ConfigError results now)
#
# The tier-1 commands match ROADMAP.md; `--workspace` matters because the
# root package is a facade crate and a bare `cargo build` would silently
# skip obm-bench and the vendored crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q --workspace

echo "==> examples: build and run every example"
cargo build --release --workspace --examples
for ex in quickstart simulate_mapping app_consolidation custom_chip \
    np_reduction qos_priorities; do
    echo "--> example: $ex"
    cargo run --quiet --release --example "$ex" >/dev/null
done
echo "--> example: report_dump (noc-sim)"
cargo run --quiet --release -p noc-sim --example report_dump >/dev/null

echo "==> panic gate: noc-sim config/network constructor paths"
# SimConfig::validate(), TrafficSpec::new() and Network::new() report bad
# input through typed ConfigError values. Reintroducing unwrap()/assert!/
# panic! in the non-test portions of these files would silently bring the
# old panicking constructor behaviour back, so fail on any occurrence
# outside the #[cfg(test)] module and doc comments (debug_assert! is fine).
for f in crates/noc-sim/src/config.rs crates/noc-sim/src/network.rs; do
    cut=$(grep -n '#\[cfg(test)\]' "$f" | head -1 | cut -d: -f1)
    if hits=$(head -n $((cut - 1)) "$f" \
        | grep -vE '^[[:space:]]*//[/!]' \
        | grep -E '\.unwrap\(\)|(^|[^_.[:alnum:]])(assert!|assert_eq!|assert_ne!|panic!)'); then
        echo "panicking call in non-test portion of $f:"
        echo "$hits"
        exit 1
    fi
done

echo "All checks passed."
