#!/usr/bin/env bash
# Snapshot the criterion benchmarks into a machine-readable JSON file.
#
#   scripts/bench_snapshot.sh [BENCH]... [-o OUT.json]
#   BENCH_PR=7 scripts/bench_snapshot.sh        # writes BENCH_PR7.json
#
# Runs `cargo bench -p obm-bench` for the named bench targets (default:
# noc_sim, the simulator hot loop) and parses the vendored criterion
# output — lines of the form
#
#   group/name    time:   12345 ns/iter (10 samples)
#
# into a flat JSON object mapping benchmark label to median ns/iter:
#
#   { "noc_sim/c1_8x8_10k_cycles": 12345, ... }
#
# The output path defaults to BENCH_PR${BENCH_PR}.json (the per-PR
# snapshot the PR description cites for before/after numbers); override
# with -o or the BENCH_PR env var. When the run contains both
# c1_8x8_10k_cycles and its _probed twin, a derived
# "probed_delta_pct/c1_8x8_10k_cycles" key records the observability
# overhead as a percentage of the unprobed median. When the run contains
# the eval_batch group, derived "speedup/eval_many_vs_scratch" (the
# buffer-recycling eval_many_into steady state) and
# "speedup/objectives_vs_scratch" keys record batched-vs-scratch
# evaluation throughput (×). When the run contains the remap_loadcurve
# group, a derived "controlled_delta_pct/steady_4x4_10k" key records
# the overhead of running under an armed-but-quiet RemapController as a
# percentage of the plain run's median. When the run contains the
# placement_outer_4x4 group, a derived "placement_gain_pct/outer_4x4"
# key records how far the exhaustive placement search's best layout
# undercuts the corner default's max-APL (the bench emits both as
# millicycle quality lines in the same label format as the timings).
# When the run contains load_48 (the saturated-load router hot loop), a
# derived "speedup/load_48_vs_pr8" key records the single-thread gain
# over the PR 8 baseline median (override the baseline with
# LOAD48_PR8_NS). When the run contains c1_8x8_10k_cycles and its
# _sharded4 twin, a derived "shard_delta_pct/c1_8x8_10k_cycles" key
# records the 4-shard engine's wall-clock delta as a percentage of the
# serial median (negative = sharding is faster; on a 1-core host this
# prices the barrier overhead instead). When the run contains
# c1_8x8_10k_cycles and its _metrics twin, a derived
# "metrics_delta_pct/enabled" key prices the enabled metrics registry
# against the unprobed median, and "metrics_delta_pct/disabled" holds
# the unprobed median itself against the PR 9 baseline (override with
# C1_PR9_NS) — the disabled path is never-taken branches and must stay
# within noise (DESIGN.md §17 budgets: disabled <= 1%, enabled <= 10%).
# Every snapshot also records the host's core count under "meta/nproc"
# so shard/pool numbers can be read in context.
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_PR${BENCH_PR:-10}.json"
benches=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -o) out="$2"; shift 2 ;;
    *) benches+=("$1"); shift ;;
  esac
done
[[ ${#benches[@]} -gt 0 ]] || benches=(noc_sim)

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
for b in "${benches[@]}"; do
  echo "==> cargo bench -p obm-bench --bench $b" >&2
  cargo bench -p obm-bench --bench "$b" 2>&1 | tee -a "$raw" >&2
done

# criterion's stub prints:  <label>  time:  <ns> ns/iter (<n> samples)
awk -v nproc="$(nproc 2>/dev/null || echo 1)" \
    -v load48_pr8="${LOAD48_PR8_NS:-208283461}" \
    -v c1_pr9="${C1_PR9_NS:-19650431}" '
  / time: +[0-9]+ ns\/iter / {
    label = $1
    for (i = 2; i <= NF; i++) if ($i == "time:") { ns = $(i + 1); break }
    medians[label] = ns
    if (count++) printf ",\n"
    printf "  \"%s\": %s", label, ns
  }
  BEGIN { printf "{\n  \"meta/nproc\": %d", nproc; count = 1 }
  END {
    base = medians["noc_sim/c1_8x8_10k_cycles"]
    probed = medians["noc_sim/c1_8x8_10k_cycles_probed"]
    if (base > 0 && probed > 0)
      printf ",\n  \"probed_delta_pct/c1_8x8_10k_cycles\": %.2f",
        100.0 * (probed - base) / base
    scratch = medians["eval_batch/evaluate_scratch_1024"]
    batched = medians["eval_batch/eval_many_into_1024"]
    if (scratch > 0 && batched > 0)
      printf ",\n  \"speedup/eval_many_vs_scratch\": %.2f",
        scratch / batched
    objs = medians["eval_batch/objectives_into_1024"]
    if (scratch > 0 && objs > 0)
      printf ",\n  \"speedup/objectives_vs_scratch\": %.2f",
        scratch / objs
    plain = medians["remap_loadcurve/steady_4x4_10k_plain"]
    watched = medians["remap_loadcurve/steady_4x4_10k_watched"]
    if (plain > 0 && watched > 0)
      printf ",\n  \"controlled_delta_pct/steady_4x4_10k\": %.2f",
        100.0 * (watched - plain) / plain
    load48 = medians["noc_sim_uniform_8x8_10k/load_48"]
    if (load48 > 0 && load48_pr8 > 0)
      printf ",\n  \"speedup/load_48_vs_pr8\": %.2f",
        load48_pr8 / load48
    metered = medians["noc_sim/c1_8x8_10k_cycles_metrics"]
    if (base > 0 && metered > 0)
      printf ",\n  \"metrics_delta_pct/enabled\": %.2f",
        100.0 * (metered - base) / base
    if (base > 0 && c1_pr9 > 0)
      printf ",\n  \"metrics_delta_pct/disabled\": %.2f",
        100.0 * (base - c1_pr9) / c1_pr9
    sharded = medians["noc_sim/c1_8x8_10k_cycles_sharded4"]
    if (base > 0 && sharded > 0)
      printf ",\n  \"shard_delta_pct/c1_8x8_10k_cycles\": %.2f",
        100.0 * (sharded - base) / base
    corner = medians["placement_outer_4x4/corner_maxapl_millicycles"]
    best = medians["placement_outer_4x4/best_maxapl_millicycles"]
    if (corner > 0 && best > 0)
      printf ",\n  \"placement_gain_pct/outer_4x4\": %.2f",
        100.0 * (corner - best) / corner
    printf "\n}\n"
  }
' "$raw" > "$out"

echo "wrote $(grep -c ':' "$out") benchmark medians to $out" >&2
