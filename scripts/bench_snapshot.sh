#!/usr/bin/env bash
# Snapshot the criterion benchmarks into a machine-readable JSON file.
#
#   scripts/bench_snapshot.sh [BENCH]... [-o OUT.json]
#
# Runs `cargo bench -p obm-bench` for the named bench targets (default:
# noc_sim, the simulator hot loop) and parses the vendored criterion
# output — lines of the form
#
#   group/name    time:   12345 ns/iter (10 samples)
#
# into a flat JSON object mapping benchmark label to median ns/iter:
#
#   { "noc_sim/c1_8x8_10k_cycles": 12345, ... }
#
# The snapshot is what PR descriptions cite for before/after numbers
# (e.g. BENCH_PR4.json at the repo root compares the Bernoulli and
# geometric injection front-ends).
set -euo pipefail
cd "$(dirname "$0")/.."

out="bench_snapshot.json"
benches=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -o) out="$2"; shift 2 ;;
    *) benches+=("$1"); shift ;;
  esac
done
[[ ${#benches[@]} -gt 0 ]] || benches=(noc_sim)

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
for b in "${benches[@]}"; do
  echo "==> cargo bench -p obm-bench --bench $b" >&2
  cargo bench -p obm-bench --bench "$b" 2>&1 | tee -a "$raw" >&2
done

# criterion's stub prints:  <label>  time:  <ns> ns/iter (<n> samples)
awk '
  / time: +[0-9]+ ns\/iter / {
    label = $1
    for (i = 2; i <= NF; i++) if ($i == "time:") { ns = $(i + 1); break }
    if (count++) printf ",\n"
    printf "  \"%s\": %s", label, ns
  }
  BEGIN { printf "{\n" }
  END   { printf "\n}\n" }
' "$raw" > "$out"

echo "wrote $(grep -c ':' "$out") benchmark medians to $out" >&2
