#!/usr/bin/env bash
# Compare two benchmark snapshots produced by scripts/bench_snapshot.sh.
#
#   scripts/bench_compare.sh OLD.json NEW.json [THRESHOLD_PCT]
#   scripts/bench_compare.sh BENCH_PR8.json BENCH_PR9.json 5
#
# Prints one row per benchmark label present in either snapshot with the
# old/new medians (ns/iter) and the relative change. Raw timing labels
# (`group/name`) improve when they go *down*; derived `speedup/*` keys
# improve when they go *up*; `*_delta_pct/*` and `meta/*` keys are
# informational and never flagged. With a THRESHOLD_PCT (default 10),
# rows whose timing regressed by more than the threshold are marked
# `REGRESSED` and the script exits 1 — so CI can gate a PR on its
# snapshot without hand-reading the numbers. Labels present in only one
# snapshot are listed as added/removed and never fail the gate.
set -euo pipefail

if [[ $# -lt 2 || $# -gt 3 ]]; then
  echo "usage: $0 OLD.json NEW.json [THRESHOLD_PCT]" >&2
  exit 2
fi
old_file="$1"
new_file="$2"
threshold="${3:-10}"
for f in "$old_file" "$new_file"; do
  [[ -r $f ]] || { echo "cannot read $f" >&2; exit 2; }
done

# Snapshots are flat `"label": number` objects — parse with awk, no jq
# dependency.
parse() {
  awk -F'"' '/":/ {
    label = $2
    val = $3
    gsub(/[:, ]/, "", val)
    if (label != "" && val ~ /^-?[0-9]+(\.[0-9]+)?$/) print label, val
  }' "$1"
}

old_data="$(parse "$old_file")"
new_data="$(parse "$new_file")"

awk -v threshold="$threshold" -v old_name="$old_file" -v new_name="$new_file" '
  NR == FNR { old[$1] = $2; next }
  { new[$1] = $2; order[++n] = $1 }
  END {
    printf "%-45s %15s %15s %10s  %s\n", "benchmark", old_name, new_name, "change", ""
    fail = 0
    for (i = 1; i <= n; i++) {
      label = order[i]
      if (!(label in old)) {
        printf "%-45s %15s %15s %10s  added\n", label, "-", new[label], "-"
        continue
      }
      o = old[label]; v = new[label]
      delta = (o > 0) ? 100.0 * (v - o) / o : 0
      note = ""
      if (label ~ /^speedup\//) {
        # Derived speedups: bigger is better.
        if (delta < -threshold) { note = "REGRESSED"; fail = 1 }
        else if (delta > threshold) note = "improved"
      } else if (label ~ /_delta_pct\// || label ~ /_gain_pct\// || label ~ /^meta\//) {
        note = ""
      } else {
        # Raw ns/iter medians: smaller is better.
        if (delta > threshold) { note = "REGRESSED"; fail = 1 }
        else if (delta < -threshold) note = "improved"
      }
      printf "%-45s %15s %15s %9.1f%%  %s\n", label, o, v, delta, note
      seen[label] = 1
    }
    for (label in old)
      if (!(label in new))
        printf "%-45s %15s %15s %10s  removed\n", label, old[label], "-", "-"
    exit fail
  }
' <(printf '%s\n' "$old_data") <(printf '%s\n' "$new_data")
