//! # obm — Balanced on-chip network latency in multi-application mapping
//!
//! Facade crate re-exporting the whole workspace, a reproduction of
//! *"Balancing On-Chip Network Latency in Multi-Application Mapping for
//! Chip-Multiprocessors"* (Zhu, Chen, Yue, Pinkston, Pedram — IPDPS 2014).
//!
//! * [`model`] — mesh NoC geometry, routing and the `TC`/`TM` latency model;
//! * [`sim`] — cycle-level wormhole NoC simulator (Garnet substitute);
//! * [`workload`] — synthetic PARSEC-like traces and the C1–C8 configurations;
//! * [`cache`] — CMP cache-hierarchy model deriving request rates from
//!   first principles (L1 + MOESI-lite directory + shared L2 banks);
//! * [`lap`] — Hungarian assignment solver;
//! * [`mapping`] — the OBM problem, the sort-select-swap heuristic and the
//!   Global / Monte-Carlo / simulated-annealing baselines;
//! * [`power`] — DSENT-substitute NoC power model.
//!
//! See `examples/quickstart.rs` for a end-to-end tour.

pub use assignment as lap;
pub use cmp_cache as cache;
pub use noc_model as model;
pub use noc_power as power;
pub use noc_sim as sim;
pub use obm_core as mapping;
pub use workload;
