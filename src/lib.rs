//! # obm — Balanced on-chip network latency in multi-application mapping
//!
//! Facade crate re-exporting the whole workspace, a reproduction of
//! *"Balancing On-Chip Network Latency in Multi-Application Mapping for
//! Chip-Multiprocessors"* (Zhu, Chen, Yue, Pinkston, Pedram — IPDPS 2014).
//!
//! * [`model`] — mesh NoC geometry, routing and the `TC`/`TM` latency model;
//! * [`sim`] — cycle-level wormhole NoC simulator (Garnet substitute);
//! * [`telemetry`] — probes, sinks and windowed time-series shared by the
//!   simulator and the mapping algorithms;
//! * [`workload`] — synthetic PARSEC-like traces and the C1–C8 configurations;
//! * [`cache`] — CMP cache-hierarchy model deriving request rates from
//!   first principles (L1 + MOESI-lite directory + shared L2 banks);
//! * [`lap`] — Hungarian assignment solver;
//! * [`mapping`] — the OBM problem, the sort-select-swap heuristic and the
//!   Global / Monte-Carlo / simulated-annealing baselines, plus the
//!   pluggable `Objective` API and the closed-loop online
//!   `RemapController` (DESIGN.md §14);
//! * [`portfolio`] — deterministic parallel solver-portfolio engine racing
//!   the mappers behind the `SolveRequest`/`SolveOutcome` API;
//! * [`power`] — DSENT-substitute NoC power model;
//! * [`metrics`] — lock-free runtime metrics registry (counters, gauges,
//!   histograms, hierarchical spans) with deterministic Prometheus/JSON
//!   snapshot export (DESIGN.md §17). Write-only observability: results
//!   are bit-identical with metrics on or off.
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use obm::prelude::*;
//!
//! let mesh = Mesh::square(4);
//! let tiles = TileLatencies::paper_default(&mesh);
//! let cache_rates: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
//! let inst = ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], cache_rates, vec![0.0; 16]);
//! let mapping = SortSelectSwap::default().map(&inst, 0);
//! assert!(evaluate(&inst, &mapping).max_apl > 0.0);
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end tour,
//! `examples/simulate_mapping.rs` for the simulator + telemetry side and
//! `examples/noc_observability.rs` for the spatial heatmap, exact latency
//! histograms and the per-packet latency decomposition, and
//! `examples/runtime_metrics.rs` for the metrics registry observing all
//! four instrumented subsystems.

pub use assignment as lap;
pub use cmp_cache as cache;
pub use noc_metrics as metrics;
pub use noc_model as model;
pub use noc_power as power;
pub use noc_sim as sim;
pub use noc_telemetry as telemetry;
pub use obm_core as mapping;
pub use obm_portfolio as portfolio;
pub use workload;

/// The types most programs touch: chip geometry, the OBM problem and
/// mappers, the simulator configuration/traffic/network, and the telemetry
/// probes and sinks. `use obm::prelude::*;` is enough for the examples.
pub mod prelude {
    pub use crate::mapping::algorithms::{
        BalancedGreedy, BranchAndBound, Global, HybridSssSa, Mapper, MonteCarlo, RandomMapper,
        SimulatedAnnealing, SortSelectSwap,
    };
    pub use crate::mapping::{
        co_optimize, evaluate, piecewise_traffic_spec, sss_inner, traffic_spec, AplReport,
        BatchEvaluator, BudgetError, CancelToken, Energy, EvalTables, IncrementalEvaluator,
        Mapping, MaxMinBalance, MigrationPenalized, MinMaxApl, Objective, ObjectiveSpec,
        ObmInstance, PlacementOptions, PlacementOutcome, RemapConfig, RemapController, RemapError,
        RemapEvent, RemapOutcome, SearchMode,
    };
    pub use crate::metrics::{ClockMode, MetricsHandle, MetricsRegistry, MetricsSnapshot};
    pub use crate::model::{
        ChipLayout, Coord, LatencyParams, MemoryControllers, Mesh, PlacementError, TileId,
        TileLatencies, Topology,
    };
    pub use crate::portfolio::{
        portfolio_inner, Algorithm, Checkpoint, RequestError, SolveBudget, SolveOutcome,
        SolveRequest, SolveStats, Termination,
    };
    pub use crate::sim::{
        ConfigError, Network, Schedule, SimConfig, SimConfigBuilder, SimReport, SourceCounters,
        SourceSpec, SwapController, TrafficSpec,
    };
    pub use crate::telemetry::{
        FlowSummary, HeatmapRecord, JsonLinesSink, LatencyAccum, LatencyHistogram, NoopSink,
        PacketRecord, Phase, Probe, ProfileRecord, Record, RingSink, Sink, SolverEvent,
        WindowRecord,
    };
    pub use crate::workload::{PaperConfig, WorkloadBuilder};
}
