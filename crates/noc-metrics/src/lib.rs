//! Runtime metrics for the mapping engine (DESIGN.md §17).
//!
//! Every long-running subsystem — the portfolio race, the sharded
//! simulator, the online remap controller, the outer placement search —
//! reports into one [`MetricsRegistry`] through a cheap, cloneable
//! [`MetricsHandle`]. The handle is `Option`-shaped: a disabled handle
//! (the default everywhere) turns every instrument into a never-taken
//! branch, which is how the PR 2 purity contract survives — metrics are
//! write-only observers, simulated and solved results are bit-identical
//! with metrics on or off.
//!
//! Four instrument kinds:
//!
//! * **counters** — monotonic `u64`, lock-free (`AtomicU64`, relaxed);
//! * **gauges** — last-written `f64` (stored as bits in an `AtomicU64`);
//! * **histograms** — a lock-free fixed-bucket form for hot paths, and
//!   an exact nearest-rank form reusing
//!   [`noc_telemetry::histogram::LatencyHistogram`] for cold paths;
//! * **spans** — hierarchical wall-clock timings. A span's identity is
//!   its `/`-separated path ("portfolio/task/SA-s1"); the parent link is
//!   the path prefix, and observations aggregate per path (count, total,
//!   max), not per instance.
//!
//! Registration takes a short mutex once per name; the hot increment
//! path is atomic-only. [`MetricsRegistry::snapshot`] freezes everything
//! into a [`MetricsSnapshot`], exportable as Prometheus text or JSON
//! lines (through `noc_telemetry::json`, so emission is deterministic),
//! re-parseable from both, mergeable across processes, and renderable as
//! the `obm status` ASCII dashboard.
//!
//! # Determinism
//!
//! Counter totals, histogram contents and span *counts* are functions of
//! the seeded computation, so they are reproducible. Durations are not —
//! unless the registry runs under [`ClockMode::Logical`], which records
//! every duration (and every wall-derived gauge routed through
//! [`MetricsHandle::wall_gauge_set`]) as zero. Under the logical clock a
//! fixed seed produces a byte-identical snapshot, which is what
//! `scripts/check.sh` pins.

mod dashboard;
mod export;
mod registry;
mod snapshot;

pub use registry::{
    ClockMode, Counter, ExactHistogram, FixedHistogram, Gauge, MetricsHandle, MetricsRegistry,
    SpanGuard,
};
pub use snapshot::{span_parent, FixedSnapshot, MetricsSnapshot, SnapshotError, SpanSnapshot};
