//! The `obm status` ASCII dashboard: an aggregated snapshot rendered
//! for a terminal, grouped by subsystem (the metric-name prefix up to
//! the first `_`) with a span tree at the bottom.

use std::collections::BTreeMap;

use noc_telemetry::json::Value;

use crate::snapshot::MetricsSnapshot;

/// Format a nanosecond quantity for humans (deterministic: integer
/// nanos in, fixed precision out).
fn fmt_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.2}s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.2}ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.2}us", nanos / 1e3)
    } else {
        format!("{nanos:.0}ns")
    }
}

fn subsystem(name: &str) -> &str {
    name.split(['_', '/']).next().unwrap_or(name)
}

impl MetricsSnapshot {
    /// Render the aggregated dashboard. `sources` is how many snapshot
    /// files were merged into `self` (shown in the header).
    pub fn render_dashboard(&self, sources: usize) -> String {
        let mut out = format!(
            "obm status — {sources} snapshot{} merged\n",
            if sources == 1 { "" } else { "s" }
        );
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        // Group scalar instruments by subsystem prefix.
        let mut groups: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        for (name, v) in &self.counters {
            groups
                .entry(subsystem(name))
                .or_default()
                .push(format!("  {name:<44} {v}"));
        }
        for (name, v) in &self.gauges {
            groups
                .entry(subsystem(name))
                .or_default()
                .push(format!("  {name:<44} {}", Value::Num(*v)));
        }
        for (name, h) in &self.exact {
            let (p50, p99) = (h.quantile(0.5).unwrap_or(0), h.quantile(0.99).unwrap_or(0));
            groups.entry(subsystem(name)).or_default().push(format!(
                "  {name:<44} n={} mean={:.2} p50={p50} p99={p99} max={}",
                h.total(),
                h.mean(),
                h.max().unwrap_or(0)
            ));
        }
        for (name, f) in &self.fixed {
            groups.entry(subsystem(name)).or_default().push(format!(
                "  {name:<44} n={} sum={} buckets={}",
                f.total(),
                f.sum,
                f.counts.len()
            ));
        }
        for (sub, lines) in groups {
            out.push_str(&format!("\n[{sub}]\n"));
            for l in lines {
                out.push_str(&l);
                out.push('\n');
            }
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "\n[spans]\n  {:<44} {:>8} {:>10} {:>10} {:>10}\n",
                "path", "count", "total", "mean", "max"
            ));
            // BTreeMap order sorts children directly under their parent
            // prefix; indent by path depth to show the hierarchy.
            for (path, s) in &self.spans {
                let depth = path.matches('/').count();
                let label = format!(
                    "{}{}",
                    "  ".repeat(depth),
                    path.rsplit('/').next().unwrap_or(path)
                );
                out.push_str(&format!(
                    "  {label:<44} {:>8} {:>10} {:>10} {:>10}\n",
                    s.count,
                    fmt_nanos(s.total_nanos as f64),
                    fmt_nanos(s.mean_nanos()),
                    fmt_nanos(s.max_nanos as f64)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ClockMode, MetricsRegistry};

    #[test]
    fn dashboard_groups_by_subsystem_and_lists_spans() {
        let reg = MetricsRegistry::with_clock(ClockMode::Logical);
        let h = reg.handle();
        h.add("portfolio_evals_total", 10);
        h.add("sim_cycles_total", 20);
        h.gauge_set("portfolio_workers", 2.0);
        h.observe("remap_migrated_threads", 1);
        h.record_span("portfolio", 1, 0, 0);
        h.record_span("portfolio/task/SSS", 1, 0, 0);
        let text = reg.snapshot().render_dashboard(2);
        assert!(text.contains("2 snapshots merged"));
        assert!(text.contains("[portfolio]"));
        assert!(text.contains("[sim]"));
        assert!(text.contains("[remap]"));
        assert!(text.contains("portfolio_evals_total"));
        assert!(text.contains("[spans]"));
        assert!(text.contains("SSS"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = MetricsSnapshot::default().render_dashboard(1);
        assert!(text.contains("1 snapshot merged"));
        assert!(text.contains("no metrics recorded"));
    }

    #[test]
    fn nanos_format_is_scaled() {
        assert_eq!(fmt_nanos(12.0), "12ns");
        assert_eq!(fmt_nanos(1500.0), "1.50us");
        assert_eq!(fmt_nanos(2_000_000.0), "2.00ms");
        assert_eq!(fmt_nanos(3.5e9), "3.50s");
    }
}
