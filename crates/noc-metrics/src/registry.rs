//! The registry and its instrument handles.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use noc_telemetry::LatencyHistogram;

use crate::snapshot::{FixedSnapshot, MetricsSnapshot, SpanSnapshot};

/// What span durations and wall-derived gauges record.
///
/// `Wall` is the live default. `Logical` records every duration as zero,
/// making snapshots a pure function of the seeded computation — the mode
/// `scripts/check.sh` uses to byte-compare two same-seed runs (selected
/// in the CLI via `OBM_METRICS_CLOCK=logical`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Real wall-clock durations (`std::time::Instant`).
    #[default]
    Wall,
    /// All durations zero; counts and values stay exact.
    Logical,
}

/// Mutex access that survives a poisoned lock: instruments must never
/// abort the computation they observe, so a panic elsewhere degrades to
/// whatever state the lock holds.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Aggregated observations for one span path.
#[derive(Default)]
pub(crate) struct SpanCell {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl SpanCell {
    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    fn record_bulk(&self, count: u64, total_nanos: u64, max_nanos: u64) {
        self.count.fetch_add(count, Ordering::Relaxed);
        self.total_nanos.fetch_add(total_nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(max_nanos, Ordering::Relaxed);
    }
}

/// Storage for one fixed-bucket histogram: `counts[i]` holds values
/// `≤ bounds[i]`, the last slot is the overflow bucket.
pub(crate) struct FixedCell {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl FixedCell {
    fn new(bounds: &[u64]) -> FixedCell {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let counts = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        FixedCell {
            bounds: b,
            counts,
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Inner {
    clock: ClockMode,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    exact: Mutex<BTreeMap<String, Arc<Mutex<LatencyHistogram>>>>,
    fixed: Mutex<BTreeMap<String, Arc<FixedCell>>>,
    spans: Mutex<BTreeMap<String, Arc<SpanCell>>>,
}

/// The metrics registry: owns every instrument, hands out
/// [`MetricsHandle`]s, freezes [`MetricsSnapshot`]s.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// A wall-clock registry (the live default).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_clock(ClockMode::Wall)
    }

    /// A registry under an explicit clock mode.
    pub fn with_clock(clock: ClockMode) -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                clock,
                ..Inner::default()
            }),
        }
    }

    /// The clock mode this registry records durations under.
    pub fn clock(&self) -> ClockMode {
        self.inner.clock
    }

    /// An enabled handle into this registry.
    pub fn handle(&self) -> MetricsHandle {
        MetricsHandle(Some(self.clone()))
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut m = lock(&self.inner.counters);
        match m.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                m.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut m = lock(&self.inner.gauges);
        match m.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0.0f64.to_bits()));
                m.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    fn exact_cell(&self, name: &str) -> Arc<Mutex<LatencyHistogram>> {
        let mut m = lock(&self.inner.exact);
        match m.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Mutex::new(LatencyHistogram::default()));
                m.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    fn fixed_cell(&self, name: &str, bounds: &[u64]) -> Arc<FixedCell> {
        let mut m = lock(&self.inner.fixed);
        match m.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(FixedCell::new(bounds));
                m.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    fn span_cell(&self, path: &str) -> Arc<SpanCell> {
        let mut m = lock(&self.inner.spans);
        match m.get(path) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(SpanCell::default());
                m.insert(path.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Freeze every instrument into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock(&self.inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&self.inner.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let exact = lock(&self.inner.exact)
            .iter()
            .map(|(k, v)| (k.clone(), lock(v).clone()))
            .collect();
        let fixed = lock(&self.inner.fixed)
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    FixedSnapshot {
                        bounds: v.bounds.clone(),
                        counts: v.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                        sum: v.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        let spans = lock(&self.inner.spans)
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    SpanSnapshot {
                        count: v.count.load(Ordering::Relaxed),
                        total_nanos: v.total_nanos.load(Ordering::Relaxed),
                        max_nanos: v.max_nanos.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            exact,
            fixed,
            spans,
        }
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("clock", &self.inner.clock)
            .finish_non_exhaustive()
    }
}

/// A cheap, cloneable, thread-safe way into a registry — or nothing.
///
/// Everything that can be instrumented holds one of these. The default
/// is disabled: every method is then a `None` check and an immediate
/// return, so uninstrumented runs pay only never-taken branches.
#[derive(Clone, Default)]
pub struct MetricsHandle(Option<MetricsRegistry>);

impl MetricsHandle {
    /// The no-op handle (what `Default` gives you).
    pub fn disabled() -> MetricsHandle {
        MetricsHandle(None)
    }

    /// Whether instruments record anywhere.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Whether wall-clock timing is live: enabled *and* under
    /// [`ClockMode::Wall`]. Hot loops use this to skip `Instant` reads
    /// entirely when durations would be discarded anyway.
    #[inline]
    pub fn timing(&self) -> bool {
        matches!(&self.0, Some(r) if r.inner.clock == ClockMode::Wall)
    }

    /// The registry behind this handle, if enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.0.as_ref()
    }

    /// Pre-resolve a counter for hot-path increments.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.0.as_ref().map(|r| r.counter_cell(name)))
    }

    /// Pre-resolve a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.0.as_ref().map(|r| r.gauge_cell(name)))
    }

    /// Pre-resolve an exact nearest-rank histogram.
    pub fn exact_histogram(&self, name: &str) -> ExactHistogram {
        ExactHistogram(self.0.as_ref().map(|r| r.exact_cell(name)))
    }

    /// Pre-resolve a fixed-bucket histogram. `bounds` are inclusive
    /// bucket upper bounds (sorted and deduplicated internally); values
    /// above the last bound land in an implicit overflow bucket. The
    /// first registration of a name wins its bounds.
    pub fn fixed_histogram(&self, name: &str, bounds: &[u64]) -> FixedHistogram {
        FixedHistogram(self.0.as_ref().map(|r| r.fixed_cell(name, bounds)))
    }

    /// Open a span at `path`. The returned guard records one observation
    /// (under the registry's clock) when dropped; nested work can open
    /// children via [`SpanGuard::child`].
    pub fn span(&self, path: &str) -> SpanGuard {
        SpanGuard {
            active: self.0.as_ref().map(|r| ActiveSpan {
                registry: r.clone(),
                path: path.to_string(),
                cell: r.span_cell(path),
                start: (r.inner.clock == ClockMode::Wall).then(Instant::now),
            }),
        }
    }

    /// Fold pre-accumulated timings into a span in one call — the shape
    /// the simulator uses to avoid per-cycle registry traffic. Durations
    /// are zeroed under [`ClockMode::Logical`].
    pub fn record_span(&self, path: &str, count: u64, total_nanos: u64, max_nanos: u64) {
        if let Some(r) = &self.0 {
            let (t, m) = match r.inner.clock {
                ClockMode::Wall => (total_nanos, max_nanos),
                ClockMode::Logical => (0, 0),
            };
            r.span_cell(path).record_bulk(count, t, m);
        }
    }

    /// Cold-path counter increment (`add(name, 1)`).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Cold-path counter add.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.0 {
            r.counter_cell(name).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Cold-path gauge set.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(r) = &self.0 {
            r.gauge_cell(name).store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Gauge set for a wall-clock-derived value (a rate, a duration):
    /// recorded as zero under [`ClockMode::Logical`] so deterministic
    /// snapshots stay deterministic.
    pub fn wall_gauge_set(&self, name: &str, value: f64) {
        if let Some(r) = &self.0 {
            let v = match r.inner.clock {
                ClockMode::Wall => value,
                ClockMode::Logical => 0.0,
            };
            r.gauge_cell(name).store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Cold-path exact-histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.0 {
            lock(&r.exact_cell(name)).record(value);
        }
    }

    /// Current value of a counter, if enabled and registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let r = self.0.as_ref()?;
        let v = lock(&r.inner.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))?;
        Some(v)
    }

    /// Current value of a gauge, if enabled and registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let r = self.0.as_ref()?;
        let v = lock(&r.inner.gauges)
            .get(name)
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))?;
        Some(v)
    }

    /// Snapshot the backing registry, if enabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0.as_ref().map(MetricsRegistry::snapshot)
    }
}

/// `MetricsHandle` appears inside `Debug`-deriving config structs
/// (`PlacementOptions`, `SolveRequest`), so keep its output one word.
impl fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "MetricsHandle(enabled)"
        } else {
            "MetricsHandle(disabled)"
        })
    }
}

/// Pre-resolved monotonic counter. Increments are relaxed atomic adds;
/// a disabled counter is a `None` check.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Pre-resolved gauge (last-written `f64`).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(c) = &self.0 {
            c.store(value.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Pre-resolved exact nearest-rank histogram (sparse; mutex-guarded, so
/// keep it off per-cycle paths).
#[derive(Clone, Default)]
pub struct ExactHistogram(Option<Arc<Mutex<LatencyHistogram>>>);

impl ExactHistogram {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        if let Some(h) = &self.0 {
            lock(h).record(value);
        }
    }
}

/// Pre-resolved fixed-bucket histogram (lock-free).
#[derive(Clone, Default)]
pub struct FixedHistogram(Option<Arc<FixedCell>>);

impl FixedHistogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.observe(value);
        }
    }
}

struct ActiveSpan {
    registry: MetricsRegistry,
    path: String,
    cell: Arc<SpanCell>,
    start: Option<Instant>,
}

/// A live span: records one observation at its path when dropped.
#[must_use = "a span records its duration when dropped; binding to _ drops immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Open a child span at `self.path + "/" + name`. The parent link is
    /// the path structure itself; the child's lifetime is independent of
    /// the parent guard.
    pub fn child(&self, name: &str) -> SpanGuard {
        SpanGuard {
            active: self.active.as_ref().map(|a| {
                let path = format!("{}/{}", a.path, name);
                ActiveSpan {
                    registry: a.registry.clone(),
                    cell: a.registry.span_cell(&path),
                    path,
                    start: a.start.map(|_| Instant::now()),
                }
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = &self.active {
            let nanos = a
                .start
                .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            a.cell.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = MetricsHandle::disabled();
        assert!(!h.enabled());
        assert!(!h.timing());
        h.counter("c").inc();
        h.gauge("g").set(1.0);
        h.inc("c");
        h.observe("e", 3);
        h.fixed_histogram("f", &[1, 2]).observe(1);
        drop(h.span("s"));
        h.record_span("s2", 1, 10, 10);
        assert!(h.snapshot().is_none());
        assert_eq!(h.counter_value("c"), None);
        assert_eq!(h.gauge_value("g"), None);
    }

    #[test]
    fn counters_gauges_and_histograms_record() {
        let reg = MetricsRegistry::new();
        let h = reg.handle();
        let c = h.counter("hits_total");
        c.inc();
        c.add(4);
        h.add("hits_total", 5);
        h.gauge_set("level", 2.5);
        h.observe("sizes", 7);
        h.observe("sizes", 7);
        h.observe("sizes", 9);
        let fh = h.fixed_histogram("lat", &[10, 100]);
        fh.observe(5);
        fh.observe(50);
        fh.observe(500);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hits_total"], 10);
        assert_eq!(snap.gauges["level"], 2.5);
        assert_eq!(snap.exact["sizes"].total(), 3);
        assert_eq!(snap.exact["sizes"].quantile(0.5), Some(7));
        assert_eq!(snap.fixed["lat"].counts, vec![1, 1, 1]);
        assert_eq!(snap.fixed["lat"].sum, 555);
        assert_eq!(h.counter_value("hits_total"), Some(10));
        assert_eq!(h.gauge_value("level"), Some(2.5));
    }

    #[test]
    fn spans_aggregate_per_path_with_parent_links() {
        let reg = MetricsRegistry::new();
        let h = reg.handle();
        {
            let outer = h.span("solve");
            let _inner = outer.child("task");
        }
        {
            let outer = h.span("solve");
            let _inner = outer.child("task");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans["solve"].count, 2);
        assert_eq!(snap.spans["solve/task"].count, 2);
        assert_eq!(
            crate::snapshot::span_parent("solve/task"),
            Some("solve"),
            "parent link is the path prefix"
        );
    }

    #[test]
    fn logical_clock_zeroes_durations_but_keeps_counts() {
        let reg = MetricsRegistry::with_clock(ClockMode::Logical);
        let h = reg.handle();
        assert!(h.enabled());
        assert!(!h.timing());
        drop(h.span("work"));
        h.record_span("bulk", 7, 1234, 99);
        h.wall_gauge_set("rate", 123.0);
        h.gauge_set("exact", 4.0);
        let snap = reg.snapshot();
        assert_eq!(snap.spans["work"].count, 1);
        assert_eq!(snap.spans["work"].total_nanos, 0);
        assert_eq!(snap.spans["bulk"].count, 7);
        assert_eq!(snap.spans["bulk"].total_nanos, 0);
        assert_eq!(snap.spans["bulk"].max_nanos, 0);
        assert_eq!(snap.gauges["rate"], 0.0);
        assert_eq!(snap.gauges["exact"], 4.0);
    }

    #[test]
    fn fixed_bounds_first_registration_wins_and_overflow_bucket_counts() {
        let reg = MetricsRegistry::new();
        let h = reg.handle();
        let a = h.fixed_histogram("x", &[2, 1, 2]);
        let b = h.fixed_histogram("x", &[100]);
        a.observe(1);
        b.observe(2);
        b.observe(3);
        let snap = reg.snapshot();
        assert_eq!(snap.fixed["x"].bounds, vec![1, 2]);
        assert_eq!(snap.fixed["x"].counts, vec![1, 1, 1]);
    }

    #[test]
    fn handles_are_shareable_across_threads() {
        let reg = MetricsRegistry::new();
        let h = reg.handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    let c = h.counter("par_total");
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counters["par_total"], 4000);
    }
}
