//! The frozen form of a registry: plain sorted maps, mergeable across
//! processes and round-trippable through both export formats.

use std::collections::BTreeMap;
use std::fmt;

use noc_telemetry::LatencyHistogram;

/// A parse failure from [`MetricsSnapshot::parse`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Frozen fixed-bucket histogram: `counts[i]` holds observations
/// `≤ bounds[i]`; the final slot (always present) is the overflow
/// bucket, so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FixedSnapshot {
    /// Inclusive bucket upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (last = overflow).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

impl FixedSnapshot {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Frozen span aggregate for one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    /// Completed observations at this path.
    pub count: u64,
    /// Sum of observed durations (0 under the logical clock).
    pub total_nanos: u64,
    /// Longest single observation.
    pub max_nanos: u64,
}

impl SpanSnapshot {
    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }
}

/// The parent of a span path — its `/`-separated prefix, if any.
pub fn span_parent(path: &str) -> Option<&str> {
    path.rsplit_once('/').map(|(parent, _)| parent)
}

/// Everything a registry held at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Exact nearest-rank histograms (lossless sparse form).
    pub exact: BTreeMap<String, LatencyHistogram>,
    /// Fixed-bucket histograms.
    pub fixed: BTreeMap<String, FixedSnapshot>,
    /// Span aggregates, keyed by full path.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl MetricsSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.exact.is_empty()
            && self.fixed.is_empty()
            && self.spans.is_empty()
    }

    /// Fold `other` into `self`: counters, histograms and span
    /// counts/totals add; span maxima take the maximum; gauges are
    /// last-writer-wins (`other` overwrites — callers merge snapshots in
    /// the order they were taken). Fixed histograms with mismatched
    /// bucket bounds keep `self`'s buckets and only add the sum of
    /// `other` (bounds are part of a metric's identity; a mismatch means
    /// two different schema versions).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.exact {
            self.exact.entry(k.clone()).or_default().merge(h);
        }
        for (k, f) in &other.fixed {
            match self.fixed.get_mut(k) {
                None => {
                    self.fixed.insert(k.clone(), f.clone());
                }
                Some(mine) if mine.bounds == f.bounds => {
                    for (a, b) in mine.counts.iter_mut().zip(&f.counts) {
                        *a += b;
                    }
                    mine.sum += f.sum;
                }
                Some(mine) => {
                    mine.sum += f.sum;
                }
            }
        }
        for (k, s) in &other.spans {
            let mine = self.spans.entry(k.clone()).or_default();
            mine.count += s.count;
            mine.total_nanos += s.total_nanos;
            mine.max_nanos = mine.max_nanos.max(s.max_nanos);
        }
    }

    /// Parse either export format, sniffing by the first non-space
    /// character (`{` ⇒ JSON lines, anything else ⇒ Prometheus text).
    pub fn parse(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
        match text.trim_start().chars().next() {
            Some('{') => MetricsSnapshot::from_json_lines(text),
            _ => MetricsSnapshot::from_prometheus(text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_spans_and_takes_span_max() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 2);
        a.spans.insert(
            "s".into(),
            SpanSnapshot {
                count: 1,
                total_nanos: 10,
                max_nanos: 10,
            },
        );
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 3);
        b.counters.insert("d".into(), 1);
        b.gauges.insert("g".into(), 7.0);
        b.spans.insert(
            "s".into(),
            SpanSnapshot {
                count: 2,
                total_nanos: 5,
                max_nanos: 4,
            },
        );
        a.merge(&b);
        assert_eq!(a.counters["c"], 5);
        assert_eq!(a.counters["d"], 1);
        assert_eq!(a.gauges["g"], 7.0);
        assert_eq!(a.spans["s"].count, 3);
        assert_eq!(a.spans["s"].total_nanos, 15);
        assert_eq!(a.spans["s"].max_nanos, 10);
    }

    #[test]
    fn merge_fixed_histograms_respects_bounds_identity() {
        let mut a = MetricsSnapshot::default();
        a.fixed.insert(
            "f".into(),
            FixedSnapshot {
                bounds: vec![1, 2],
                counts: vec![1, 0, 0],
                sum: 1,
            },
        );
        let mut b = MetricsSnapshot::default();
        b.fixed.insert(
            "f".into(),
            FixedSnapshot {
                bounds: vec![1, 2],
                counts: vec![0, 2, 1],
                sum: 9,
            },
        );
        a.merge(&b);
        assert_eq!(a.fixed["f"].counts, vec![1, 2, 1]);
        assert_eq!(a.fixed["f"].sum, 10);
    }

    #[test]
    fn span_parent_is_the_path_prefix() {
        assert_eq!(span_parent("a/b/c"), Some("a/b"));
        assert_eq!(span_parent("a"), None);
    }
}
