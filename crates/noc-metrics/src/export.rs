//! Snapshot export and re-import: Prometheus text format and JSON lines.
//!
//! Both writers iterate sorted maps and format numbers through
//! `noc_telemetry::json`, so a given snapshot always produces the same
//! bytes. Spans live under two fixed Prometheus families
//! (`obm_span_nanos` summary, `obm_span_max_nanos` gauge) with the path
//! in a `span` label; exact histograms export as summaries with
//! nearest-rank quantiles plus one `# obm-exact` comment line carrying
//! the sparse pairs, which is what makes the Prometheus form lossless
//! for our own parser while staying valid for any standard scraper.

use std::collections::BTreeMap;

use noc_telemetry::json::Value;
use noc_telemetry::LatencyHistogram;

use crate::snapshot::{FixedSnapshot, MetricsSnapshot, SnapshotError, SpanSnapshot};

/// Quantiles the Prometheus summary view reports for exact histograms.
const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

fn num(v: f64) -> String {
    Value::Num(v).to_string()
}

fn sum_of(h: &LatencyHistogram) -> u64 {
    h.iter()
        .fold(0u128, |acc, (v, c)| acc + v as u128 * c as u128)
        .min(u64::MAX as u128) as u64
}

impl MetricsSnapshot {
    /// Render as Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", num(*v)));
        }
        for (name, h) in &self.exact {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for q in SUMMARY_QUANTILES {
                if let Some(v) = h.quantile(q) {
                    out.push_str(&format!("{name}{{quantile=\"{}\"}} {v}\n", num(q)));
                }
            }
            out.push_str(&format!("{name}_sum {}\n", sum_of(h)));
            out.push_str(&format!("{name}_count {}\n", h.total()));
            let pairs: Vec<String> = h.iter().map(|(v, c)| format!("{v}:{c}")).collect();
            out.push_str(&format!("# obm-exact {name} {}\n", pairs.join(",")));
        }
        for (name, f) in &self.fixed {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, b) in f.bounds.iter().enumerate() {
                cum += f.counts[i];
                out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                f.total(),
                f.sum,
                f.total()
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE obm_span_nanos summary\n");
            for (path, s) in &self.spans {
                out.push_str(&format!(
                    "obm_span_nanos_sum{{span=\"{path}\"}} {}\nobm_span_nanos_count{{span=\"{path}\"}} {}\n",
                    s.total_nanos, s.count
                ));
            }
            out.push_str("# TYPE obm_span_max_nanos gauge\n");
            for (path, s) in &self.spans {
                out.push_str(&format!(
                    "obm_span_max_nanos{{span=\"{path}\"}} {}\n",
                    s.max_nanos
                ));
            }
        }
        out
    }

    /// Render as JSON lines: one object per instrument, keys sorted,
    /// `kind` discriminating the schema.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(
                &Value::obj([
                    ("kind", Value::from("counter")),
                    ("name", Value::from(name.as_str())),
                    ("value", Value::from(*v)),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str(
                &Value::obj([
                    ("kind", Value::from("gauge")),
                    ("name", Value::from(name.as_str())),
                    ("value", Value::from(*v)),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        for (name, h) in &self.exact {
            let pairs = h
                .iter()
                .map(|(v, c)| Value::Arr(vec![Value::from(v), Value::from(c)]))
                .collect();
            out.push_str(
                &Value::obj([
                    ("kind", Value::from("exact")),
                    ("name", Value::from(name.as_str())),
                    ("pairs", Value::Arr(pairs)),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        for (name, f) in &self.fixed {
            out.push_str(
                &Value::obj([
                    ("kind", Value::from("fixed")),
                    ("name", Value::from(name.as_str())),
                    (
                        "bounds",
                        Value::Arr(f.bounds.iter().map(|&b| Value::from(b)).collect()),
                    ),
                    (
                        "counts",
                        Value::Arr(f.counts.iter().map(|&c| Value::from(c)).collect()),
                    ),
                    ("sum", Value::from(f.sum)),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        for (path, s) in &self.spans {
            out.push_str(
                &Value::obj([
                    ("kind", Value::from("span")),
                    ("name", Value::from(path.as_str())),
                    ("count", Value::from(s.count)),
                    ("total_nanos", Value::from(s.total_nanos)),
                    ("max_nanos", Value::from(s.max_nanos)),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        out
    }

    /// Parse the JSON-lines form back into a snapshot. Lines whose
    /// `kind` is unknown are skipped (forward compatibility); malformed
    /// JSON or a known kind missing its fields is an error.
    pub fn from_json_lines(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
        let mut snap = MetricsSnapshot::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = noc_telemetry::json::parse(line)
                .map_err(|e| SnapshotError(format!("line {}: {e}", lineno + 1)))?;
            let bad = |field: &str| {
                SnapshotError(format!("line {}: missing/invalid '{field}'", lineno + 1))
            };
            let kind = v.get("kind").and_then(Value::as_str).unwrap_or("");
            let name = v
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("name"))?
                .to_string();
            match kind {
                "counter" => {
                    let val = v
                        .get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad("value"))?;
                    snap.counters.insert(name, val);
                }
                "gauge" => {
                    let val = v
                        .get("value")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| bad("value"))?;
                    snap.gauges.insert(name, val);
                }
                "exact" => {
                    let pairs = v
                        .get("pairs")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| bad("pairs"))?;
                    let mut h = LatencyHistogram::default();
                    for p in pairs {
                        let p = p.as_arr().ok_or_else(|| bad("pairs"))?;
                        let (val, count) = match (
                            p.first().and_then(Value::as_u64),
                            p.get(1).and_then(Value::as_u64),
                        ) {
                            (Some(a), Some(b)) => (a, b),
                            _ => return Err(bad("pairs")),
                        };
                        h.record_n(val, count);
                    }
                    snap.exact.insert(name, h);
                }
                "fixed" => {
                    let arr_u64 = |field: &str| -> Result<Vec<u64>, SnapshotError> {
                        v.get(field)
                            .and_then(Value::as_arr)
                            .ok_or_else(|| bad(field))?
                            .iter()
                            .map(|x| x.as_u64().ok_or_else(|| bad(field)))
                            .collect()
                    };
                    let bounds = arr_u64("bounds")?;
                    let counts = arr_u64("counts")?;
                    if counts.len() != bounds.len() + 1 {
                        return Err(bad("counts"));
                    }
                    let sum = v
                        .get("sum")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad("sum"))?;
                    snap.fixed.insert(
                        name,
                        FixedSnapshot {
                            bounds,
                            counts,
                            sum,
                        },
                    );
                }
                "span" => {
                    let field = |f: &str| v.get(f).and_then(Value::as_u64);
                    let (count, total, max) =
                        match (field("count"), field("total_nanos"), field("max_nanos")) {
                            (Some(c), Some(t), Some(m)) => (c, t, m),
                            _ => return Err(bad("count/total_nanos/max_nanos")),
                        };
                    snap.spans.insert(
                        name,
                        SpanSnapshot {
                            count,
                            total_nanos: total,
                            max_nanos: max,
                        },
                    );
                }
                _ => {}
            }
        }
        Ok(snap)
    }

    /// Parse the Prometheus text form back into a snapshot. Counters,
    /// gauges, fixed-bucket histograms and spans reconstruct exactly;
    /// exact histograms reconstruct from their `# obm-exact` comment
    /// lines (foreign summaries without one are skipped).
    pub fn from_prometheus(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
        let mut snap = MetricsSnapshot::default();
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        // name -> (le, cumulative) pairs, in emission order
        let mut buckets: BTreeMap<String, Vec<(Option<u64>, u64)>> = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            let err = |msg: &str| SnapshotError(format!("line {}: {msg}: {line}", lineno + 1));
            if let Some(rest) = line.strip_prefix("# obm-exact ") {
                let (name, pairs) = rest.split_once(' ').unwrap_or((rest, ""));
                let mut h = LatencyHistogram::default();
                for p in pairs.split(',').filter(|p| !p.is_empty()) {
                    let (v, c) = p.split_once(':').ok_or_else(|| err("bad exact pair"))?;
                    let v = v.parse::<u64>().map_err(|_| err("bad exact value"))?;
                    let c = c.parse::<u64>().map_err(|_| err("bad exact count"))?;
                    h.record_n(v, c);
                }
                snap.exact.insert(name.to_string(), h);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, kind)) = rest.split_once(' ') {
                    types.insert(name.to_string(), kind.trim().to_string());
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| err("expected 'name value'"))?;
            let (name, label) = match key.split_once('{') {
                Some((n, rest)) => {
                    let inner = rest.strip_suffix('}').ok_or_else(|| err("bad labels"))?;
                    (n, Some(inner))
                }
                None => (key, None),
            };
            let label_value = |l: &str| -> Option<String> {
                let (k, v) = l.split_once('=')?;
                let v = v.strip_prefix('"')?.strip_suffix('"')?;
                Some(format!("{k}\u{0}{v}"))
            };
            let label = label.and_then(label_value);
            let fval = value.parse::<f64>().map_err(|_| err("bad numeric value"))?;
            let uval = value.parse::<u64>().unwrap_or(fval as u64);
            // Span families carry the path in the `span` label.
            if let Some(path) = label
                .as_deref()
                .and_then(|l| l.strip_prefix("span\u{0}"))
                .map(str::to_string)
            {
                let s = snap.spans.entry(path).or_default();
                match name {
                    "obm_span_nanos_sum" => s.total_nanos = uval,
                    "obm_span_nanos_count" => s.count = uval,
                    "obm_span_max_nanos" => s.max_nanos = uval,
                    _ => {}
                }
                continue;
            }
            // Fixed-histogram series.
            if let Some(base) = name.strip_suffix("_bucket") {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    let le = label
                        .as_deref()
                        .and_then(|l| l.strip_prefix("le\u{0}"))
                        .ok_or_else(|| err("bucket without le label"))?;
                    let bound = if le == "+Inf" {
                        None
                    } else {
                        Some(le.parse::<u64>().map_err(|_| err("bad le bound"))?)
                    };
                    buckets
                        .entry(base.to_string())
                        .or_default()
                        .push((bound, uval));
                    continue;
                }
            }
            if let Some(base) = name.strip_suffix("_sum") {
                match types.get(base).map(String::as_str) {
                    Some("histogram") => {
                        snap.fixed.entry(base.to_string()).or_default().sum = uval;
                        continue;
                    }
                    Some("summary") => continue, // exact sum is derivable
                    _ => {}
                }
            }
            if let Some(base) = name.strip_suffix("_count") {
                if matches!(
                    types.get(base).map(String::as_str),
                    Some("histogram" | "summary")
                ) {
                    continue; // derivable from buckets/pairs
                }
            }
            if label.is_some() {
                continue; // quantile series of a summary
            }
            match types.get(name).map(String::as_str) {
                Some("counter") => {
                    snap.counters.insert(name.to_string(), uval);
                }
                Some("gauge") => {
                    snap.gauges.insert(name.to_string(), fval);
                }
                _ => {}
            }
        }
        for (name, series) in buckets {
            let f = snap.fixed.entry(name).or_default();
            let mut bounds = Vec::new();
            let mut counts = Vec::new();
            let mut prev = 0u64;
            let mut total = None;
            for (bound, cum) in series {
                match bound {
                    Some(b) => {
                        bounds.push(b);
                        counts.push(cum.saturating_sub(prev));
                        prev = cum;
                    }
                    None => total = Some(cum),
                }
            }
            counts.push(total.unwrap_or(prev).saturating_sub(prev));
            f.bounds = bounds;
            f.counts = counts;
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ClockMode, MetricsRegistry};

    fn sample() -> MetricsSnapshot {
        let reg = MetricsRegistry::with_clock(ClockMode::Logical);
        let h = reg.handle();
        h.add("portfolio_evals_total", 1234);
        h.add("sim_cycles_total", 10_000);
        h.gauge_set("portfolio_workers", 4.0);
        h.gauge_set("sim_shards", 2.5);
        h.observe("remap_migrated_threads", 3);
        h.observe("remap_migrated_threads", 3);
        h.observe("remap_migrated_threads", 5);
        let fh = h.fixed_histogram("placement_inner_evals", &[10, 100, 1000]);
        fh.observe(7);
        fh.observe(70);
        fh.observe(7000);
        h.record_span("portfolio/task/SSS", 1, 0, 0);
        h.record_span("sim/shard/barrier", 10_000, 0, 0);
        reg.snapshot()
    }

    #[test]
    fn json_lines_round_trip_is_lossless() {
        let snap = sample();
        let text = snap.to_json_lines();
        let back = MetricsSnapshot::from_json_lines(&text).expect("parse");
        assert_eq!(back, snap);
        // and deterministic
        assert_eq!(text, back.to_json_lines());
    }

    #[test]
    fn prometheus_round_trip_is_lossless() {
        let snap = sample();
        let text = snap.to_prometheus();
        let back = MetricsSnapshot::from_prometheus(&text).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(text, back.to_prometheus());
    }

    #[test]
    fn prometheus_emits_standard_families() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE portfolio_evals_total counter"));
        assert!(text.contains("portfolio_evals_total 1234"));
        assert!(text.contains("# TYPE portfolio_workers gauge"));
        assert!(text.contains("portfolio_workers 4"));
        assert!(text.contains("# TYPE remap_migrated_threads summary"));
        assert!(text.contains("remap_migrated_threads{quantile=\"0.5\"} 3"));
        assert!(text.contains("remap_migrated_threads_count 3"));
        assert!(text.contains("placement_inner_evals_bucket{le=\"100\"} 2"));
        assert!(text.contains("placement_inner_evals_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("obm_span_nanos_count{span=\"sim/shard/barrier\"} 10000"));
    }

    #[test]
    fn format_sniffing_parses_both() {
        let snap = sample();
        assert_eq!(
            MetricsSnapshot::parse(&snap.to_json_lines()).ok(),
            Some(snap.clone())
        );
        assert_eq!(
            MetricsSnapshot::parse(&snap.to_prometheus()).ok(),
            Some(snap)
        );
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(MetricsSnapshot::from_json_lines("{not json").is_err());
        assert!(MetricsSnapshot::from_json_lines("{\"kind\":\"counter\"}").is_err());
        assert!(MetricsSnapshot::from_prometheus("# TYPE x counter\nx notanumber").is_err());
    }
}
