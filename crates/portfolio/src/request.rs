//! The solver-facing request API: which algorithms to race, with which
//! seeds, under which budget.

use std::time::Duration;

use noc_metrics::MetricsHandle;
use noc_telemetry::{NoopSink, Probe};
use obm_core::algorithms::{
    BalancedGreedy, BranchAndBound, HybridSssSa, Mapper, MonteCarlo, SimulatedAnnealing,
    SortSelectSwap,
};
use obm_core::{BudgetError, CancelToken, Mapping, ObjectiveSpec, ObmInstance};

use crate::checkpoint::Checkpoint;
use crate::engine;
use crate::outcome::SolveOutcome;

/// One algorithm configuration the portfolio can race.
///
/// Wraps the `obm-core` mapper configurations so a request can carry a
/// heterogeneous line-up by value (every config is `Copy`).
#[derive(Debug, Clone, Copy)]
pub enum Algorithm {
    /// The paper's sort-select-swap heuristic (deterministic).
    SortSelectSwap(SortSelectSwap),
    /// Simulated annealing (seed-sensitive).
    SimulatedAnnealing(SimulatedAnnealing),
    /// SSS seed + cold annealing refinement (seed-sensitive).
    HybridSssSa(HybridSssSa),
    /// The balanced-greedy constructor (deterministic).
    BalancedGreedy,
    /// Monte-Carlo best-of-N random draws (seed-sensitive).
    MonteCarlo(MonteCarlo),
    /// Branch-and-bound exact solver (deterministic; can consume the
    /// shared incumbent bound under aggressive pruning).
    Exact(BranchAndBound),
}

impl Algorithm {
    /// Display name, matching [`Mapper::name`].
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SortSelectSwap(_) => "SSS",
            Algorithm::SimulatedAnnealing(_) => "SA",
            Algorithm::HybridSssSa(_) => "SSS+SA",
            Algorithm::BalancedGreedy => "Greedy",
            Algorithm::MonteCarlo(_) => "MC",
            Algorithm::Exact(_) => "BnB",
        }
    }

    /// Whether different seeds can produce different results. Unseeded
    /// algorithms get exactly one task regardless of the request's seed
    /// list (racing identical copies wastes budget).
    pub fn seeded(&self) -> bool {
        matches!(
            self,
            Algorithm::SimulatedAnnealing(_) | Algorithm::HybridSssSa(_) | Algorithm::MonteCarlo(_)
        )
    }

    /// Validate the wrapped configuration (zero iteration/sample budgets
    /// are rejected here instead of panicking mid-solve).
    pub fn validate(&self) -> Result<(), BudgetError> {
        match self {
            Algorithm::SimulatedAnnealing(sa) => sa.validate(),
            Algorithm::MonteCarlo(mc) => mc.validate(),
            _ => Ok(()),
        }
    }

    /// Deterministic estimate of the evaluation count one task costs,
    /// used to apportion [`SolveBudget::max_evaluations`]. Exact for the
    /// iteration-driven algorithms (SA, MC); a calibrated `O(N²)` proxy
    /// for the pass-structured ones (SSS, greedy); the node budget for
    /// branch-and-bound (its worst case).
    pub fn nominal_evals(&self, inst: &ObmInstance) -> u64 {
        let n = inst.num_tiles() as u64;
        match self {
            Algorithm::SortSelectSwap(_) => n * n,
            Algorithm::SimulatedAnnealing(sa) => (sa.iterations as u64) * (sa.restarts as u64),
            Algorithm::HybridSssSa(h) => n * n + h.sa_iterations as u64,
            Algorithm::BalancedGreedy => n,
            Algorithm::MonteCarlo(mc) => mc.samples as u64,
            Algorithm::Exact(b) => b.node_budget,
        }
    }

    /// Clamp the configuration to at most `evals` evaluations, keeping
    /// determinism (the clamp happens before the run, in task-rank order,
    /// so it does not depend on scheduling). Iteration-driven algorithms
    /// shrink; pass-structured ones are all-or-nothing and return `None`
    /// when their full nominal cost does not fit.
    pub(crate) fn clamped_to(&self, evals: u64, inst: &ObmInstance) -> Option<Algorithm> {
        if self.nominal_evals(inst) <= evals {
            return Some(*self);
        }
        match self {
            Algorithm::SimulatedAnnealing(sa) => {
                let per_restart = (evals / sa.restarts as u64) as usize;
                (per_restart > 0).then_some(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
                    iterations: per_restart,
                    ..*sa
                }))
            }
            Algorithm::MonteCarlo(mc) => (evals > 0).then_some(Algorithm::MonteCarlo(MonteCarlo {
                samples: evals as usize,
                ..*mc
            })),
            _ => None,
        }
    }

    /// Run one task: cancellable, probed, optionally pruning against an
    /// external incumbent bound (consumed by [`Algorithm::Exact`] only —
    /// see DESIGN.md §10.2 for why the others ignore it).
    pub(crate) fn run(
        &self,
        inst: &ObmInstance,
        seed: u64,
        token: &CancelToken,
        probe: &mut dyn Probe,
        incumbent_bound: Option<f64>,
    ) -> Option<Mapping> {
        match self {
            Algorithm::SortSelectSwap(sss) => sss.map_cancellable(inst, seed, token, probe),
            Algorithm::SimulatedAnnealing(sa) => sa.map_cancellable(inst, seed, token, probe),
            Algorithm::HybridSssSa(h) => h.map_cancellable(inst, seed, token, probe),
            Algorithm::BalancedGreedy => BalancedGreedy.map_cancellable(inst, seed, token, probe),
            Algorithm::MonteCarlo(mc) => mc.map_cancellable(inst, seed, token, probe),
            Algorithm::Exact(b) => {
                let r = b.solve_budgeted(inst, token, incumbent_bound);
                if r.cancelled {
                    None
                } else {
                    Some(r.mapping)
                }
            }
        }
    }

    /// The paper's heuristic line-up with default configurations: SSS,
    /// hybrid, SA, greedy, MC — the recommended starting portfolio. MC
    /// runs single-worker (the portfolio already owns the parallelism,
    /// and `MonteCarlo::default()`'s machine-sized worker count would
    /// make results machine-dependent).
    pub fn default_portfolio() -> Vec<Algorithm> {
        vec![
            Algorithm::SortSelectSwap(SortSelectSwap::default()),
            Algorithm::HybridSssSa(HybridSssSa::default()),
            Algorithm::SimulatedAnnealing(SimulatedAnnealing::default()),
            Algorithm::BalancedGreedy,
            Algorithm::MonteCarlo(MonteCarlo {
                workers: 1,
                ..MonteCarlo::default()
            }),
        ]
    }
}

/// Wall-clock and work limits for one solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Stop racing after this much wall-clock time (best-effort: tasks in
    /// flight are cancelled cooperatively and contribute nothing).
    pub deadline: Option<Duration>,
    /// Deterministic cap on total evaluations across all tasks,
    /// apportioned in task-rank order before any task runs.
    pub max_evaluations: Option<u64>,
}

impl SolveBudget {
    /// No limits: every task runs to completion.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Limit wall-clock time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limit total evaluations (deterministic).
    pub fn with_max_evaluations(mut self, evals: u64) -> Self {
        self.max_evaluations = Some(evals);
        self
    }
}

/// A rejected [`SolveRequest`] configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The request has no algorithms to race.
    NoAlgorithms,
    /// The request has no seeds.
    NoSeeds,
    /// Zero worker threads were requested.
    ZeroWorkers,
    /// An algorithm configuration failed validation.
    Algorithm {
        /// Display name of the offending algorithm.
        algo: &'static str,
        /// The underlying budget violation.
        source: BudgetError,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::NoAlgorithms => write!(f, "portfolio has no algorithms to race"),
            RequestError::NoSeeds => write!(f, "portfolio has no seeds (need at least one)"),
            RequestError::ZeroWorkers => write!(f, "worker count must be at least 1 (got 0)"),
            RequestError::Algorithm { algo, source } => {
                write!(f, "invalid {algo} configuration: {source}")
            }
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Algorithm { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A validated portfolio solve: instance + line-up + seeds + budget.
///
/// Build with [`SolveRequest::builder`], run with [`SolveRequest::solve`]
/// (or [`solve_probed`](SolveRequest::solve_probed) to stream
/// [`SolverEvent`](noc_telemetry::SolverEvent)s).
#[derive(Debug, Clone)]
pub struct SolveRequest<'a> {
    pub(crate) inst: &'a ObmInstance,
    pub(crate) algorithms: Vec<Algorithm>,
    pub(crate) seeds: Vec<u64>,
    pub(crate) budget: SolveBudget,
    pub(crate) workers: usize,
    pub(crate) aggressive_pruning: bool,
    pub(crate) objective: ObjectiveSpec,
    pub(crate) cancel: CancelToken,
    pub(crate) resume: Option<Checkpoint>,
    pub(crate) metrics: MetricsHandle,
}

impl<'a> SolveRequest<'a> {
    /// Start building a request for `inst`.
    pub fn builder(inst: &'a ObmInstance) -> SolveRequestBuilder<'a> {
        SolveRequestBuilder {
            inst,
            algorithms: Vec::new(),
            seeds: Vec::new(),
            budget: SolveBudget::unlimited(),
            workers: default_workers(),
            aggressive_pruning: false,
            objective: ObjectiveSpec::default(),
            cancel: CancelToken::never(),
            resume: None,
            metrics: MetricsHandle::disabled(),
        }
    }

    /// Run the portfolio without telemetry.
    pub fn solve(&self) -> SolveOutcome {
        engine::run(self, &mut NoopSink)
    }

    /// Run the portfolio, streaming buffered portfolio/solver events to
    /// `probe` in deterministic task-rank order after the race settles.
    pub fn solve_probed(&self, probe: &mut dyn Probe) -> SolveOutcome {
        engine::run(self, probe)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured budget.
    pub fn budget(&self) -> SolveBudget {
        self.budget
    }

    /// The cancellation token observed by every task (cancel it from
    /// another thread to stop the whole race).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The objective every task is scored (and, for non-default
    /// objectives, polished) under.
    pub fn objective(&self) -> ObjectiveSpec {
        self.objective
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Builder for [`SolveRequest`] (the PR 2 builder-validation convention:
/// all invariants checked in [`build`](SolveRequestBuilder::build), which
/// returns a typed [`RequestError`] instead of panicking later).
#[derive(Debug, Clone)]
pub struct SolveRequestBuilder<'a> {
    inst: &'a ObmInstance,
    algorithms: Vec<Algorithm>,
    seeds: Vec<u64>,
    budget: SolveBudget,
    workers: usize,
    aggressive_pruning: bool,
    objective: ObjectiveSpec,
    cancel: CancelToken,
    resume: Option<Checkpoint>,
    metrics: MetricsHandle,
}

impl<'a> SolveRequestBuilder<'a> {
    /// Add one algorithm to the line-up.
    pub fn algorithm(mut self, algo: Algorithm) -> Self {
        self.algorithms.push(algo);
        self
    }

    /// Add several algorithms.
    pub fn algorithms(mut self, algos: impl IntoIterator<Item = Algorithm>) -> Self {
        self.algorithms.extend(algos);
        self
    }

    /// Add one seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Add several seeds. Seed-sensitive algorithms get one task per
    /// seed; deterministic algorithms get a single task.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Set the whole budget at once.
    pub fn budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Set a wall-clock deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Set the deterministic evaluation cap.
    pub fn max_evaluations(mut self, evals: u64) -> Self {
        self.budget.max_evaluations = Some(evals);
        self
    }

    /// Set the worker-thread count (default: available parallelism,
    /// capped at 8). The result is bit-identical for any worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Observe an external cancellation token (share it with another
    /// thread and call `cancel()` there to stop the race).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Score (and polish) every task under `objective` instead of the
    /// default min-max APL. With [`ObjectiveSpec::MinMaxApl`] the race is
    /// bit-identical to the pre-objective engine; any other objective
    /// re-ranks the merge by its scalar, polishes each task's mapping
    /// with a deterministic exchange refinement, and disables the shared
    /// incumbent bound for exact tasks (branch-and-bound prunes on
    /// max-APL internally, which is no longer the racing objective).
    pub fn objective(mut self, objective: ObjectiveSpec) -> Self {
        self.objective = objective;
        self
    }

    /// Let exact (branch-and-bound) tasks prune against the live shared
    /// incumbent. Off by default: the live bound depends on scheduling,
    /// so switching this on trades bit-for-bit reproducibility of the
    /// *proof path* for speed (the winning objective value is unaffected;
    /// see DESIGN.md §10.2).
    pub fn aggressive_pruning(mut self, on: bool) -> Self {
        self.aggressive_pruning = on;
        self
    }

    /// Resume from a previous run's checkpoint: completed tasks recorded
    /// there are injected instead of re-run. The checkpoint's fingerprint
    /// must match this request (instance + task list), or `solve` falls
    /// back to running everything (the mismatch is surfaced in the
    /// outcome's stats).
    pub fn resume(mut self, checkpoint: Checkpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Report runtime metrics (task counts, evaluation totals, per-task
    /// spans — DESIGN.md §17) into `handle`'s registry. Metrics are
    /// write-only observers: the winner, stats and checkpoint are
    /// bit-identical with metrics enabled or disabled (the default).
    pub fn metrics(mut self, handle: MetricsHandle) -> Self {
        self.metrics = handle;
        self
    }

    /// Validate and freeze the request.
    pub fn build(self) -> Result<SolveRequest<'a>, RequestError> {
        if self.algorithms.is_empty() {
            return Err(RequestError::NoAlgorithms);
        }
        if self.seeds.is_empty() {
            return Err(RequestError::NoSeeds);
        }
        if self.workers == 0 {
            return Err(RequestError::ZeroWorkers);
        }
        for algo in &self.algorithms {
            if let Err(source) = algo.validate() {
                return Err(RequestError::Algorithm {
                    algo: algo.name(),
                    source,
                });
            }
        }
        Ok(SolveRequest {
            inst: self.inst,
            algorithms: self.algorithms,
            seeds: self.seeds,
            budget: self.budget,
            workers: self.workers,
            aggressive_pruning: self.aggressive_pruning,
            objective: self.objective,
            cancel: self.cancel,
            resume: self.resume,
            metrics: self.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn tiny_instance() -> ObmInstance {
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        ObmInstance::new(tiles, vec![0, 2, 4], vec![0.1, 0.2, 0.3, 0.4], vec![0.0; 4])
    }

    #[test]
    fn builder_rejects_empty_and_zero_configurations() {
        let inst = tiny_instance();
        assert_eq!(
            SolveRequest::builder(&inst).seed(1).build().err(),
            Some(RequestError::NoAlgorithms)
        );
        assert_eq!(
            SolveRequest::builder(&inst)
                .algorithm(Algorithm::BalancedGreedy)
                .build()
                .err(),
            Some(RequestError::NoSeeds)
        );
        assert_eq!(
            SolveRequest::builder(&inst)
                .algorithm(Algorithm::BalancedGreedy)
                .seed(1)
                .workers(0)
                .build()
                .err(),
            Some(RequestError::ZeroWorkers)
        );
    }

    #[test]
    fn builder_surfaces_algorithm_budget_violations() {
        let inst = tiny_instance();
        let err = SolveRequest::builder(&inst)
            .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
                iterations: 0,
                ..SimulatedAnnealing::default()
            }))
            .seed(1)
            .build()
            .err();
        match err {
            Some(RequestError::Algorithm { algo, source }) => {
                assert_eq!(algo, "SA");
                assert_eq!(source, BudgetError::ZeroIterations);
            }
            other => panic!("expected Algorithm error, got {other:?}"),
        }
        let msg = SolveRequest::builder(&inst)
            .algorithm(Algorithm::MonteCarlo(MonteCarlo {
                samples: 0,
                workers: 1,
            }))
            .seed(1)
            .build()
            .expect_err("zero samples must be rejected")
            .to_string();
        assert!(msg.contains("MC"), "unhelpful message: {msg}");
        assert!(msg.contains("sample budget"), "unhelpful message: {msg}");
    }

    #[test]
    fn seeded_classification_matches_algorithm_semantics() {
        assert!(!Algorithm::SortSelectSwap(SortSelectSwap::default()).seeded());
        assert!(!Algorithm::BalancedGreedy.seeded());
        assert!(!Algorithm::Exact(BranchAndBound::default()).seeded());
        assert!(Algorithm::SimulatedAnnealing(SimulatedAnnealing::default()).seeded());
        assert!(Algorithm::HybridSssSa(HybridSssSa::default()).seeded());
        assert!(Algorithm::MonteCarlo(MonteCarlo::default()).seeded());
    }

    #[test]
    fn clamping_shrinks_iteration_driven_algorithms_only() {
        let inst = tiny_instance();
        let sa = Algorithm::SimulatedAnnealing(SimulatedAnnealing {
            iterations: 10_000,
            restarts: 2,
            ..SimulatedAnnealing::default()
        });
        match sa.clamped_to(5_000, &inst) {
            Some(Algorithm::SimulatedAnnealing(c)) => {
                assert_eq!(c.iterations, 2_500);
                assert_eq!(c.restarts, 2);
            }
            other => panic!("expected clamped SA, got {other:?}"),
        }
        // Too small to give every restart one iteration: dropped.
        assert!(sa.clamped_to(1, &inst).is_none());
        let sss = Algorithm::SortSelectSwap(SortSelectSwap::default());
        // All-or-nothing: fits whole or not at all.
        assert!(sss.clamped_to(sss.nominal_evals(&inst), &inst).is_some());
        assert!(sss
            .clamped_to(sss.nominal_evals(&inst) - 1, &inst)
            .is_none());
    }
}
