//! Deterministic parallel solver-portfolio engine.
//!
//! Races a configured line-up of `obm-core` mappers — sort-select-swap,
//! multi-seed simulated annealing, the SSS+SA hybrid, balanced greedy,
//! Monte-Carlo, and optionally branch-and-bound — across scoped worker
//! threads under a shared [`SolveBudget`] (wall-clock deadline and/or a
//! deterministic evaluation cap), with cooperative cancellation and
//! checkpoint/resume. The whole engine sits behind one request/outcome
//! pair:
//!
//! ```
//! use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
//! use obm_core::problem::ObmInstance;
//! use obm_portfolio::{Algorithm, SolveRequest, Termination};
//!
//! // A 4x4-mesh instance: 16 tiles, four 4-thread applications.
//! let mesh = Mesh::square(4);
//! let mcs = MemoryControllers::corners(&mesh);
//! let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
//! let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
//! let inst = ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16]);
//!
//! let outcome = SolveRequest::builder(&inst)
//!     .algorithms(Algorithm::default_portfolio())
//!     .seeds([1, 2, 3])
//!     .workers(4)
//!     .build()
//!     .expect("valid request")
//!     .solve();
//!
//! assert_eq!(outcome.termination, Termination::Completed);
//! assert!(outcome.objective.is_finite());
//! ```
//!
//! # Determinism
//!
//! A fixed request produces a bit-identical winner (mapping, objective,
//! tie-break) for **any** worker count: tasks get ranks and budgets
//! before the race starts, results merge by (objective, task-rank) via
//! `f64::total_cmp`, and interrupted tasks contribute nothing. Runs that
//! end in [`Termination::Completed`] or [`Termination::BudgetExhausted`]
//! are fully reproducible; [`Termination::Deadline`] and
//! [`Termination::Cancelled`] are best-effort (which tasks finished
//! depends on timing, but the merge of those that did is still
//! deterministic). DESIGN.md §10 specifies the model.

pub mod checkpoint;
mod engine;
pub mod outcome;
pub mod placement;
pub mod request;

pub use checkpoint::{Checkpoint, CheckpointError, CompletedTask, CHECKPOINT_VERSION};
pub use outcome::{SolveOutcome, SolveStats, Termination};
pub use placement::portfolio_inner;
pub use request::{Algorithm, RequestError, SolveBudget, SolveRequest, SolveRequestBuilder};
