//! What a portfolio solve returns: winner, per-algorithm statistics, and
//! why the race stopped.

use obm_core::Mapping;

/// Why the portfolio stopped racing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Every task ran to completion (fully deterministic).
    Completed,
    /// The evaluation cap clamped or dropped at least one task. Still
    /// deterministic: the clamp happens before any task runs, in
    /// task-rank order.
    BudgetExhausted,
    /// The wall-clock deadline fired; in-flight tasks were cancelled and
    /// contribute nothing (best-effort, timing-dependent).
    Deadline,
    /// The external cancel token fired.
    Cancelled,
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Termination::Completed => "completed",
            Termination::BudgetExhausted => "budget_exhausted",
            Termination::Deadline => "deadline",
            Termination::Cancelled => "cancelled",
        })
    }
}

/// Per-(algorithm × seed) task statistics.
#[derive(Debug, Clone)]
pub struct SolveStats {
    /// Deterministic task rank (merge tie-break order).
    pub task: u64,
    /// Display name of the algorithm ("SSS", "SA", …).
    pub algo: &'static str,
    /// Seed the task ran with.
    pub seed: u64,
    /// Objective (max per-application APL) the task achieved; `None` if
    /// the task was cancelled, dropped by the evaluation cap, or pruned
    /// before it could finish.
    pub objective: Option<f64>,
    /// Evaluations budgeted to the task after deterministic clamping.
    pub evaluations: u64,
    /// Whether the task's result came from a resume checkpoint instead
    /// of a fresh run.
    pub resumed: bool,
    /// Wall-clock nanoseconds the task spent running. Telemetry only —
    /// never feeds the merge, fingerprint, or checkpoint, so determinism
    /// is unaffected. Zero for dropped, resumed, or never-started tasks.
    pub wall_nanos: u64,
    /// Measured evaluation throughput: budgeted evaluations ÷ wall time.
    /// `None` when the task did not finish a fresh run (dropped, resumed,
    /// cancelled) or ran too fast to time.
    pub evals_per_sec: Option<f64>,
}

/// The result of racing a portfolio.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The winning mapping. When no task completed (deadline or
    /// cancellation before anything finished) this is the deterministic
    /// fallback: `BalancedGreedy` at seed 0.
    pub mapping: Mapping,
    /// Objective of [`mapping`](Self::mapping) (max per-application APL).
    pub objective: f64,
    /// Display name of the winning algorithm (`"Greedy"` for the
    /// fallback).
    pub winner: &'static str,
    /// Seed of the winning task.
    pub winner_seed: u64,
    /// Why the race stopped.
    pub termination: Termination,
    /// One entry per task, in task-rank order.
    pub stats: Vec<SolveStats>,
    /// Whether the fallback path produced the winner (no task finished).
    pub fallback: bool,
    /// Whether a resume checkpoint was offered but rejected (fingerprint
    /// mismatch); everything was re-run from scratch.
    pub resume_rejected: bool,
    /// Snapshot of every completed task, resumable via
    /// [`SolveRequestBuilder::resume`](crate::request::SolveRequestBuilder::resume).
    pub checkpoint: crate::checkpoint::Checkpoint,
}

impl SolveOutcome {
    /// Number of tasks that finished with a result.
    pub fn completed_tasks(&self) -> usize {
        self.stats.iter().filter(|s| s.objective.is_some()).count()
    }
}
