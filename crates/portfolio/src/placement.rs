//! Portfolio-backed inner solver for placement co-optimization.
//!
//! `obm_core::placement::co_optimize` is generic over its inner solver;
//! [`portfolio_inner`] adapts the full racing engine to that interface so
//! the outer placement search can spend a solver portfolio (instead of a
//! single heuristic) on every candidate layout.

use crate::request::{Algorithm, SolveBudget, SolveRequest};
use obm_core::problem::{Mapping, ObmInstance};

/// Build an inner solver for
/// [`co_optimize`](obm_core::placement::co_optimize) that races `algos`
/// across `workers` threads under `budget` for every candidate layout,
/// seeded with the outer search's `inner_seed`.
///
/// Determinism: a fixed algorithm line-up and an evaluation-cap-only
/// budget make each inner solve bit-identical for any worker count
/// (DESIGN.md §10), so the whole placement search stays reproducible.
/// Wall-clock deadlines in `budget` trade that away per solve.
pub fn portfolio_inner(
    algos: Vec<Algorithm>,
    workers: usize,
    budget: SolveBudget,
) -> impl FnMut(&ObmInstance, u64) -> (Mapping, f64) {
    move |inst, seed| {
        let outcome = SolveRequest::builder(inst)
            .algorithms(algos.iter().cloned())
            .seed(seed)
            .workers(workers)
            .budget(budget)
            .build()
            .expect("portfolio placement request: static line-up and seed are valid")
            .solve();
        (outcome.mapping, outcome.objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies};
    use obm_core::placement::{co_optimize, PlacementOptions};

    fn fig5_instance(mesh: &Mesh) -> ObmInstance {
        let mcs = MemoryControllers::corners(mesh);
        let tiles = TileLatencies::compute(mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.05; 16])
    }

    #[test]
    fn portfolio_inner_drives_placement_search() {
        let mesh = Mesh::square(4);
        let inst = fig5_instance(&mesh);
        let inner = portfolio_inner(
            vec![
                Algorithm::SortSelectSwap(Default::default()),
                Algorithm::BalancedGreedy,
            ],
            2,
            SolveBudget::unlimited(),
        );
        let out = co_optimize(&inst, &mesh, &PlacementOptions::new(1), inner).expect("search runs");
        assert!(out.objective <= out.baseline_objective);
        assert_ne!(out.layout.controllers().tiles(), &[TileId(0)]);
    }

    #[test]
    fn portfolio_inner_is_deterministic() {
        let mesh = Mesh::square(4);
        let inst = fig5_instance(&mesh);
        let run = |workers: usize| {
            let inner = portfolio_inner(
                vec![Algorithm::SortSelectSwap(Default::default())],
                workers,
                SolveBudget::unlimited(),
            );
            co_optimize(&inst, &mesh, &PlacementOptions::new(2), inner).expect("search runs")
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.layout.controllers(), b.layout.controllers());
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.mapping, b.mapping);
    }
}
