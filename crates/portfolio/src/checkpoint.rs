//! Checkpoint/resume for portfolio runs.
//!
//! A [`Checkpoint`] records every *completed* task of a run — (rank,
//! algorithm name, seed, objective, evaluation budget, mapping) — plus a
//! fingerprint of the request it belongs to. Resuming a request with a
//! matching fingerprint injects those results instead of re-running the
//! tasks, so an interrupted deadline run can pick up where it left off
//! without losing determinism: injected results merge exactly like fresh
//! ones, by (value, task-rank).
//!
//! The schema is the deterministic JSON writer from `noc-telemetry`
//! (sorted object keys, shortest round-tripping floats); `u64` fields
//! that may exceed 2^53 (fingerprint, seeds) are hex strings so they
//! round-trip exactly through the all-`f64` JSON number model. File I/O
//! stays in the CLI — this module only converts to and from strings.

use noc_telemetry::json::{parse, Value};
use obm_core::{Mapping, ObmInstance};

/// Schema version tag written into every checkpoint.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One completed task captured in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTask {
    /// Deterministic task rank within the run.
    pub task: u64,
    /// Display name of the algorithm ("SSS", "SA", …).
    pub algo: String,
    /// Seed the task ran with.
    pub seed: u64,
    /// Objective the task achieved.
    pub objective: f64,
    /// Evaluations the task was budgeted (after clamping).
    pub evaluations: u64,
    /// The mapping, thread → tile index.
    pub mapping: Vec<usize>,
}

/// A resumable snapshot of a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the (instance, task list) the snapshot belongs to.
    pub fingerprint: u64,
    /// Completed tasks, in task-rank order.
    pub completed: Vec<CompletedTask>,
}

/// A malformed or incompatible checkpoint document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The document is not valid JSON.
    Json(String),
    /// The document parsed but a required field is missing or has the
    /// wrong type.
    Schema(&'static str),
    /// The document's schema version is not supported.
    Version(u64),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Json(e) => write!(f, "checkpoint is not valid JSON: {e}"),
            CheckpointError::Schema(field) => {
                write!(f, "checkpoint is missing or has a malformed field: {field}")
            }
            CheckpointError::Version(v) => write!(
                f,
                "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Serialize to a single-line deterministic JSON document.
    pub fn to_json(&self) -> String {
        let tasks: Vec<Value> = self
            .completed
            .iter()
            .map(|t| {
                Value::obj([
                    ("task", Value::from(t.task)),
                    ("algo", Value::from(t.algo.as_str())),
                    ("seed", Value::from(format!("{:016x}", t.seed).as_str())),
                    ("objective", Value::from(t.objective)),
                    ("evaluations", Value::from(t.evaluations)),
                    (
                        "mapping",
                        Value::Arr(t.mapping.iter().map(|&k| Value::from(k)).collect()),
                    ),
                ])
            })
            .collect();
        Value::obj([
            ("version", Value::from(CHECKPOINT_VERSION)),
            (
                "fingerprint",
                Value::from(format!("{:016x}", self.fingerprint).as_str()),
            ),
            ("completed", Value::Arr(tasks)),
        ])
        .to_string()
    }

    /// Parse a document produced by [`to_json`](Checkpoint::to_json).
    pub fn from_json(text: &str) -> Result<Checkpoint, CheckpointError> {
        let doc = parse(text).map_err(CheckpointError::Json)?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or(CheckpointError::Schema("version"))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version(version));
        }
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Value::as_str)
            .and_then(parse_hex_u64)
            .ok_or(CheckpointError::Schema("fingerprint"))?;
        let raw = doc
            .get("completed")
            .and_then(Value::as_arr)
            .ok_or(CheckpointError::Schema("completed"))?;
        let mut completed = Vec::with_capacity(raw.len());
        for entry in raw {
            let task = entry
                .get("task")
                .and_then(Value::as_u64)
                .ok_or(CheckpointError::Schema("completed[].task"))?;
            let algo = entry
                .get("algo")
                .and_then(Value::as_str)
                .ok_or(CheckpointError::Schema("completed[].algo"))?
                .to_string();
            let seed = entry
                .get("seed")
                .and_then(Value::as_str)
                .and_then(parse_hex_u64)
                .ok_or(CheckpointError::Schema("completed[].seed"))?;
            let objective = entry
                .get("objective")
                .and_then(Value::as_f64)
                .ok_or(CheckpointError::Schema("completed[].objective"))?;
            let evaluations = entry
                .get("evaluations")
                .and_then(Value::as_u64)
                .ok_or(CheckpointError::Schema("completed[].evaluations"))?;
            let mapping = entry
                .get("mapping")
                .and_then(Value::as_arr)
                .ok_or(CheckpointError::Schema("completed[].mapping"))?
                .iter()
                .map(|v| v.as_u64().map(|k| k as usize))
                .collect::<Option<Vec<usize>>>()
                .ok_or(CheckpointError::Schema("completed[].mapping[]"))?;
            completed.push(CompletedTask {
                task,
                algo,
                seed,
                objective,
                evaluations,
                mapping,
            });
        }
        Ok(Checkpoint {
            fingerprint,
            completed,
        })
    }

    /// Look up the completed entry for task rank `task`, verifying that
    /// its identity (algorithm, seed) and mapping shape match what the
    /// current request would run at that rank.
    pub(crate) fn entry(
        &self,
        task: u64,
        algo: &str,
        seed: u64,
        num_threads: usize,
    ) -> Option<&CompletedTask> {
        self.completed.iter().find(|t| {
            t.task == task && t.algo == algo && t.seed == seed && t.mapping.len() == num_threads
        })
    }
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// FNV-1a over the request identity: instance dimensions, application
/// boundaries, traffic-rate bit patterns, and the task descriptors
/// (algorithm name, seed, clamped evaluation budget). Two requests with
/// the same fingerprint race the same task list on the same instance, so
/// completed results are interchangeable between them.
pub(crate) struct Fingerprint(u64);

impl Fingerprint {
    pub(crate) fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for byte in s.bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn instance(&mut self, inst: &ObmInstance) {
        self.u64(inst.num_tiles() as u64);
        self.u64(inst.num_threads() as u64);
        self.u64(inst.num_apps() as u64);
        for &b in inst.boundaries() {
            self.u64(b as u64);
        }
        for j in 0..inst.num_threads() {
            self.f64(inst.cache_rate(j));
            self.f64(inst.mem_rate(j));
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Convert a checkpointed mapping back into a [`Mapping`], rejecting
/// out-of-range tile indices.
pub(crate) fn mapping_from_tiles(tiles: &[usize], num_tiles: usize) -> Option<Mapping> {
    if tiles.iter().any(|&k| k >= num_tiles) {
        return None;
    }
    Some(Mapping::new(
        tiles.iter().map(|&k| noc_model::TileId(k)).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xdead_beef_1234_5678,
            completed: vec![
                CompletedTask {
                    task: 0,
                    algo: "SSS".to_string(),
                    seed: 0,
                    objective: 12.25,
                    evaluations: 64,
                    mapping: vec![0, 1, 2, 3],
                },
                CompletedTask {
                    task: 2,
                    algo: "SA".to_string(),
                    seed: u64::MAX,
                    objective: 11.5,
                    evaluations: 10_000,
                    mapping: vec![3, 2, 1, 0],
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let cp = sample();
        let text = cp.to_json();
        let back = Checkpoint::from_json(&text).expect("round-trip parse");
        assert_eq!(back, cp);
        // Determinism: serializing again yields the identical document.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn large_u64s_round_trip_exactly() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json()).expect("parse");
        assert_eq!(back.completed[1].seed, u64::MAX);
        assert_eq!(back.fingerprint, 0xdead_beef_1234_5678);
    }

    #[test]
    fn rejects_bad_version_and_garbage() {
        assert!(matches!(
            Checkpoint::from_json("not json"),
            Err(CheckpointError::Json(_))
        ));
        let doc = sample()
            .to_json()
            .replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            Checkpoint::from_json(&doc),
            Err(CheckpointError::Version(99))
        ));
        assert!(matches!(
            Checkpoint::from_json("{}"),
            Err(CheckpointError::Schema("version"))
        ));
    }

    #[test]
    fn entry_lookup_checks_identity() {
        let cp = sample();
        assert!(cp.entry(0, "SSS", 0, 4).is_some());
        assert!(cp.entry(0, "SA", 0, 4).is_none());
        assert!(cp.entry(0, "SSS", 1, 4).is_none());
        assert!(cp.entry(0, "SSS", 0, 5).is_none());
        assert!(cp.entry(1, "SSS", 0, 4).is_none());
    }

    #[test]
    fn mapping_from_tiles_rejects_out_of_range() {
        assert!(mapping_from_tiles(&[0, 1, 2], 3).is_some());
        assert!(mapping_from_tiles(&[0, 3], 3).is_none());
    }
}
