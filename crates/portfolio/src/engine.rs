//! The deterministic parallel race.
//!
//! # Determinism model
//!
//! The engine's contract (pinned by `tests/portfolio.rs` at the facade):
//! for a fixed request, the winning mapping, its objective, the stats
//! table, and the replayed event stream are **bit-identical for any
//! worker count** — 1, 2 or 8 threads, with or without work stealing
//! jitter. Three rules make that hold:
//!
//! 1. **Task list and budgets are fixed before anything runs.** The
//!    (algorithm × seed) expansion and the `max_evaluations` clamp both
//!    happen sequentially in task-rank order, so no task's budget depends
//!    on scheduling.
//! 2. **Merge by (value, task-rank), never arrival order.** Workers pull
//!    tasks from a shared counter and finish in any order; results land
//!    in per-task slots and are merged by a sequential scan that prefers
//!    strictly-smaller objectives (`f64::total_cmp`), so ties break
//!    toward the lowest rank regardless of who finished first.
//! 3. **Cancelled work contributes nothing.** A task interrupted by the
//!    deadline or the caller's token returns `None` and is excluded
//!    entirely — partial work is never merged, so the only
//!    non-determinism a deadline can introduce is *which* tasks finished,
//!    surfaced honestly as `Termination::Deadline`.
//!
//! The shared incumbent (an atomic `f64`-bits min) is telemetry by
//! default; only `Algorithm::Exact` consumes it, and only under
//! `aggressive_pruning` (see DESIGN.md §10.2). Events are buffered
//! per-task and replayed in rank order after the race, with incumbent
//! values recomputed during the replay — the emitted stream matches what
//! a sequential run would have produced.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use noc_telemetry::{Probe, SolverEvent};
use obm_core::algorithms::{BalancedGreedy, Mapper, OBJECTIVE_REFINE_PASSES};
use obm_core::{
    evaluate, refine_for_objective, BatchEvaluator, Mapping, ObjectiveSpec, ObmInstance,
};

use crate::checkpoint::{mapping_from_tiles, Checkpoint, CompletedTask, Fingerprint};
use crate::outcome::{SolveOutcome, SolveStats, Termination};
use crate::request::{Algorithm, SolveRequest};

/// One (algorithm × seed) unit of work, identified by its rank.
struct Task {
    rank: u64,
    algo: Algorithm,
    name: &'static str,
    seed: u64,
    /// Evaluations budgeted after deterministic clamping.
    evals: u64,
    /// The evaluation cap left no room for this task at all.
    dropped: bool,
    /// Injected from a resume checkpoint instead of being run.
    resumed: Option<(f64, Mapping)>,
}

/// What a finished task hands to the merge.
struct TaskResult {
    value: f64,
    mapping: Mapping,
    events: Vec<SolverEvent>,
    /// Wall-clock run time (telemetry only; zero for resumed tasks).
    wall_nanos: u64,
}

/// Atomic minimum over `f64` bit patterns (the shared incumbent bound).
struct SharedBound(AtomicU64);

impl SharedBound {
    fn new() -> Self {
        SharedBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn update_min(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v.total_cmp(&f64::from_bits(cur)) == std::cmp::Ordering::Less {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Per-task event buffer: records inner solver events for rank-ordered
/// replay after the race (never forwarded live — live forwarding would
/// interleave tasks in arrival order).
struct BufferProbe {
    enabled: bool,
    events: Vec<SolverEvent>,
}

impl Probe for BufferProbe {
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn on_solver_event(&mut self, event: &SolverEvent) {
        if self.enabled {
            self.events.push(event.clone());
        }
    }
}

/// Expand algorithms × seeds into ranked tasks and apply the
/// deterministic evaluation-budget clamp. Returns the task list and
/// whether the clamp modified or dropped anything.
fn plan(req: &SolveRequest<'_>) -> (Vec<Task>, bool) {
    let inst = req.inst;
    let mut tasks = Vec::new();
    let mut rank = 0u64;
    for algo in &req.algorithms {
        // Unseeded algorithms produce the same mapping for every seed;
        // racing copies would burn budget on identical work.
        let seeds: &[u64] = if algo.seeded() {
            &req.seeds
        } else {
            &req.seeds[..1]
        };
        for &seed in seeds {
            tasks.push(Task {
                rank,
                algo: *algo,
                name: algo.name(),
                seed,
                evals: algo.nominal_evals(inst),
                dropped: false,
                resumed: None,
            });
            rank += 1;
        }
    }
    let mut clamped = false;
    if let Some(cap) = req.budget.max_evaluations {
        let mut remaining = cap;
        for t in &mut tasks {
            match t.algo.clamped_to(remaining, inst) {
                Some(a) => {
                    let evals = a.nominal_evals(inst);
                    clamped |= evals < t.evals;
                    t.algo = a;
                    t.evals = evals;
                    remaining -= evals;
                }
                None => {
                    t.dropped = true;
                    t.evals = 0;
                    clamped = true;
                }
            }
        }
    }
    (tasks, clamped)
}

/// Fingerprint of (instance, task list): what a checkpoint must match to
/// be resumable. Hashes the full algorithm configuration (via its `Debug`
/// form — derived, covers every field) so e.g. two SA line-ups differing
/// only in cooling schedule do not share checkpoints. A non-default
/// objective is hashed in too (a checkpoint scored under one objective
/// must not resume a race under another); the default is deliberately
/// *not* hashed, so checkpoints written before objectives existed keep
/// resuming min-max requests.
fn fingerprint(inst: &ObmInstance, tasks: &[Task], objective: ObjectiveSpec) -> u64 {
    let mut fp = Fingerprint::new();
    fp.instance(inst);
    for t in tasks {
        let cfg = format!("{:?}", t.algo);
        fp.str(&cfg);
        fp.u64(t.seed);
        fp.u64(t.evals);
        fp.u64(t.dropped as u64);
    }
    if !objective.is_min_max_apl() {
        fp.str(&format!("objective:{objective:?}"));
    }
    fp.finish()
}

/// Score `mapping` under the request's objective. The default
/// [`ObjectiveSpec::MinMaxApl`] keeps the engine's historical scoring
/// path (the batched evaluator's `max_apl`, bit-identical to
/// `evaluate`); anything else dispatches through the spec.
fn score(inst: &ObmInstance, objective: ObjectiveSpec, mapping: &Mapping) -> f64 {
    if objective.is_min_max_apl() {
        BatchEvaluator::new(inst).eval_one(mapping).max_apl
    } else {
        objective.score(inst, mapping)
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // A worker can only poison the mutex by panicking between lock and
    // unlock; the slot write it guards is still the freshest state, so
    // recover the guard instead of propagating the poison.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub(crate) fn run(req: &SolveRequest<'_>, probe: &mut dyn Probe) -> SolveOutcome {
    let inst = req.inst;
    let objective = req.objective;
    let min_max = objective.is_min_max_apl();
    let (mut tasks, clamped) = plan(req);
    let fp = fingerprint(inst, &tasks, objective);

    // Inject completed tasks from a matching checkpoint. The stored
    // mappings are re-scored in one `eval_many` batch — re-evaluating
    // instead of trusting the stored objectives keeps a tampered/stale
    // value from steering the merge (bit-identical to per-mapping
    // `evaluate`, so resumed outcomes match the original run).
    let mut resume_rejected = false;
    if let Some(cp) = &req.resume {
        if cp.fingerprint == fp {
            let mut injected: Vec<(usize, Mapping)> = Vec::new();
            for (i, t) in tasks.iter().enumerate() {
                if t.dropped {
                    continue;
                }
                if let Some(entry) = cp.entry(t.rank, t.name, t.seed, inst.num_threads()) {
                    if let Some(m) = mapping_from_tiles(&entry.mapping, inst.num_tiles()) {
                        injected.push((i, m));
                    }
                }
            }
            if !injected.is_empty() {
                if min_max {
                    let batch: Vec<Mapping> = injected.iter().map(|(_, m)| m.clone()).collect();
                    let reports = BatchEvaluator::new(inst).eval_many(&batch);
                    for ((i, m), r) in injected.into_iter().zip(reports) {
                        tasks[i].resumed = Some((r.max_apl, m));
                    }
                } else {
                    // Checkpointed mappings are post-polish; re-scoring
                    // under the (fingerprint-matched) objective suffices.
                    for (i, m) in injected {
                        let v = score(inst, objective, &m);
                        tasks[i].resumed = Some((v, m));
                    }
                }
            }
        } else {
            resume_rejected = true;
        }
    }

    let token = match req.budget.deadline {
        Some(d) => req.cancel.with_deadline_in(d),
        None => req.cancel.clone(),
    };

    let bound = SharedBound::new();
    for t in &tasks {
        if let Some((v, _)) = &t.resumed {
            bound.update_min(*v);
        }
    }

    // Race the tasks that still need running.
    let runnable: Vec<usize> = tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.dropped && t.resumed.is_none())
        .map(|(i, _)| i)
        .collect();
    let slots: Mutex<Vec<Option<TaskResult>>> =
        Mutex::new((0..runnable.len()).map(|_| None).collect());
    let workers = req.workers.min(runnable.len());
    if workers > 0 {
        // Build the instance's eval tables once before the race so no
        // worker pays (or double-pays) the one-off build inside its
        // timed region.
        let _ = inst.eval_tables();
        let next = AtomicUsize::new(0);
        let capture = probe.is_enabled();
        let tasks_ref = &tasks;
        let runnable_ref = &runnable;
        let next_ref = &next;
        let slots_ref = &slots;
        let token_ref = &token;
        let bound_ref = &bound;
        let metrics_ref = &req.metrics;
        let aggressive = req.aggressive_pruning;
        // The vendored scope wraps std scoped threads: worker panics
        // propagate on scope exit, and the Ok wrapper is unconditional.
        let _ = crossbeam::thread::scope(move |s| {
            for _ in 0..workers {
                s.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= runnable_ref.len() {
                        break;
                    }
                    let t = &tasks_ref[runnable_ref[i]];
                    // One aggregated span per task identity; purely
                    // observational (recorded on drop, never read back).
                    let _task_span = metrics_ref.enabled().then(|| {
                        metrics_ref.span(&format!("portfolio/task/{}-s{}", t.name, t.seed))
                    });
                    let mut buf = BufferProbe {
                        enabled: capture,
                        events: Vec::new(),
                    };
                    // The shared bound and branch-and-bound both prune on
                    // max-APL, so the incumbent is only sound when that
                    // is the racing objective.
                    let incumbent = (aggressive && min_max)
                        .then(|| bound_ref.load())
                        .filter(|b| b.is_finite());
                    let started = std::time::Instant::now();
                    if let Some(m) = t.algo.run(inst, t.seed, token_ref, &mut buf, incumbent) {
                        // Every algorithm searches the min-max landscape
                        // natively; under another objective each result
                        // is polished by the same deterministic exchange
                        // refinement `Mapper::map_objective` uses, then
                        // scored by the objective's scalar.
                        let m = if min_max {
                            m
                        } else {
                            let obj = objective.build();
                            refine_for_objective(inst, m, obj.as_ref(), OBJECTIVE_REFINE_PASSES)
                        };
                        let value = score(inst, objective, &m);
                        let wall_nanos = started.elapsed().as_nanos() as u64;
                        bound_ref.update_min(value);
                        lock(slots_ref)[i] = Some(TaskResult {
                            value,
                            mapping: m,
                            events: buf.events,
                            wall_nanos,
                        });
                    }
                });
            }
        });
    }

    // Collect per-task results: fresh runs from the slots, resumed tasks
    // from the checkpoint.
    let fresh = lock(&slots);
    let mut results: Vec<Option<TaskResult>> = tasks.iter().map(|_| None).collect();
    for (slot, &task_idx) in runnable.iter().enumerate() {
        // Slots are written at most once; taking them out of the guard
        // would need &mut, so rebuild by value from the locked Vec.
        if let Some(r) = &fresh[slot] {
            results[task_idx] = Some(TaskResult {
                value: r.value,
                mapping: r.mapping.clone(),
                events: r.events.clone(),
                wall_nanos: r.wall_nanos,
            });
        }
    }
    drop(fresh);
    for (i, t) in tasks.iter().enumerate() {
        if let Some((value, m)) = &t.resumed {
            results[i] = Some(TaskResult {
                value: *value,
                mapping: m.clone(),
                events: Vec::new(),
                wall_nanos: 0,
            });
        }
    }

    // Merge by (value, task-rank): sequential scan in rank order,
    // replaced only on a strictly smaller objective.
    let mut best: Option<(f64, usize)> = None;
    for (i, r) in results.iter().enumerate() {
        if let Some(r) = r {
            let better = match best {
                None => true,
                Some((bv, _)) => r.value.total_cmp(&bv) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some((r.value, i));
            }
        }
    }

    // Replay events in rank order with recomputed incumbents (the stream
    // a sequential run would have emitted).
    if probe.is_enabled() {
        let mut replay_incumbent = f64::INFINITY;
        for (i, t) in tasks.iter().enumerate() {
            let Some(r) = &results[i] else { continue };
            probe.on_solver_event(&SolverEvent::WorkerStarted {
                task: t.rank,
                algo: t.name.to_string(),
                seed: t.seed,
                incumbent: replay_incumbent,
            });
            for e in &r.events {
                probe.on_solver_event(e);
            }
            if r.value.total_cmp(&replay_incumbent) == std::cmp::Ordering::Less {
                replay_incumbent = r.value;
                probe.on_solver_event(&SolverEvent::IncumbentImproved {
                    task: t.rank,
                    objective: r.value,
                });
            } else {
                probe.on_solver_event(&SolverEvent::WorkerPruned {
                    task: t.rank,
                    objective: r.value,
                    incumbent: replay_incumbent,
                });
            }
        }
    }

    let stats: Vec<SolveStats> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let wall_nanos = results[i].as_ref().map_or(0, |r| r.wall_nanos);
            // Throughput only for fresh completed runs with measurable
            // wall time (resumed/dropped/cancelled tasks report None).
            let evals_per_sec = (wall_nanos > 0 && t.evals > 0 && results[i].is_some())
                .then(|| t.evals as f64 * 1e9 / wall_nanos as f64);
            SolveStats {
                task: t.rank,
                algo: t.name,
                seed: t.seed,
                objective: results[i].as_ref().map(|r| r.value),
                evaluations: t.evals,
                resumed: t.resumed.is_some(),
                wall_nanos,
                evals_per_sec,
            }
        })
        .collect();

    // Publish run-level metrics (DESIGN.md §17). This happens after the
    // merge and is write-only, so it can never feed back into the
    // winner, the stats, or the checkpoint — the registry-backed gauges
    // are also what `obm solve` prints, so the table and the snapshot
    // can never disagree.
    let metrics = &req.metrics;
    if metrics.enabled() {
        metrics.inc("portfolio_solves_total");
        metrics.add("portfolio_tasks_total", tasks.len() as u64);
        let completed_evals: u64 = stats
            .iter()
            .filter(|s| s.objective.is_some())
            .map(|s| s.evaluations)
            .sum();
        metrics.add("portfolio_evals_total", completed_evals);
        // Incumbent improvements as a sequential rank-order scan — the
        // same stream the probe replay emits, counted unconditionally.
        let mut incumbent = f64::INFINITY;
        let mut improvements = 0u64;
        for r in results.iter().flatten() {
            if r.value.total_cmp(&incumbent) == std::cmp::Ordering::Less {
                incumbent = r.value;
                improvements += 1;
            }
        }
        metrics.add("portfolio_incumbent_improvements_total", improvements);
        metrics.gauge_set("portfolio_workers", req.workers as f64);
        let (timed_evals, timed_nanos) = stats
            .iter()
            .filter(|s| s.objective.is_some() && s.wall_nanos > 0 && !s.resumed)
            .fold((0u64, 0u64), |(e, n), s| {
                (e + s.evaluations, n + s.wall_nanos)
            });
        if timed_nanos > 0 {
            metrics.wall_gauge_set(
                "portfolio_evals_per_sec",
                timed_evals as f64 * 1e9 / timed_nanos as f64,
            );
        }
    }

    let checkpoint = Checkpoint {
        fingerprint: fp,
        completed: tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                results[i].as_ref().map(|r| CompletedTask {
                    task: t.rank,
                    algo: t.name.to_string(),
                    seed: t.seed,
                    objective: r.value,
                    evaluations: t.evals,
                    mapping: r.mapping.as_slice().iter().map(|k| k.0).collect(),
                })
            })
            .collect(),
    };

    let any_interrupted = runnable.iter().any(|&task_idx| results[task_idx].is_none());
    let termination = if req.cancel.cancelled_by_flag() {
        Termination::Cancelled
    } else if any_interrupted && req.budget.deadline.is_some() {
        Termination::Deadline
    } else if clamped {
        Termination::BudgetExhausted
    } else {
        Termination::Completed
    };

    match best {
        Some((value, i)) => {
            let Some(r) = results[i].take() else {
                // Unreachable by construction (best indexes a Some);
                // degrade to the fallback rather than panic.
                return fallback_outcome(
                    inst,
                    objective,
                    termination,
                    stats,
                    checkpoint,
                    resume_rejected,
                );
            };
            SolveOutcome {
                mapping: r.mapping,
                objective: value,
                winner: tasks[i].name,
                winner_seed: tasks[i].seed,
                termination,
                stats,
                fallback: false,
                resume_rejected,
                checkpoint,
            }
        }
        None => fallback_outcome(
            inst,
            objective,
            termination,
            stats,
            checkpoint,
            resume_rejected,
        ),
    }
}

/// Nothing finished (deadline or cancellation beat every task): return
/// the deterministic fallback, `BalancedGreedy` at seed 0, so callers
/// always get a valid mapping (scored under the request's objective).
fn fallback_outcome(
    inst: &ObmInstance,
    spec: ObjectiveSpec,
    termination: Termination,
    stats: Vec<SolveStats>,
    checkpoint: Checkpoint,
    resume_rejected: bool,
) -> SolveOutcome {
    let mapping = BalancedGreedy.map(inst, 0);
    let objective = if spec.is_min_max_apl() {
        evaluate(inst, &mapping).max_apl
    } else {
        spec.score(inst, &mapping)
    };
    SolveOutcome {
        mapping,
        objective,
        winner: "Greedy",
        winner_seed: 0,
        termination,
        stats,
        fallback: true,
        resume_rejected,
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SolveBudget;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
    use noc_telemetry::{Record, RingSink};
    use obm_core::algorithms::{MonteCarlo, SimulatedAnnealing, SortSelectSwap};
    use obm_core::CancelToken;

    fn fig5_instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16])
    }

    fn quick_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::SortSelectSwap(SortSelectSwap::default()),
            Algorithm::SimulatedAnnealing(SimulatedAnnealing {
                iterations: 2_000,
                ..SimulatedAnnealing::default()
            }),
            Algorithm::MonteCarlo(MonteCarlo {
                samples: 500,
                workers: 1,
            }),
        ]
    }

    #[test]
    fn plan_dedups_unseeded_algorithms() {
        let inst = fig5_instance();
        let req = SolveRequest::builder(&inst)
            .algorithms(quick_lineup())
            .algorithm(Algorithm::BalancedGreedy)
            .seeds([1, 2, 3])
            .build()
            .expect("valid");
        let (tasks, clamped) = plan(&req);
        // SSS and Greedy are unseeded (1 task each); SA and MC get 3 each.
        assert_eq!(tasks.len(), 1 + 3 + 3 + 1);
        assert!(!clamped);
        assert_eq!(tasks.iter().filter(|t| t.name == "SSS").count(), 1);
        assert_eq!(tasks.iter().filter(|t| t.name == "Greedy").count(), 1);
        assert_eq!(tasks.iter().filter(|t| t.name == "SA").count(), 3);
        // Ranks are dense and ordered.
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.rank, i as u64);
        }
    }

    #[test]
    fn plan_clamps_in_rank_order_and_drops_what_does_not_fit() {
        let inst = fig5_instance();
        let req = SolveRequest::builder(&inst)
            .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
                iterations: 2_000,
                ..SimulatedAnnealing::default()
            }))
            .algorithm(Algorithm::SortSelectSwap(SortSelectSwap::default()))
            .seeds([1, 2])
            .max_evaluations(2_500)
            .build()
            .expect("valid");
        let (tasks, clamped) = plan(&req);
        assert!(clamped);
        // SA seed 1 fits whole (2000), SA seed 2 is clamped to 500, and
        // SSS (nominal 256) is all-or-nothing with nothing left.
        assert_eq!(tasks[0].evals, 2_000);
        assert!(!tasks[0].dropped);
        assert_eq!(tasks[1].evals, 500);
        assert!(!tasks[1].dropped);
        assert!(tasks[2].dropped);
        assert_eq!(tasks[2].evals, 0);
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let inst = fig5_instance();
        let base = |workers: usize| {
            SolveRequest::builder(&inst)
                .algorithms(quick_lineup())
                .seeds([7, 11, 13])
                .workers(workers)
                .build()
                .expect("valid")
                .solve()
        };
        let one = base(1);
        let two = base(2);
        let four = base(4);
        assert_eq!(one.termination, Termination::Completed);
        for other in [&two, &four] {
            assert_eq!(other.mapping.as_slice(), one.mapping.as_slice());
            assert_eq!(other.objective.to_bits(), one.objective.to_bits());
            assert_eq!(other.winner, one.winner);
            assert_eq!(other.winner_seed, one.winner_seed);
            assert_eq!(other.checkpoint, one.checkpoint);
            assert_eq!(other.stats.len(), one.stats.len());
            for (a, b) in one.stats.iter().zip(other.stats.iter()) {
                assert_eq!(a.objective.map(f64::to_bits), b.objective.map(f64::to_bits));
            }
        }
    }

    #[test]
    fn event_replay_is_rank_ordered_and_worker_count_invariant() {
        let inst = fig5_instance();
        let events = |workers: usize| {
            let mut sink = RingSink::new(1 << 20);
            SolveRequest::builder(&inst)
                .algorithms(quick_lineup())
                .seeds([7, 11])
                .workers(workers)
                .build()
                .expect("valid")
                .solve_probed(&mut sink);
            sink.records().cloned().collect::<Vec<_>>()
        };
        let one = events(1);
        let four = events(4);
        assert_eq!(one, four);
        // The stream opens with task 0's WorkerStarted at an infinite
        // incumbent and contains one terminal event per task.
        let solver: Vec<&SolverEvent> = one
            .iter()
            .filter_map(|r| match r {
                Record::Solver(e) => Some(e),
                _ => None,
            })
            .collect();
        match solver.first() {
            Some(SolverEvent::WorkerStarted {
                task, incumbent, ..
            }) => {
                assert_eq!(*task, 0);
                assert!(incumbent.is_infinite());
            }
            other => panic!("stream must open with WorkerStarted, got {other:?}"),
        }
        let terminals = solver
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SolverEvent::IncumbentImproved { .. } | SolverEvent::WorkerPruned { .. }
                )
            })
            .count();
        assert_eq!(terminals, 5); // SSS + SA×{7,11} + MC×{7,11}
    }

    #[test]
    fn pre_cancelled_token_yields_deterministic_fallback() {
        let inst = fig5_instance();
        let token = CancelToken::new();
        token.cancel();
        let outcome = SolveRequest::builder(&inst)
            .algorithms(quick_lineup())
            .seed(1)
            .cancel_token(token)
            .build()
            .expect("valid")
            .solve();
        assert_eq!(outcome.termination, Termination::Cancelled);
        assert!(outcome.fallback);
        assert_eq!(outcome.winner, "Greedy");
        let greedy = BalancedGreedy.map(&inst, 0);
        assert_eq!(outcome.mapping.as_slice(), greedy.as_slice());
        assert!(outcome.stats.iter().all(|s| s.objective.is_none()));
        assert!(outcome.checkpoint.completed.is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported_and_deterministic() {
        let inst = fig5_instance();
        let solve = |workers: usize| {
            SolveRequest::builder(&inst)
                .algorithms(quick_lineup())
                .seeds([3, 5])
                .workers(workers)
                .budget(SolveBudget::unlimited().with_max_evaluations(2_600))
                .build()
                .expect("valid")
                .solve()
        };
        let one = solve(1);
        let four = solve(4);
        assert_eq!(one.termination, Termination::BudgetExhausted);
        assert_eq!(one.mapping.as_slice(), four.mapping.as_slice());
        assert_eq!(one.objective.to_bits(), four.objective.to_bits());
        // Dropped tasks surface as evaluations == 0 with no objective.
        assert!(one
            .stats
            .iter()
            .any(|s| s.evaluations == 0 && s.objective.is_none()));
    }

    #[test]
    fn resume_injects_completed_tasks_without_rerunning() {
        let inst = fig5_instance();
        let build = || {
            SolveRequest::builder(&inst)
                .algorithms(quick_lineup())
                .seeds([7, 11])
        };
        let first = build().build().expect("valid").solve();
        assert_eq!(first.termination, Termination::Completed);
        let resumed = build()
            .resume(first.checkpoint.clone())
            .build()
            .expect("valid")
            .solve();
        assert!(!resumed.resume_rejected);
        assert!(resumed.stats.iter().all(|s| s.resumed));
        assert_eq!(resumed.mapping.as_slice(), first.mapping.as_slice());
        assert_eq!(resumed.objective.to_bits(), first.objective.to_bits());
        assert_eq!(resumed.winner, first.winner);
        // Round-tripping the checkpoint through JSON changes nothing.
        let text = first.checkpoint.to_json();
        let parsed = Checkpoint::from_json(&text).expect("parse");
        let rejson = build().resume(parsed).build().expect("valid").solve();
        assert_eq!(rejson.objective.to_bits(), first.objective.to_bits());
    }

    #[test]
    fn mismatched_checkpoint_is_rejected_and_rerun() {
        let inst = fig5_instance();
        let first = SolveRequest::builder(&inst)
            .algorithms(quick_lineup())
            .seed(7)
            .build()
            .expect("valid")
            .solve();
        // Different seed list ⇒ different fingerprint.
        let outcome = SolveRequest::builder(&inst)
            .algorithms(quick_lineup())
            .seed(8)
            .resume(first.checkpoint)
            .build()
            .expect("valid")
            .solve();
        assert!(outcome.resume_rejected);
        assert!(outcome.stats.iter().all(|s| !s.resumed));
        assert_eq!(outcome.termination, Termination::Completed);
    }

    #[test]
    fn objective_spec_rescores_the_race_deterministically() {
        let inst = fig5_instance();
        let solve = |spec: ObjectiveSpec, workers: usize| {
            SolveRequest::builder(&inst)
                .algorithms(quick_lineup())
                .seeds([7])
                .workers(workers)
                .objective(spec)
                .build()
                .expect("valid")
                .solve()
        };
        // Non-default objective: still worker-count invariant, and the
        // reported objective is the spec's scalar on the winner.
        let bal1 = solve(ObjectiveSpec::MaxMinBalance, 1);
        let bal4 = solve(ObjectiveSpec::MaxMinBalance, 4);
        assert_eq!(bal1.mapping.as_slice(), bal4.mapping.as_slice());
        assert_eq!(bal1.objective.to_bits(), bal4.objective.to_bits());
        assert_eq!(
            bal1.objective.to_bits(),
            ObjectiveSpec::MaxMinBalance
                .score(&inst, &bal1.mapping)
                .to_bits()
        );
        // Default-objective checkpoints keep their pre-objective
        // fingerprints (resume works without naming an objective)…
        let plain = solve(ObjectiveSpec::MinMaxApl, 2);
        let resumed = SolveRequest::builder(&inst)
            .algorithms(quick_lineup())
            .seeds([7])
            .resume(plain.checkpoint.clone())
            .build()
            .expect("valid")
            .solve();
        assert!(!resumed.resume_rejected);
        assert_eq!(resumed.objective.to_bits(), plain.objective.to_bits());
        // …while a balance-scored checkpoint must not resume a min-max
        // race (different fingerprint ⇒ rejected and re-run).
        let cross = SolveRequest::builder(&inst)
            .algorithms(quick_lineup())
            .seeds([7])
            .resume(bal1.checkpoint.clone())
            .build()
            .expect("valid")
            .solve();
        assert!(cross.resume_rejected);
        // And a balance-objective request resumes its own checkpoint.
        let bal_resume = SolveRequest::builder(&inst)
            .algorithms(quick_lineup())
            .seeds([7])
            .objective(ObjectiveSpec::MaxMinBalance)
            .resume(bal1.checkpoint.clone())
            .build()
            .expect("valid")
            .solve();
        assert!(!bal_resume.resume_rejected);
        assert_eq!(bal_resume.objective.to_bits(), bal1.objective.to_bits());
    }

    #[test]
    fn shared_bound_is_a_total_order_min() {
        let b = SharedBound::new();
        assert!(b.load().is_infinite());
        b.update_min(5.0);
        assert_eq!(b.load(), 5.0);
        b.update_min(7.0);
        assert_eq!(b.load(), 5.0);
        b.update_min(4.5);
        assert_eq!(b.load(), 4.5);
        b.update_min(f64::NAN);
        assert_eq!(b.load(), 4.5); // NaN sorts above numbers in total_cmp
    }

    #[test]
    fn aggressive_pruning_keeps_the_winning_objective() {
        let inst = fig5_instance();
        let solve = |aggressive: bool| {
            SolveRequest::builder(&inst)
                .algorithms(quick_lineup())
                .algorithm(Algorithm::Exact(obm_core::algorithms::BranchAndBound {
                    node_budget: 200_000,
                }))
                .seed(7)
                .workers(2)
                .aggressive_pruning(aggressive)
                .build()
                .expect("valid")
                .solve()
        };
        let plain = solve(false);
        let pruned = solve(true);
        assert_eq!(plain.objective.to_bits(), pruned.objective.to_bits());
    }
}
