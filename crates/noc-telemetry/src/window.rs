//! Fixed-width windows over simulated cycles.
//!
//! Windows sit on the global cycle grid `[k·w, (k+1)·w)` but are
//! **truncated at phase boundaries** (end of warm-up, end of injection,
//! end of run), so every record's cycle span lies within exactly one
//! [`Phase`]. Consequences the tests pin down:
//!
//! * the first record is cut short when the warm-up is not a multiple of
//!   the window width;
//! * the record widths of the measurement phase always sum to exactly
//!   `measure_cycles`;
//! * the last record is cut at the cycle the drain actually finished.

use crate::latency::LatencyAccum;
use crate::probe::Probe;

/// Simulation phase a window belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Cycles before the measurement window (excluded from the report).
    Warmup,
    /// The measured injection window.
    Measure,
    /// Post-measurement cycles: no new injections, in-flight packets
    /// drain.
    Drain,
}

impl Phase {
    /// Stable lower-case name used in the JSON-lines artifact schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Warmup => "warmup",
            Phase::Measure => "measure",
            Phase::Drain => "drain",
        }
    }

    /// Whether this is the measured injection phase — the only phase
    /// whose windows carry representative steady-state latencies (the
    /// online remap controller gates its drift detection on it).
    pub fn is_measure(self) -> bool {
        self == Phase::Measure
    }
}

/// Wall-clock phase profile for one window of simulated cycles — the
/// simulator's self-profiling hook (DESIGN.md §12).
///
/// Timings are nanoseconds of host wall-clock spent in each simulator
/// phase while the window's cycles ran. Ejection is folded into
/// `route_nanos`: ejection happens inside the per-router
/// route/arbitrate pass and is too fine-grained to time separately
/// without perturbing the loop. Profiles are inherently
/// **nondeterministic** — they never feed back into simulation state and
/// are only produced for probes that opt in via
/// [`Probe::wants_profile`](crate::probe::Probe::wants_profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileRecord {
    /// Index of the corresponding [`WindowRecord`].
    pub window_index: u64,
    /// First cycle covered.
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Nanoseconds generating traffic (Bernoulli draws or geometric
    /// event-horizon sampling).
    pub generate_nanos: u64,
    /// Nanoseconds moving flits from NI queues into router input buffers.
    pub inject_nanos: u64,
    /// Nanoseconds in the per-router route/arbitrate/eject pass.
    pub route_nanos: u64,
    /// Nanoseconds applying link traversals and credit returns.
    pub traverse_nanos: u64,
    /// Nanoseconds spent on telemetry bookkeeping (window accounting,
    /// packet-record delivery).
    pub telemetry_nanos: u64,
}

impl ProfileRecord {
    /// Total profiled nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.generate_nanos
            + self.inject_nanos
            + self.route_nanos
            + self.traverse_nanos
            + self.telemetry_nanos
    }
}

/// Telemetry for one window of simulated cycles `[start_cycle,
/// end_cycle)`.
///
/// Counts cover *all* packets touching the network in the window
/// (including warm-up/drain traffic and zero-hop local packets), unlike
/// the end-of-run `SimReport`, which only accounts for measured packets.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Sequential record index (0, 1, 2, … in emission order).
    pub index: u64,
    /// First cycle covered by this window.
    pub start_cycle: u64,
    /// One past the last cycle covered (truncation can make
    /// `end_cycle - start_cycle` smaller than the configured width).
    pub end_cycle: u64,
    /// The phase every cycle of this window belongs to.
    pub phase: Phase,
    /// Packets entering the network (NI queue) in this window.
    pub injected_packets: u64,
    /// Flits those packets carry.
    pub injected_flits: u64,
    /// Packets whose tail flit ejected (or that completed locally) in
    /// this window.
    pub ejected_packets: u64,
    /// Flits those packets carried.
    pub ejected_flits: u64,
    /// Flits buffered anywhere in the network, sampled at the end of the
    /// window's last cycle.
    pub buffered_flits: usize,
    /// Live packets (queued or in flight), sampled with
    /// [`buffered_flits`](Self::buffered_flits).
    pub live_packets: usize,
    /// Latency accumulator over cache-class packets ejected in this
    /// window.
    pub cache: LatencyAccum,
    /// Latency accumulator over memory-class packets ejected in this
    /// window.
    pub memory: LatencyAccum,
    /// Per-group (application) accumulators over ejections in this
    /// window.
    pub groups: Vec<LatencyAccum>,
}

impl WindowRecord {
    /// A fresh all-zero record.
    pub fn empty(
        index: u64,
        start_cycle: u64,
        end_cycle: u64,
        phase: Phase,
        groups: usize,
    ) -> Self {
        WindowRecord {
            index,
            start_cycle,
            end_cycle,
            phase,
            injected_packets: 0,
            injected_flits: 0,
            ejected_packets: 0,
            ejected_flits: 0,
            buffered_flits: 0,
            live_packets: 0,
            cache: LatencyAccum::default(),
            memory: LatencyAccum::default(),
            groups: vec![LatencyAccum::default(); groups],
        }
    }

    /// Window width in cycles (post-truncation).
    pub fn width(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Packets injected per cycle.
    pub fn injection_rate(&self) -> f64 {
        if self.width() == 0 {
            0.0
        } else {
            self.injected_packets as f64 / self.width() as f64
        }
    }

    /// Packets ejected per cycle.
    pub fn ejection_rate(&self) -> f64 {
        if self.width() == 0 {
            0.0
        } else {
            self.ejected_packets as f64 / self.width() as f64
        }
    }

    /// Mean latency over both classes' ejections in this window.
    pub fn mean_latency(&self) -> f64 {
        let packets = self.cache.packets + self.memory.packets;
        if packets == 0 {
            0.0
        } else {
            (self.cache.total_latency + self.memory.total_latency) / packets as f64
        }
    }
}

/// Accumulates per-window counters on behalf of the simulator and flushes
/// a [`WindowRecord`] to the probe at every window/phase boundary.
///
/// The simulator drives it with [`on_inject`](Windower::on_inject) /
/// [`on_eject`](Windower::on_eject) during the cycle and one
/// [`end_cycle`](Windower::end_cycle) call per cycle; [`finish`]
/// (Windower::finish) truncates and flushes the final partial window.
#[derive(Debug)]
pub struct Windower {
    width: u64,
    num_groups: usize,
    /// First cycle of the measurement phase.
    warmup_end: u64,
    /// First cycle of the drain phase.
    inject_end: u64,
    cur: WindowRecord,
}

impl Windower {
    /// A windower for a run with the given window `width` (cycles),
    /// warm-up length and measurement length. A zero width is coerced
    /// to 1.
    pub fn new(width: u64, num_groups: usize, warmup_cycles: u64, measure_cycles: u64) -> Self {
        let width = width.max(1);
        let warmup_end = warmup_cycles;
        let inject_end = warmup_cycles + measure_cycles;
        let mut w = Windower {
            width,
            num_groups,
            warmup_end,
            inject_end,
            cur: WindowRecord::empty(0, 0, 0, Phase::Warmup, num_groups),
        };
        w.cur = WindowRecord::empty(0, 0, w.boundary_after(0), w.phase_of(0), num_groups);
        w
    }

    fn phase_of(&self, cycle: u64) -> Phase {
        if cycle < self.warmup_end {
            Phase::Warmup
        } else if cycle < self.inject_end {
            Phase::Measure
        } else {
            Phase::Drain
        }
    }

    /// The earliest of: the next grid point after `start`, and any phase
    /// boundary strictly inside `(start, grid]`.
    fn boundary_after(&self, start: u64) -> u64 {
        let mut end = (start / self.width + 1) * self.width;
        for b in [self.warmup_end, self.inject_end] {
            if start < b && b < end {
                end = b;
            }
        }
        end
    }

    /// One past the last cycle of the window currently being accumulated.
    ///
    /// The simulator's event-horizon fast-forward clamps its jumps to
    /// `current_window_end() - 1` so every window's final cycle executes
    /// normally and [`end_cycle`](Windower::end_cycle) flushes it — window
    /// spans stay exact whether or not cycles in between were skipped.
    pub fn current_window_end(&self) -> u64 {
        self.cur.end_cycle
    }

    /// A packet of `flits` flits entered the network.
    pub fn on_inject(&mut self, flits: u64) {
        self.cur.injected_packets += 1;
        self.cur.injected_flits += flits;
    }

    /// A packet finished (tail ejection, or a zero-hop local delivery).
    #[allow(clippy::too_many_arguments)]
    pub fn on_eject(
        &mut self,
        is_cache: bool,
        group: usize,
        latency: u64,
        hops: u32,
        flits: u16,
        ideal: u64,
    ) {
        self.cur.ejected_packets += 1;
        self.cur.ejected_flits += flits as u64;
        if is_cache {
            self.cur.cache.record(latency, hops, flits, ideal);
        } else {
            self.cur.memory.record(latency, hops, flits, ideal);
        }
        if let Some(g) = self.cur.groups.get_mut(group) {
            g.record(latency, hops, flits, ideal);
        }
    }

    /// Called once per simulated cycle, after all cycle effects are
    /// applied; flushes the current window when `cycle` was its last.
    pub fn end_cycle(
        &mut self,
        cycle: u64,
        buffered_flits: usize,
        live_packets: usize,
        probe: &mut dyn Probe,
    ) {
        if cycle + 1 != self.cur.end_cycle {
            return;
        }
        self.cur.buffered_flits = buffered_flits;
        self.cur.live_packets = live_packets;
        probe.on_window(&self.cur);
        let start = self.cur.end_cycle;
        self.cur = WindowRecord::empty(
            self.cur.index + 1,
            start,
            self.boundary_after(start),
            self.phase_of(start),
            self.num_groups,
        );
    }

    /// The run ended after `cycles_run` cycles: truncate and flush the
    /// final partial window (a no-op if the run ended exactly on a
    /// boundary).
    pub fn finish(
        mut self,
        cycles_run: u64,
        buffered_flits: usize,
        live_packets: usize,
        probe: &mut dyn Probe,
    ) {
        if cycles_run <= self.cur.start_cycle {
            return;
        }
        self.cur.end_cycle = cycles_run;
        self.cur.buffered_flits = buffered_flits;
        self.cur.live_packets = live_packets;
        probe.on_window(&self.cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Record, Sink};

    #[derive(Default)]
    struct Capture {
        windows: Vec<WindowRecord>,
    }

    impl Sink for Capture {
        fn record(&mut self, record: &Record) {
            if let Record::Window(w) = record {
                self.windows.push(w.clone());
            }
        }
    }

    /// Drive a windower over a run of `cycles_run` cycles with no
    /// traffic, returning the emitted records.
    fn drive(width: u64, warmup: u64, measure: u64, cycles_run: u64) -> Vec<WindowRecord> {
        let mut w = Windower::new(width, 1, warmup, measure);
        let mut sink = Capture::default();
        for c in 0..cycles_run {
            w.end_cycle(c, 0, 0, &mut sink);
        }
        w.finish(cycles_run, 0, 0, &mut sink);
        sink.windows
    }

    #[test]
    fn windows_truncate_at_phase_boundaries() {
        // warmup 500, measure 3000, run ends mid-window at 4321.
        let ws = drive(1000, 500, 3000, 4321);
        let spans: Vec<(u64, u64, Phase)> = ws
            .iter()
            .map(|w| (w.start_cycle, w.end_cycle, w.phase))
            .collect();
        assert_eq!(
            spans,
            vec![
                (0, 500, Phase::Warmup),
                (500, 1000, Phase::Measure),
                (1000, 2000, Phase::Measure),
                (2000, 3000, Phase::Measure),
                (3000, 3500, Phase::Measure),
                (3500, 4000, Phase::Drain),
                (4000, 4321, Phase::Drain),
            ]
        );
        // indices are sequential
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(w.index, i as u64);
        }
        // measurement-phase widths sum to exactly measure_cycles
        let measured: u64 = ws
            .iter()
            .filter(|w| w.phase == Phase::Measure)
            .map(WindowRecord::width)
            .sum();
        assert_eq!(measured, 3000);
    }

    #[test]
    fn no_warmup_and_exact_end_need_no_truncation() {
        let ws = drive(100, 0, 300, 300);
        assert_eq!(ws.len(), 3);
        assert!(ws.iter().all(|w| w.width() == 100));
        assert!(ws.iter().all(|w| w.phase == Phase::Measure));
    }

    #[test]
    fn width_larger_than_phases_still_splits() {
        let ws = drive(10_000, 500, 3000, 4000);
        let spans: Vec<(u64, u64, Phase)> = ws
            .iter()
            .map(|w| (w.start_cycle, w.end_cycle, w.phase))
            .collect();
        assert_eq!(
            spans,
            vec![
                (0, 500, Phase::Warmup),
                (500, 3500, Phase::Measure),
                (3500, 4000, Phase::Drain),
            ]
        );
    }

    #[test]
    fn counters_land_in_their_window() {
        let mut w = Windower::new(10, 2, 0, 100);
        let mut sink = Capture::default();
        for c in 0..20u64 {
            if c < 10 {
                w.on_inject(5);
            } else {
                w.on_eject(true, 1, 12, 3, 5, 12);
            }
            w.end_cycle(c, 7, 3, &mut sink);
        }
        w.finish(20, 0, 0, &mut sink);
        assert_eq!(sink.windows.len(), 2);
        let (a, b) = (&sink.windows[0], &sink.windows[1]);
        assert_eq!(a.injected_packets, 10);
        assert_eq!(a.injected_flits, 50);
        assert_eq!(a.ejected_packets, 0);
        assert!((a.injection_rate() - 1.0).abs() < 1e-12);
        assert_eq!(a.buffered_flits, 7);
        assert_eq!(a.live_packets, 3);
        assert_eq!(b.ejected_packets, 10);
        assert_eq!(b.ejected_flits, 50);
        assert_eq!(b.cache.packets, 10);
        assert_eq!(b.memory.packets, 0);
        assert_eq!(b.groups[1].packets, 10);
        assert_eq!(b.groups[0].packets, 0);
        assert!((b.mean_latency() - 12.0).abs() < 1e-12);
        assert!((b.ejection_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_run_emits_nothing() {
        assert!(drive(100, 0, 100, 0).is_empty());
    }
}
