//! A minimal, dependency-free JSON value: enough to emit and re-read the
//! telemetry artifact schema.
//!
//! The vendored `serde` is marker-traits only (no derive, no
//! serialization), so the JSON-lines artifacts are written and parsed by
//! hand through this module. It supports the full JSON data model except
//! for exotic number forms (all numbers are `f64`; integers up to 2^53
//! round-trip exactly) and `\uXXXX` escapes outside the BMP (surrogate
//! pairs are rejected rather than combined — the schema only emits ASCII
//! keys and numbers).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep sorted order (`BTreeMap`) so emission
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers, integral or not.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral numeric content (rejects non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write_num(f, *n),
            Value::Str(s) => write_str(f, s),
            Value::Arr(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null so artifacts stay parseable.
        f.write_str("null")
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        write!(f, "{}", n as i64)
    } else {
        // {:?} prints the shortest representation that round-trips.
        write!(f, "{n:?}")
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse one JSON document. Returns an error message (with byte offset)
/// on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_deterministic_and_round_trips() {
        let v = Value::obj([
            ("zeta", Value::from(1u64)),
            ("alpha", Value::Arr(vec![Value::from(0.25), Value::Null])),
            ("name", Value::from("win\"dow\n")),
            ("ok", Value::Bool(true)),
        ]);
        let s = v.to_string();
        // BTreeMap keys come out sorted
        assert_eq!(
            s,
            r#"{"alpha":[0.25,null],"name":"win\"dow\n","ok":true,"zeta":1}"#
        );
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Value::from(20_969_780u64).to_string(), "20969780");
        assert_eq!(Value::from(0.5).to_string(), "0.5");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 3, "b": [1, 2.5], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(
            v.get("b").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.get("b").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("d"), None);
        assert_eq!(Value::from(2.5).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nested_round_trip() {
        let s =
            r#"{"meta":{"mesh":[8,8],"seed":42},"rows":[{"i":0,"rate":0.02},{"i":1,"rate":0.04}]}"#;
        let v = parse(s).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(
            v.get("meta").unwrap().get("seed").unwrap().as_u64(),
            Some(42)
        );
    }
}
