//! Spatial heatmap of a 2-D mesh run: per-link flit traversals, per-VC
//! buffer-occupancy cycle integrals, and per-router stall counters
//! (DESIGN.md §12).
//!
//! The OBM objective exists because contention concentrates unevenly
//! across the mesh; scalar aggregates cannot show *where*. A
//! [`HeatmapRecord`] is filled by the simulator (when a probe is
//! attached) through small `on_*` bookkeeping calls and closed with
//! [`HeatmapRecord::finalize`], after which the sum of its per-link
//! counts equals `NetworkStats.link_flit_traversals` exactly — the
//! conservation law pinned by the determinism suite.
//!
//! Port numbering matches `noc-sim`: 0 = north (row − 1), 1 = south
//! (row + 1), 2 = west (col − 1), 3 = east (col + 1). Link slots for
//! edge ports with no neighbour exist in the vectors but stay zero, so a
//! `rows × cols` mesh carries `2·(rows·(cols−1) + cols·(rows−1))`
//! non-trivial directed links.

/// North output port (towards row − 1).
pub const PORT_NORTH: usize = 0;
/// South output port (towards row + 1).
pub const PORT_SOUTH: usize = 1;
/// West output port (towards col − 1).
pub const PORT_WEST: usize = 2;
/// East output port (towards col + 1).
pub const PORT_EAST: usize = 3;
/// Number of inter-router ports per router.
pub const MESH_PORTS: usize = 4;

/// One directed inter-router link and its traversal count, as yielded by
/// [`HeatmapRecord::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlits {
    /// Source tile of the link.
    pub tile: usize,
    /// Output port at the source tile (one of the `PORT_*` constants).
    pub port: usize,
    /// Destination tile of the link.
    pub to: usize,
    /// Flits that traversed the link.
    pub flits: u64,
}

/// Spatial counters for one simulation run, delivered once at end of run
/// through [`Probe::on_heatmap`](crate::probe::Probe::on_heatmap).
///
/// Counts cover **all** phases (warm-up, measure, drain) so that the
/// link-flit total reconciles with the run-wide
/// `NetworkStats.link_flit_traversals`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatmapRecord {
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Virtual channels per input port (both classes).
    pub total_vcs: usize,
    /// Final simulated cycle, set by [`finalize`](Self::finalize).
    pub cycles: u64,
    /// Flit traversals per directed link, indexed `tile * 4 + port`.
    /// Edge slots (no neighbour in that direction) stay 0.
    pub link_flits: Vec<u64>,
    /// Buffer-occupancy cycle integrals per `(router, vc)`, indexed
    /// `router * total_vcs + vc` and aggregated over the router's input
    /// ports: each buffered flit contributes one unit per cycle it sat in
    /// an input buffer. Filled by [`finalize`](Self::finalize).
    pub vc_occupancy: Vec<u64>,
    /// Per-router cycles a switch-allocated head flit sat blocked on zero
    /// downstream credits.
    pub credit_stalls: Vec<u64>,
    /// Per-router cycles a routed head flit found no free downstream VC.
    pub vc_stalls: Vec<u64>,
    /// Per-router cycles an occupied input VC was skipped because the
    /// crossbar input was already claimed this cycle. This is an
    /// arbitration-pressure proxy and an upper bound: the scan also skips
    /// VCs whose front flit is still in the router pipeline.
    pub switch_stalls: Vec<u64>,
    // Running occupancy state: each buffered flit subtracts its buffer
    // cycle from the ledger and bumps `pending`; popping adds the pop
    // cycle back. `finalize` closes still-buffered flits at end-of-run.
    ledger: Vec<i64>,
    pending: Vec<u32>,
}

impl HeatmapRecord {
    /// A zeroed heatmap for a `rows × cols` mesh with `total_vcs` VCs per
    /// input port.
    pub fn new(rows: usize, cols: usize, total_vcs: usize) -> Self {
        let n = rows * cols;
        HeatmapRecord {
            rows,
            cols,
            total_vcs,
            cycles: 0,
            link_flits: vec![0; n * MESH_PORTS],
            vc_occupancy: vec![0; n * total_vcs],
            credit_stalls: vec![0; n],
            vc_stalls: vec![0; n],
            switch_stalls: vec![0; n],
            ledger: vec![0; n * total_vcs],
            pending: vec![0; n * total_vcs],
        }
    }

    /// Number of directed inter-router links in the mesh:
    /// `2·(rows·(cols−1) + cols·(rows−1))`.
    pub fn num_links(&self) -> usize {
        2 * (self.rows * (self.cols - 1) + self.cols * (self.rows - 1))
    }

    /// Neighbour of `tile` through `port`, if the mesh has one.
    pub fn neighbor_of(&self, tile: usize, port: usize) -> Option<usize> {
        let (row, col) = (tile / self.cols, tile % self.cols);
        match port {
            PORT_NORTH if row > 0 => Some(tile - self.cols),
            PORT_SOUTH if row + 1 < self.rows => Some(tile + self.cols),
            PORT_WEST if col > 0 => Some(tile - 1),
            PORT_EAST if col + 1 < self.cols => Some(tile + 1),
            _ => None,
        }
    }

    /// Record one flit leaving `tile` through inter-router output `port`.
    #[inline]
    pub fn on_link_traversal(&mut self, tile: usize, port: usize) {
        self.link_flits[tile * MESH_PORTS + port] += 1;
    }

    /// Record a flit entering an input buffer of `router` on VC `vc` at
    /// `cycle`.
    #[inline]
    pub fn on_buffer(&mut self, router: usize, vc: usize, cycle: u64) {
        let slot = router * self.total_vcs + vc;
        self.ledger[slot] -= cycle as i64;
        self.pending[slot] += 1;
    }

    /// Record a flit leaving an input buffer of `router` on VC `vc` at
    /// `cycle`.
    #[inline]
    pub fn on_pop(&mut self, router: usize, vc: usize, cycle: u64) {
        let slot = router * self.total_vcs + vc;
        self.ledger[slot] += cycle as i64;
        self.pending[slot] -= 1;
    }

    /// Record a credit stall at `router` (switch-allocated head, zero
    /// downstream credits).
    #[inline]
    pub fn on_credit_stall(&mut self, router: usize) {
        self.credit_stalls[router] += 1;
    }

    /// Record a VC-allocation stall at `router` (routed head, no free
    /// downstream VC in its class partition).
    #[inline]
    pub fn on_vc_stall(&mut self, router: usize) {
        self.vc_stalls[router] += 1;
    }

    /// Record a switch skip at `router` (occupied VC passed over because
    /// the crossbar input was already claimed).
    #[inline]
    pub fn on_switch_stall(&mut self, router: usize) {
        self.switch_stalls[router] += 1;
    }

    /// Close the occupancy ledgers at `end_cycle` (the run's final
    /// cycle): flits still buffered contribute up to end-of-run, and the
    /// integrals become available in [`vc_occupancy`](Self::vc_occupancy).
    pub fn finalize(&mut self, end_cycle: u64) {
        self.cycles = end_cycle;
        for slot in 0..self.ledger.len() {
            let closed = self.ledger[slot] + self.pending[slot] as i64 * end_cycle as i64;
            self.vc_occupancy[slot] = closed.max(0) as u64;
            self.ledger[slot] = closed;
            self.pending[slot] = 0;
        }
    }

    /// Total flit traversals across every link. After
    /// [`finalize`](Self::finalize) this equals the run's
    /// `NetworkStats.link_flit_traversals`.
    pub fn total_link_flits(&self) -> u64 {
        self.link_flits.iter().sum()
    }

    /// Occupancy integral summed over VCs for `router`.
    pub fn router_occupancy(&self, router: usize) -> u64 {
        self.vc_occupancy[router * self.total_vcs..(router + 1) * self.total_vcs]
            .iter()
            .sum()
    }

    /// The existing directed links in deterministic order: ascending tile,
    /// then port order north, south, west, east. Edge slots are skipped,
    /// so exactly [`num_links`](Self::num_links) items are yielded.
    pub fn links(&self) -> impl Iterator<Item = LinkFlits> + '_ {
        (0..self.rows * self.cols).flat_map(move |tile| {
            (0..MESH_PORTS).filter_map(move |port| {
                self.neighbor_of(tile, port).map(|to| LinkFlits {
                    tile,
                    port,
                    to,
                    flits: self.link_flits[tile * MESH_PORTS + port],
                })
            })
        })
    }

    /// Render the mesh as ASCII art with one decile digit per directed
    /// link (`9` = the hottest link, `.` = completely idle).
    ///
    /// Router rows look like `o-ab-o`: `a` is the eastbound link leaving
    /// the left router, `b` the westbound link leaving the right one.
    /// Between router rows, the `ab` pair under each router gives its
    /// southbound link (`a`) and the lower router's northbound link (`b`).
    pub fn ascii_mesh(&self) -> String {
        let max = self.link_flits.iter().copied().max().unwrap_or(0);
        let digit = |count: u64| -> char {
            if count == 0 {
                '.'
            } else {
                let d = (count * 10 / max.max(1)).min(9);
                char::from_digit(d as u32, 10).unwrap_or('9')
            }
        };
        let at = |tile: usize, port: usize| self.link_flits[tile * MESH_PORTS + port];
        let mut out = String::new();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let tile = row * self.cols + col;
                out.push('o');
                if col + 1 < self.cols {
                    out.push('-');
                    out.push(digit(at(tile, PORT_EAST)));
                    out.push(digit(at(tile + 1, PORT_WEST)));
                    out.push('-');
                }
            }
            out.push('\n');
            if row + 1 < self.rows {
                for col in 0..self.cols {
                    let tile = row * self.cols + col;
                    out.push(digit(at(tile, PORT_SOUTH)));
                    out.push(digit(at(tile + self.cols, PORT_NORTH)));
                    if col + 1 < self.cols {
                        out.push_str("   ");
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_count_formula_matches_enumeration() {
        for (rows, cols) in [(1, 1), (2, 2), (3, 4), (8, 8)] {
            let h = HeatmapRecord::new(rows, cols, 6);
            assert_eq!(h.links().count(), h.num_links());
        }
    }

    #[test]
    fn links_are_yielded_in_deterministic_order_without_edges() {
        let h = HeatmapRecord::new(2, 2, 2);
        let got: Vec<(usize, usize, usize)> = h.links().map(|l| (l.tile, l.port, l.to)).collect();
        assert_eq!(
            got,
            vec![
                (0, PORT_SOUTH, 2),
                (0, PORT_EAST, 1),
                (1, PORT_SOUTH, 3),
                (1, PORT_WEST, 0),
                (2, PORT_NORTH, 0),
                (2, PORT_EAST, 3),
                (3, PORT_NORTH, 1),
                (3, PORT_WEST, 2),
            ]
        );
    }

    #[test]
    fn occupancy_ledger_integrates_residency() {
        let mut h = HeatmapRecord::new(1, 2, 2);
        // Flit buffered at router 0 vc 1 from cycle 10 to 14 → 4 cycles.
        h.on_buffer(0, 1, 10);
        h.on_pop(0, 1, 14);
        // Flit buffered at router 1 vc 0 at cycle 20, never popped;
        // finalize at 25 closes it at 5 cycles.
        h.on_buffer(1, 0, 20);
        h.finalize(25);
        assert_eq!(h.cycles, 25);
        assert_eq!(h.vc_occupancy, vec![0, 4, 5, 0]);
        assert_eq!(h.router_occupancy(0), 4);
        assert_eq!(h.router_occupancy(1), 5);
    }

    #[test]
    fn traversals_and_stalls_accumulate() {
        let mut h = HeatmapRecord::new(2, 2, 2);
        h.on_link_traversal(0, PORT_EAST);
        h.on_link_traversal(0, PORT_EAST);
        h.on_link_traversal(3, PORT_NORTH);
        h.on_credit_stall(1);
        h.on_vc_stall(1);
        h.on_switch_stall(2);
        assert_eq!(h.total_link_flits(), 3);
        assert_eq!(h.link_flits[PORT_EAST], 2);
        assert_eq!(h.credit_stalls, vec![0, 1, 0, 0]);
        assert_eq!(h.vc_stalls, vec![0, 1, 0, 0]);
        assert_eq!(h.switch_stalls, vec![0, 0, 1, 0]);
    }

    #[test]
    fn ascii_mesh_shape_and_deciles() {
        let mut h = HeatmapRecord::new(2, 2, 2);
        for _ in 0..10 {
            h.on_link_traversal(0, PORT_EAST);
        }
        for _ in 0..5 {
            h.on_link_traversal(1, PORT_WEST);
        }
        h.on_link_traversal(0, PORT_SOUTH);
        let art = h.ascii_mesh();
        // Row 0: east link is the max (digit 9), west link at 5/10 → 5.
        // Gap row: south link of tile 0 is 1/10 → 1, rest idle.
        assert_eq!(art, "o-95-o\n1.   ..\no-..-o\n");
    }

    #[test]
    fn ascii_mesh_all_idle_renders_dots() {
        let h = HeatmapRecord::new(1, 3, 2);
        assert_eq!(h.ascii_mesh(), "o-..-o-..-o\n");
    }
}
