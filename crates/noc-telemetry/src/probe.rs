//! The `Probe`/`Sink` trait pair.
//!
//! Instrumented code (the simulator hot loop, the solvers) talks to a
//! [`Probe`]: it checks [`Probe::is_enabled`] once up front and, when
//! enabled, delivers finished [`WindowRecord`]s and [`SolverEvent`]s.
//! Storage backends implement the simpler [`Sink`] (one `record` method);
//! a blanket impl turns every `Sink` into a `Probe`.

use crate::heatmap::HeatmapRecord;
use crate::histogram::{FlowSummary, PacketRecord};
use crate::solver::SolverEvent;
use crate::window::{ProfileRecord, WindowRecord};

/// A telemetry record, as delivered to a [`Sink`].
///
/// The window variant dominates the sizes of the per-window records;
/// boxing it would put an allocation on every delivered window, which
/// the probe contract forbids on the instrumented hot path. The
/// end-of-run flow/heatmap records are delivered once per run, so their
/// size is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A finished simulation window.
    Window(WindowRecord),
    /// A solver-side event.
    Solver(SolverEvent),
    /// One delivered packet's lifecycle (opt-in via
    /// [`Probe::wants_packets`]).
    Packet(PacketRecord),
    /// End-of-run latency decomposition per class/group.
    Flow(FlowSummary),
    /// End-of-run spatial heatmap.
    Heatmap(HeatmapRecord),
    /// Wall-clock phase profile for one finished window (opt-in via
    /// [`Probe::wants_profile`]; nondeterministic by nature).
    Profile(ProfileRecord),
}

/// Instrumentation interface invoked by the simulator and the solvers.
///
/// The contract for instrumented code:
///
/// 1. call [`Probe::is_enabled`] before doing telemetry-only bookkeeping
///    (window accumulation, record allocation) so a disabled probe costs
///    nothing on the hot path;
/// 2. never let the probe influence semantics — a fixed seed must produce
///    a bit-identical result whatever the probe (pinned by
///    `tests/sim_determinism.rs`).
pub trait Probe {
    /// Whether this probe wants records at all. `false` lets instrumented
    /// code skip all telemetry bookkeeping (the [`NoopSink`] fast path).
    fn is_enabled(&self) -> bool {
        true
    }

    /// A simulation window finished (its end cycle was reached, or a
    /// phase boundary / end of run truncated it).
    fn on_window(&mut self, _record: &WindowRecord) {}

    /// A solver emitted an event.
    fn on_solver_event(&mut self, _event: &SolverEvent) {}

    /// Whether the probe wants one [`PacketRecord`] per delivered packet.
    /// Per-packet streams are large; flow/heatmap aggregates are always
    /// delivered to enabled probes, so this defaults to `false`.
    fn wants_packets(&self) -> bool {
        false
    }

    /// A packet was delivered (only when [`wants_packets`]
    /// [`Probe::wants_packets`] returns `true`). Records arrive in
    /// delivery order, batched at the end of each cycle.
    fn on_packet(&mut self, _record: &PacketRecord) {}

    /// The end-of-run latency decomposition (delivered once, before
    /// [`on_heatmap`](Probe::on_heatmap)).
    fn on_flow(&mut self, _summary: &FlowSummary) {}

    /// The end-of-run spatial heatmap (delivered once, finalized).
    fn on_heatmap(&mut self, _heatmap: &HeatmapRecord) {}

    /// Whether the probe wants wall-clock phase profiles. Profiles carry
    /// nondeterministic nanosecond timings, so they are opt-in and never
    /// recorded unless this returns `true`.
    fn wants_profile(&self) -> bool {
        false
    }

    /// A window's wall-clock phase profile finished (only when
    /// [`wants_profile`](Probe::wants_profile) returns `true`).
    fn on_profile(&mut self, _record: &ProfileRecord) {}
}

/// A consumer of finished telemetry records (storage backends).
///
/// Implement this instead of [`Probe`] when the backend treats windows
/// and solver events uniformly; the blanket impl forwards both probe
/// callbacks here.
pub trait Sink {
    /// Consume one record. Records arrive in emission order.
    fn record(&mut self, record: &Record);

    /// See [`Probe::is_enabled`].
    fn is_enabled(&self) -> bool {
        true
    }

    /// See [`Probe::wants_packets`].
    fn wants_packets(&self) -> bool {
        false
    }

    /// See [`Probe::wants_profile`].
    fn wants_profile(&self) -> bool {
        false
    }
}

impl<S: Sink> Probe for S {
    fn is_enabled(&self) -> bool {
        Sink::is_enabled(self)
    }

    fn on_window(&mut self, record: &WindowRecord) {
        self.record(&Record::Window(record.clone()));
    }

    fn on_solver_event(&mut self, event: &SolverEvent) {
        self.record(&Record::Solver(event.clone()));
    }

    fn wants_packets(&self) -> bool {
        Sink::wants_packets(self)
    }

    fn on_packet(&mut self, record: &PacketRecord) {
        self.record(&Record::Packet(*record));
    }

    fn on_flow(&mut self, summary: &FlowSummary) {
        self.record(&Record::Flow(summary.clone()));
    }

    fn on_heatmap(&mut self, heatmap: &HeatmapRecord) {
        self.record(&Record::Heatmap(heatmap.clone()));
    }

    fn wants_profile(&self) -> bool {
        Sink::wants_profile(self)
    }

    fn on_profile(&mut self, record: &ProfileRecord) {
        self.record(&Record::Profile(*record));
    }
}

/// The no-op default: reports itself disabled and discards everything.
///
/// `Network::run` and `Mapper::map` route through this sink, so the
/// telemetry-off path stays allocation-free and bit-identical to the
/// pre-telemetry simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&mut self, _record: &Record) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{Phase, WindowRecord};

    struct Counter {
        windows: usize,
        events: usize,
        other: usize,
    }

    impl Sink for Counter {
        fn record(&mut self, record: &Record) {
            match record {
                Record::Window(_) => self.windows += 1,
                Record::Solver(_) => self.events += 1,
                _ => self.other += 1,
            }
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let mut noop = NoopSink;
        let probe: &mut dyn Probe = &mut noop;
        assert!(!probe.is_enabled());
        probe.on_window(&WindowRecord::empty(0, 0, 8, Phase::Warmup, 1));
        probe.on_solver_event(&SolverEvent::EvalDelta {
            edits: 1,
            objective: 1.0,
            delta: 0.0,
        });
    }

    #[test]
    fn sinks_are_probes() {
        let mut c = Counter {
            windows: 0,
            events: 0,
            other: 0,
        };
        {
            let probe: &mut dyn Probe = &mut c;
            assert!(probe.is_enabled());
            probe.on_window(&WindowRecord::empty(0, 0, 8, Phase::Measure, 1));
            probe.on_solver_event(&SolverEvent::EvalDelta {
                edits: 1,
                objective: 2.0,
                delta: -0.5,
            });
            probe.on_solver_event(&SolverEvent::EvalDelta {
                edits: 2,
                objective: 1.5,
                delta: -0.5,
            });
        }
        assert_eq!((c.windows, c.events, c.other), (1, 2, 0));
    }

    #[test]
    fn flow_and_heatmap_forward_through_blanket_impl() {
        let mut c = Counter {
            windows: 0,
            events: 0,
            other: 0,
        };
        {
            let probe: &mut dyn Probe = &mut c;
            // Opt-in hooks default off even for enabled sinks.
            assert!(!probe.wants_packets());
            assert!(!probe.wants_profile());
            probe.on_flow(&crate::histogram::FlowSummary::new(1));
            probe.on_heatmap(&crate::heatmap::HeatmapRecord::new(2, 2, 2));
        }
        assert_eq!((c.windows, c.events, c.other), (0, 0, 2));
    }
}
