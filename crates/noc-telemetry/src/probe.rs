//! The `Probe`/`Sink` trait pair.
//!
//! Instrumented code (the simulator hot loop, the solvers) talks to a
//! [`Probe`]: it checks [`Probe::is_enabled`] once up front and, when
//! enabled, delivers finished [`WindowRecord`]s and [`SolverEvent`]s.
//! Storage backends implement the simpler [`Sink`] (one `record` method);
//! a blanket impl turns every `Sink` into a `Probe`.

use crate::solver::SolverEvent;
use crate::window::WindowRecord;

/// A telemetry record, as delivered to a [`Sink`].
///
/// The window variant dominates the size; boxing it would put an
/// allocation on every delivered window, which the probe contract
/// forbids on the instrumented hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A finished simulation window.
    Window(WindowRecord),
    /// A solver-side event.
    Solver(SolverEvent),
}

/// Instrumentation interface invoked by the simulator and the solvers.
///
/// The contract for instrumented code:
///
/// 1. call [`Probe::is_enabled`] before doing telemetry-only bookkeeping
///    (window accumulation, record allocation) so a disabled probe costs
///    nothing on the hot path;
/// 2. never let the probe influence semantics — a fixed seed must produce
///    a bit-identical result whatever the probe (pinned by
///    `tests/sim_determinism.rs`).
pub trait Probe {
    /// Whether this probe wants records at all. `false` lets instrumented
    /// code skip all telemetry bookkeeping (the [`NoopSink`] fast path).
    fn is_enabled(&self) -> bool {
        true
    }

    /// A simulation window finished (its end cycle was reached, or a
    /// phase boundary / end of run truncated it).
    fn on_window(&mut self, _record: &WindowRecord) {}

    /// A solver emitted an event.
    fn on_solver_event(&mut self, _event: &SolverEvent) {}
}

/// A consumer of finished telemetry records (storage backends).
///
/// Implement this instead of [`Probe`] when the backend treats windows
/// and solver events uniformly; the blanket impl forwards both probe
/// callbacks here.
pub trait Sink {
    /// Consume one record. Records arrive in emission order.
    fn record(&mut self, record: &Record);

    /// See [`Probe::is_enabled`].
    fn is_enabled(&self) -> bool {
        true
    }
}

impl<S: Sink> Probe for S {
    fn is_enabled(&self) -> bool {
        Sink::is_enabled(self)
    }

    fn on_window(&mut self, record: &WindowRecord) {
        self.record(&Record::Window(record.clone()));
    }

    fn on_solver_event(&mut self, event: &SolverEvent) {
        self.record(&Record::Solver(event.clone()));
    }
}

/// The no-op default: reports itself disabled and discards everything.
///
/// `Network::run` and `Mapper::map` route through this sink, so the
/// telemetry-off path stays allocation-free and bit-identical to the
/// pre-telemetry simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&mut self, _record: &Record) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{Phase, WindowRecord};

    struct Counter {
        windows: usize,
        events: usize,
    }

    impl Sink for Counter {
        fn record(&mut self, record: &Record) {
            match record {
                Record::Window(_) => self.windows += 1,
                Record::Solver(_) => self.events += 1,
            }
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let mut noop = NoopSink;
        let probe: &mut dyn Probe = &mut noop;
        assert!(!probe.is_enabled());
        probe.on_window(&WindowRecord::empty(0, 0, 8, Phase::Warmup, 1));
        probe.on_solver_event(&SolverEvent::EvalDelta {
            edits: 1,
            objective: 1.0,
            delta: 0.0,
        });
    }

    #[test]
    fn sinks_are_probes() {
        let mut c = Counter {
            windows: 0,
            events: 0,
        };
        {
            let probe: &mut dyn Probe = &mut c;
            assert!(probe.is_enabled());
            probe.on_window(&WindowRecord::empty(0, 0, 8, Phase::Measure, 1));
            probe.on_solver_event(&SolverEvent::EvalDelta {
                edits: 1,
                objective: 2.0,
                delta: -0.5,
            });
            probe.on_solver_event(&SolverEvent::EvalDelta {
                edits: 2,
                objective: 1.5,
                delta: -0.5,
            });
        }
        assert_eq!((c.windows, c.events), (1, 2));
    }
}
