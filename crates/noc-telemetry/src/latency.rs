//! The latency accumulator/histogram shared by end-of-run reports
//! (`noc-sim::stats::SimReport`) and windowed telemetry ([`WindowRecord`]).
//!
//! [`WindowRecord`]: crate::window::WindowRecord

/// Histogram geometry: `NUM_BUCKETS` buckets of `BUCKET_WIDTH` cycles,
/// with the last bucket collecting the overflow tail.
const NUM_BUCKETS: usize = 64;
const BUCKET_WIDTH: u64 = 2;

/// Latency accumulator for one bucket (group, class, source or window).
///
/// `PartialEq` compares every counter bit-for-bit (including the f64
/// sums), which is exactly what the determinism regression tests need:
/// two runs with the same seed must produce accumulators that compare
/// equal under `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyAccum {
    pub packets: u64,
    pub total_latency: f64,
    pub total_hops: u64,
    pub total_flits: u64,
    /// Flit-hops (flits × hops), the dynamic-energy proxy.
    pub flit_hops: u64,
    /// Sum over packets of (latency − ideal)/hops, for the td_q estimate.
    queue_excess_per_hop: f64,
    routed_packets: u64,
    /// Latency histogram (2-cycle buckets, overflow in the last).
    histogram: Vec<u64>,
}

impl Default for LatencyAccum {
    fn default() -> Self {
        LatencyAccum {
            packets: 0,
            total_latency: 0.0,
            total_hops: 0,
            total_flits: 0,
            flit_hops: 0,
            queue_excess_per_hop: 0.0,
            routed_packets: 0,
            histogram: vec![0; NUM_BUCKETS],
        }
    }
}

impl LatencyAccum {
    /// Record a delivered packet.
    pub fn record(&mut self, latency: u64, hops: u32, flits: u16, ideal: u64) {
        let bucket = ((latency / BUCKET_WIDTH) as usize).min(NUM_BUCKETS - 1);
        self.histogram[bucket] += 1;
        self.packets += 1;
        self.total_latency += latency as f64;
        self.total_hops += hops as u64;
        self.total_flits += flits as u64;
        self.flit_hops += flits as u64 * hops as u64;
        if hops > 0 {
            self.queue_excess_per_hop += (latency.saturating_sub(ideal)) as f64 / hops as f64;
            self.routed_packets += 1;
        }
    }

    /// Average packet latency in cycles.
    pub fn apl(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_latency / self.packets as f64
        }
    }

    /// Mean per-hop queueing latency (the measured `td_q`).
    pub fn mean_td_q(&self) -> f64 {
        if self.routed_packets == 0 {
            0.0
        } else {
            self.queue_excess_per_hop / self.routed_packets as f64
        }
    }

    /// Mean hops per packet.
    pub fn mean_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.packets as f64
        }
    }

    /// Latency percentile (0 < q ≤ 1) from the histogram, as the upper
    /// edge of the bucket containing the q-quantile (2-cycle resolution;
    /// the overflow bucket reports its lower edge). Returns 0 for an
    /// empty accumulator or an out-of-range `q`.
    pub fn percentile(&self, q: f64) -> f64 {
        if !(0.0..=1.0).contains(&q) || self.packets == 0 {
            return 0.0;
        }
        let target = (q * self.packets as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &count) in self.histogram.iter().enumerate() {
            acc += count;
            if acc >= target {
                return ((i as u64 + 1) * BUCKET_WIDTH) as f64;
            }
        }
        (NUM_BUCKETS as u64 * BUCKET_WIDTH) as f64
    }

    /// Fold `other` into `self` (all counters and the histogram). The sum
    /// order of the f64 fields is `self += other`, so merging in a fixed
    /// order is deterministic.
    pub fn merge(&mut self, other: &LatencyAccum) {
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
        self.packets += other.packets;
        self.total_latency += other.total_latency;
        self.total_hops += other.total_hops;
        self.total_flits += other.total_flits;
        self.flit_hops += other.flit_hops;
        self.queue_excess_per_hop += other.queue_excess_per_hop;
        self.routed_packets += other.routed_packets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_math() {
        let mut a = LatencyAccum::default();
        a.record(10, 2, 5, 9); // 1 excess over 2 hops = 0.5/hop
        a.record(20, 4, 1, 20); // 0 excess
        assert_eq!(a.packets, 2);
        assert!((a.apl() - 15.0).abs() < 1e-12);
        assert!((a.mean_td_q() - 0.25).abs() < 1e-12);
        assert!((a.mean_hops() - 3.0).abs() < 1e-12);
        assert_eq!(a.flit_hops, 10 + 4);
    }

    #[test]
    fn zero_hop_packets_do_not_pollute_tdq() {
        let mut a = LatencyAccum::default();
        a.record(0, 0, 1, 0);
        assert_eq!(a.mean_td_q(), 0.0);
        assert_eq!(a.apl(), 0.0);
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut a = LatencyAccum::default();
        for lat in [4u64, 4, 4, 4, 4, 4, 4, 4, 4, 40] {
            a.record(lat, 1, 1, lat);
        }
        // p50 sits in the 4-cycle bucket ([4,6) → upper edge 6); p99 in the
        // 40-cycle bucket ([40,42) → 42).
        assert_eq!(a.percentile(0.5), 6.0);
        assert_eq!(a.percentile(0.99), 42.0);
        assert_eq!(a.percentile(1.0), 42.0);
        // overflow latencies land in the last bucket
        let mut b = LatencyAccum::default();
        b.record(10_000, 1, 1, 10_000);
        assert_eq!(b.percentile(0.5), 128.0);
    }

    #[test]
    fn out_of_range_quantile_is_zero() {
        let mut a = LatencyAccum::default();
        a.record(4, 1, 1, 4);
        assert_eq!(a.percentile(-0.1), 0.0);
        assert_eq!(a.percentile(1.5), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = LatencyAccum::default();
        a.record(10, 2, 5, 9);
        let mut b = LatencyAccum::default();
        b.record(20, 4, 1, 20);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.packets, 2);
        assert!((ab.apl() - 15.0).abs() < 1e-12);
        assert_eq!(ab.flit_hops, a.flit_hops + b.flit_hops);
    }
}
