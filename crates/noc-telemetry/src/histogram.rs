//! Exact-quantile latency histograms and per-packet latency
//! decomposition (DESIGN.md §12).
//!
//! [`LatencyAccum`](crate::latency::LatencyAccum) trades resolution for a
//! fixed footprint (2-cycle buckets, overflow tail), which is right for
//! per-window accumulators but wrong for tail analysis: its
//! `percentile()` reports bucket edges, not observed latencies. This
//! module keeps the **exact** multiset of observed latencies in a sparse
//! count map, so [`LatencyHistogram::quantile`] reconstructs the true
//! nearest-rank quantile — the value a sorted array of the raw per-packet
//! latencies would yield — while [`LatencyHistogram::log2_buckets`]
//! offers a compact log-bucketed summary for export. Distinct latency
//! values are few (a handful of hop/length combinations plus a queueing
//! tail), so the sparse map stays small even for multi-million-packet
//! runs.
//!
//! [`PacketRecord`] carries one delivered packet's lifecycle stamps; its
//! derived components satisfy the decomposition identity
//!
//! ```text
//! source_queue + in_network + serialization = latency
//! ```
//!
//! exactly, per packet (pinned by `tests/sim_determinism.rs`).
//! [`FlowAccum`]/[`FlowSummary`] aggregate those components per traffic
//! class and per application group.

use std::collections::BTreeMap;

/// Sparse exact latency histogram: per-value counts plus a running total.
///
/// `PartialEq` compares the full count map, so two seeded runs must
/// produce histograms that compare equal under `==` (the determinism
/// tests rely on it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

/// One bucket of the log2-compressed export view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Bucket {
    /// Smallest latency in the bucket (inclusive).
    pub lo: u64,
    /// Largest latency in the bucket (inclusive).
    pub hi: u64,
    /// Packets whose latency fell in `[lo, hi]`.
    pub count: u64,
}

impl LatencyHistogram {
    /// Record one observed latency.
    pub fn record(&mut self, latency: u64) {
        *self.counts.entry(latency).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded latency.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean recorded latency (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        sum / self.total as f64
    }

    /// Exact nearest-rank quantile for `0 < q ≤ 1`: the value at index
    /// `⌈q·N⌉ - 1` of the sorted latency multiset — the smallest recorded
    /// value whose cumulative count reaches rank `⌈q·N⌉`. `q ≤ 0` yields
    /// the minimum; `None` iff the histogram is empty or `q` is NaN or
    /// above 1.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 || q.is_nan() || q > 1.0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (&v, &c) in &other.counts {
            *self.counts.entry(v).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Record `count` observations of `latency` at once (the bulk form
    /// `noc-metrics` uses to rebuild a histogram from its exported
    /// sparse pairs).
    pub fn record_n(&mut self, latency: u64, count: u64) {
        if count > 0 {
            *self.counts.entry(latency).or_insert(0) += count;
            self.total += count;
        }
    }

    /// Log2-compressed view for compact export: bucket 0 holds latency 0,
    /// bucket `b ≥ 1` holds `[2^(b-1), 2^b)`. Empty buckets are omitted;
    /// `lo`/`hi` report the actually-observed extrema inside each bucket,
    /// so the view never widens the data.
    pub fn log2_buckets(&self) -> Vec<Log2Bucket> {
        let mut out: Vec<Log2Bucket> = Vec::new();
        let mut cur: Option<(u32, Log2Bucket)> = None;
        for (&v, &c) in &self.counts {
            let b = if v == 0 { 0 } else { 64 - (v.leading_zeros()) };
            match cur.as_mut() {
                Some((bucket, agg)) if *bucket == b => {
                    agg.hi = v;
                    agg.count += c;
                }
                _ => {
                    if let Some((_, done)) = cur.take() {
                        out.push(done);
                    }
                    cur = Some((
                        b,
                        Log2Bucket {
                            lo: v,
                            hi: v,
                            count: c,
                        },
                    ));
                }
            }
        }
        if let Some((_, done)) = cur {
            out.push(done);
        }
        out
    }

    /// The raw `(latency, count)` pairs in ascending latency order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

/// Lifecycle record of one delivered packet, as stamped by the simulator
/// when a probe is attached.
///
/// The four stamps split the packet's life at its observable transitions:
/// creation at the source NI (`enqueue_cycle`), the head flit entering
/// the router's local input port (`inject_cycle`), the head flit ejecting
/// at the destination (`head_eject_cycle`), and the tail flit ejecting
/// (`tail_eject_cycle`). Zero-hop local packets (the Eq. (2) exception)
/// carry all four stamps equal and decompose to all-zero components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Source tile index.
    pub src: usize,
    /// Destination tile index.
    pub dst: usize,
    /// `true` for the cache class, `false` for memory.
    pub cache: bool,
    /// Application group.
    pub group: usize,
    /// Length in flits.
    pub flits: u16,
    /// Hop count of the route (0 for local packets).
    pub hops: u32,
    /// Cycle the packet was created at the source NI.
    pub enqueue_cycle: u64,
    /// Cycle the head flit entered the router's local input port.
    pub inject_cycle: u64,
    /// Cycle the head flit ejected at the destination.
    pub head_eject_cycle: u64,
    /// Cycle the tail flit ejected at the destination.
    pub tail_eject_cycle: u64,
    /// Whether the packet was created during the measurement window.
    pub measured: bool,
}

impl PacketRecord {
    /// Cycles spent queued at the source NI before the head flit entered
    /// the network.
    pub fn source_queue(&self) -> u64 {
        self.inject_cycle - self.enqueue_cycle
    }

    /// Cycles the head flit spent traversing the network (pipeline, links
    /// and in-network queueing). Zero for local packets.
    pub fn in_network(&self) -> u64 {
        self.head_eject_cycle - self.inject_cycle
    }

    /// Serialization tail: cycles from head ejection through tail
    /// ejection, inclusive. 1 for a delivered single-flit packet, 0 for a
    /// zero-hop local packet (which never serializes onto a link).
    pub fn serialization(&self) -> u64 {
        if self.hops == 0 {
            0
        } else {
            self.tail_eject_cycle - self.head_eject_cycle + 1
        }
    }

    /// The packet latency as the simulator records it: `tail_eject −
    /// enqueue + 1` for routed packets, 0 for zero-hop local packets.
    /// Always exactly `source_queue() + in_network() + serialization()`.
    pub fn latency(&self) -> u64 {
        if self.hops == 0 {
            0
        } else {
            self.tail_eject_cycle - self.enqueue_cycle + 1
        }
    }
}

/// Decomposed latency totals plus an exact histogram, for one traffic
/// class or application group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowAccum {
    /// Packets recorded.
    pub packets: u64,
    /// Σ source-NI queueing cycles.
    pub source_queue: u64,
    /// Σ in-network head-traversal cycles.
    pub in_network: u64,
    /// Σ serialization cycles.
    pub serialization: u64,
    /// Exact histogram of the total per-packet latencies.
    pub histogram: LatencyHistogram,
}

impl FlowAccum {
    /// Record a delivered packet.
    pub fn record(&mut self, rec: &PacketRecord) {
        self.packets += 1;
        self.source_queue += rec.source_queue();
        self.in_network += rec.in_network();
        self.serialization += rec.serialization();
        self.histogram.record(rec.latency());
    }

    /// Mean source-queue cycles per packet.
    pub fn mean_source_queue(&self) -> f64 {
        self.mean_of(self.source_queue)
    }

    /// Mean in-network cycles per packet.
    pub fn mean_in_network(&self) -> f64 {
        self.mean_of(self.in_network)
    }

    /// Mean serialization cycles per packet.
    pub fn mean_serialization(&self) -> f64 {
        self.mean_of(self.serialization)
    }

    fn mean_of(&self, total: u64) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            total as f64 / self.packets as f64
        }
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &FlowAccum) {
        self.packets += other.packets;
        self.source_queue += other.source_queue;
        self.in_network += other.in_network;
        self.serialization += other.serialization;
        self.histogram.merge(&other.histogram);
    }
}

/// End-of-run flow summary delivered once through
/// [`Probe::on_flow`](crate::probe::Probe::on_flow).
///
/// Covers **measured** packets only (warm-up and drain traffic excluded),
/// so its totals reconcile with the end-of-run `SimReport`: the summed
/// histogram totals equal the report's delivered-packet count, and the
/// decomposition components sum to the report's total latency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowSummary {
    /// Cache-class packets.
    pub cache: FlowAccum,
    /// Memory-class packets.
    pub memory: FlowAccum,
    /// Per-application-group packets.
    pub groups: Vec<FlowAccum>,
}

impl FlowSummary {
    /// A fresh all-zero summary with `groups` application slots.
    pub fn new(groups: usize) -> Self {
        FlowSummary {
            cache: FlowAccum::default(),
            memory: FlowAccum::default(),
            groups: vec![FlowAccum::default(); groups],
        }
    }

    /// Record a delivered packet into its class and group accumulators.
    pub fn record(&mut self, rec: &PacketRecord) {
        if rec.cache {
            self.cache.record(rec);
        } else {
            self.memory.record(rec);
        }
        if let Some(g) = self.groups.get_mut(rec.group) {
            g.record(rec);
        }
    }

    /// Packets recorded across both classes.
    pub fn total_packets(&self) -> u64 {
        self.cache.packets + self.memory.packets
    }

    /// Both classes folded into one accumulator (cache first, then
    /// memory — a fixed order, so the merge is deterministic).
    pub fn merged(&self) -> FlowAccum {
        let mut all = self.cache.clone();
        all.merge(&self.memory);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn quantiles_match_sorted_array_semantics() {
        let mut h = LatencyHistogram::default();
        let mut raw = vec![25u64, 25, 29, 25, 31, 47, 25, 29, 120, 25];
        for &v in &raw {
            h.record(v);
        }
        raw.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(
                h.quantile(q),
                Some(sorted_quantile(&raw, q)),
                "quantile {q} diverged from the sorted array"
            );
        }
        assert_eq!(h.min(), Some(25));
        assert_eq!(h.max(), Some(120));
        assert_eq!(h.total(), 10);
        assert!((h.mean() - raw.iter().sum::<u64>() as f64 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), 0.0);

        let mut one = LatencyHistogram::default();
        one.record(7);
        assert_eq!(one.quantile(0.0), Some(7)); // q ≤ 0 → minimum
        assert_eq!(one.quantile(-3.0), Some(7));
        assert_eq!(one.quantile(1.0), Some(7));
        assert_eq!(one.quantile(1.5), None);
        assert_eq!(one.quantile(f64::NAN), None);
    }

    #[test]
    fn merge_is_count_addition() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for v in [3u64, 5, 5] {
            a.record(v);
        }
        for v in [5u64, 9] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(3, 1), (5, 3), (9, 1)]);
    }

    #[test]
    fn log2_buckets_partition_the_counts() {
        let mut h = LatencyHistogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 100, 100] {
            h.record(v);
        }
        let buckets = h.log2_buckets();
        // 0 | 1 | [2,4) | [4,8) | [8,16) | [64,128)
        let spans: Vec<(u64, u64, u64)> = buckets.iter().map(|b| (b.lo, b.hi, b.count)).collect();
        assert_eq!(
            spans,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 8, 1),
                (100, 100, 2)
            ]
        );
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), h.total());
    }

    #[test]
    fn packet_record_decomposition_identity() {
        let routed = PacketRecord {
            src: 0,
            dst: 5,
            cache: true,
            group: 0,
            flits: 5,
            hops: 3,
            enqueue_cycle: 100,
            inject_cycle: 104,
            head_eject_cycle: 120,
            tail_eject_cycle: 124,
            measured: true,
        };
        assert_eq!(routed.source_queue(), 4);
        assert_eq!(routed.in_network(), 16);
        assert_eq!(routed.serialization(), 5);
        assert_eq!(routed.latency(), 25);
        assert_eq!(
            routed.source_queue() + routed.in_network() + routed.serialization(),
            routed.latency()
        );

        let local = PacketRecord {
            src: 2,
            dst: 2,
            cache: false,
            group: 1,
            flits: 1,
            hops: 0,
            enqueue_cycle: 50,
            inject_cycle: 50,
            head_eject_cycle: 50,
            tail_eject_cycle: 50,
            measured: true,
        };
        assert_eq!(local.latency(), 0);
        assert_eq!(
            local.source_queue() + local.in_network() + local.serialization(),
            0
        );
    }

    #[test]
    fn flow_summary_routes_classes_and_groups() {
        let mut s = FlowSummary::new(2);
        let mut rec = PacketRecord {
            src: 0,
            dst: 5,
            cache: true,
            group: 0,
            flits: 1,
            hops: 2,
            enqueue_cycle: 0,
            inject_cycle: 1,
            head_eject_cycle: 9,
            tail_eject_cycle: 9,
            measured: true,
        };
        s.record(&rec);
        rec.cache = false;
        rec.group = 1;
        s.record(&rec);
        assert_eq!(s.cache.packets, 1);
        assert_eq!(s.memory.packets, 1);
        assert_eq!(s.groups[0].packets, 1);
        assert_eq!(s.groups[1].packets, 1);
        assert_eq!(s.total_packets(), 2);
        let all = s.merged();
        assert_eq!(all.packets, 2);
        assert_eq!(all.source_queue, 2);
        assert_eq!(all.histogram.quantile(1.0), Some(10));
        assert!((all.mean_source_queue() - 1.0).abs() < 1e-12);
        assert!((all.mean_in_network() - 8.0).abs() < 1e-12);
        assert!((all.mean_serialization() - 1.0).abs() < 1e-12);
    }
}
