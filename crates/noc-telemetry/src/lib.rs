//! Windowed time-series telemetry for the cycle-level NoC simulator and
//! the mapping solvers (DESIGN.md §"Telemetry").
//!
//! The paper's validation methodology (Section V: `td_q` staying in the
//! 0–1 cycle band) and the latency-balance evaluation style of related NoC
//! mapping work both need *time-resolved* network state — injection rate,
//! buffered flits, per-class latency — not just end-of-run aggregates.
//! This crate is the measurement layer those consumers share:
//!
//! * [`LatencyAccum`] — the per-bucket latency histogram/accumulator
//!   (moved here from `noc-sim::stats` so windows and reports share one
//!   implementation; `noc-sim` re-exports it for compatibility);
//! * [`WindowRecord`] / [`Windower`] — fixed-width windows over simulated
//!   cycles, truncated at warm-up/measure/drain phase boundaries, each
//!   carrying injection/ejection counts, occupancy samples and per-class /
//!   per-group latency accumulators;
//! * [`LatencyHistogram`] / [`PacketRecord`] / [`FlowSummary`] — exact
//!   sparse latency histograms with true nearest-rank quantiles, and the
//!   per-packet lifecycle decomposition (source-queuing vs in-network vs
//!   serialization) they aggregate (DESIGN.md §12);
//! * [`HeatmapRecord`] — spatial per-link flit traversals, per-VC
//!   buffer-occupancy integrals and per-router stall counters on the
//!   mesh, with an ASCII renderer;
//! * [`ProfileRecord`] — opt-in wall-clock phase profile of the
//!   simulator loop, per window (nondeterministic, never fed back);
//! * [`SolverEvent`] — solver-side events (SSS swap acceptances, SA
//!   temperature checkpoints, incremental-eval deltas);
//! * [`Probe`] / [`Sink`] — the trait pair instrumented code talks to.
//!   [`NoopSink`] is the zero-cost default: instrumented hot loops check
//!   [`Probe::is_enabled`] once and skip all bookkeeping, so a run with
//!   telemetry off is bit-identical to (and as fast as) an
//!   uninstrumented one;
//! * [`RingSink`] — bounded in-memory capture (keeps the newest records);
//! * [`JsonLinesSink`] — machine-readable JSON-lines artifacts, one record
//!   per line, consumed by `scripts/trace_summary.py` and the
//!   `obm experiments trace` CLI subcommand;
//! * [`json`] — the dependency-free JSON emitter/parser behind the
//!   artifact schema (documented in DESIGN.md).
//!
//! # Contract
//!
//! Instrumented code receives a `&mut dyn Probe` and must
//!
//! 1. call [`Probe::is_enabled`] before doing any telemetry-only work, and
//! 2. never let the probe influence simulated or solver semantics: the
//!    same seed must produce the same result whatever the probe.
//!
//! Every [`Sink`] automatically implements [`Probe`] through a blanket
//! impl, so `&mut RingSink` can be passed wherever a probe is expected.

pub mod heatmap;
pub mod histogram;
pub mod json;
pub mod latency;
pub mod probe;
pub mod sink;
pub mod solver;
pub mod window;

pub use heatmap::{HeatmapRecord, LinkFlits};
pub use histogram::{FlowAccum, FlowSummary, LatencyHistogram, Log2Bucket, PacketRecord};
pub use latency::LatencyAccum;
pub use probe::{NoopSink, Probe, Record, Sink};
pub use sink::{JsonLinesSink, RingSink};
pub use solver::SolverEvent;
pub use window::{Phase, ProfileRecord, WindowRecord, Windower};
