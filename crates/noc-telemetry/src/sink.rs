//! Bundled sinks: bounded in-memory capture and JSON-lines artifacts.

use std::collections::VecDeque;
use std::io::Write;

use crate::json::Value;
use crate::latency::LatencyAccum;
use crate::probe::{Record, Sink};
use crate::solver::SolverEvent;
use crate::window::WindowRecord;

/// Bounded in-memory capture that keeps the **newest** records.
///
/// When full, recording pushes the oldest record out and counts it as
/// dropped, so a long run with a small ring ends with the tail of the
/// trace — the part post-mortem analysis usually wants.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    records: VecDeque<Record>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (coerced up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            records: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Retained window records, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Window(w) => Some(w),
            Record::Solver(_) => None,
        })
    }

    /// Retained solver events, oldest first.
    pub fn solver_events(&self) -> impl Iterator<Item = &SolverEvent> {
        self.records.iter().filter_map(|r| match r {
            Record::Solver(e) => Some(e),
            Record::Window(_) => None,
        })
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the sink, yielding retained records oldest first.
    pub fn into_records(self) -> Vec<Record> {
        self.records.into()
    }
}

impl Sink for RingSink {
    fn record(&mut self, record: &Record) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record.clone());
    }
}

/// Streams records as JSON lines (one object per record per line) to any
/// [`Write`] — the artifact format behind `obm experiments trace`.
///
/// The schema is documented in DESIGN.md; every line carries a `"type"`
/// discriminator (`"window"` or `"solver"`). I/O errors are sticky: the
/// first failure is remembered and later records are discarded, so a full
/// disk cannot panic the simulator mid-run. Check
/// [`error`](JsonLinesSink::error) / [`finish`](JsonLinesSink::finish).
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Write one arbitrary JSON line (used for leading meta records).
    pub fn write_value(&mut self, value: &Value) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{value}") {
            self.error = Some(e);
        } else {
            self.written += 1;
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the writer, or the first I/O error (sticky write
    /// errors take precedence over flush errors).
    pub fn finish(mut self) -> std::io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => {
                self.writer.flush()?;
                Ok(self.writer)
            }
        }
    }
}

impl<W: Write> Sink for JsonLinesSink<W> {
    fn record(&mut self, record: &Record) {
        let value = record.to_json();
        self.write_value(&value);
    }
}

fn accum_to_json(a: &LatencyAccum) -> Value {
    Value::obj([
        ("packets", Value::from(a.packets)),
        ("mean_latency", Value::from(a.apl())),
        ("mean_hops", Value::from(a.mean_hops())),
        ("mean_td_q", Value::from(a.mean_td_q())),
        ("p50", Value::from(a.percentile(0.5))),
        ("p95", Value::from(a.percentile(0.95))),
        ("total_flits", Value::from(a.total_flits)),
    ])
}

impl WindowRecord {
    /// The JSON-lines representation of this window (schema in DESIGN.md).
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("type", Value::from("window")),
            ("index", Value::from(self.index)),
            ("start_cycle", Value::from(self.start_cycle)),
            ("end_cycle", Value::from(self.end_cycle)),
            ("phase", Value::from(self.phase.name())),
            ("injected_packets", Value::from(self.injected_packets)),
            ("injected_flits", Value::from(self.injected_flits)),
            ("ejected_packets", Value::from(self.ejected_packets)),
            ("ejected_flits", Value::from(self.ejected_flits)),
            ("buffered_flits", Value::from(self.buffered_flits)),
            ("live_packets", Value::from(self.live_packets)),
            ("injection_rate", Value::from(self.injection_rate())),
            ("ejection_rate", Value::from(self.ejection_rate())),
            ("mean_latency", Value::from(self.mean_latency())),
            ("cache", accum_to_json(&self.cache)),
            ("memory", accum_to_json(&self.memory)),
            (
                "groups",
                Value::Arr(self.groups.iter().map(accum_to_json).collect()),
            ),
        ])
    }
}

impl SolverEvent {
    /// The JSON-lines representation of this event (schema in DESIGN.md).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("type", Value::from("solver")),
            ("kind", Value::from(self.kind())),
            ("objective", Value::from(self.objective())),
        ];
        match *self {
            SolverEvent::SwapAccepted {
                window_start,
                step,
                delta,
                ..
            } => {
                pairs.push(("window_start", Value::from(window_start)));
                pairs.push(("step", Value::from(step)));
                pairs.push(("delta", Value::from(delta)));
            }
            SolverEvent::TemperatureStep {
                iteration,
                temperature,
                accepted_since_last,
                ..
            } => {
                pairs.push(("iteration", Value::from(iteration)));
                pairs.push(("temperature", Value::from(temperature)));
                pairs.push(("accepted_since_last", Value::from(accepted_since_last)));
            }
            SolverEvent::EvalDelta { edits, delta, .. } => {
                pairs.push(("edits", Value::from(edits)));
                pairs.push(("delta", Value::from(delta)));
            }
            SolverEvent::WorkerStarted {
                task,
                ref algo,
                seed,
                ..
            } => {
                pairs.push(("task", Value::from(task)));
                pairs.push(("algo", Value::from(algo.as_str())));
                pairs.push(("seed", Value::from(seed)));
            }
            SolverEvent::IncumbentImproved { task, .. } => {
                pairs.push(("task", Value::from(task)));
            }
            SolverEvent::WorkerPruned {
                task, incumbent, ..
            } => {
                pairs.push(("task", Value::from(task)));
                pairs.push(("incumbent", Value::from(incumbent)));
            }
        }
        Value::obj(pairs)
    }
}

impl Record {
    /// The JSON-lines representation of this record.
    pub fn to_json(&self) -> Value {
        match self {
            Record::Window(w) => w.to_json(),
            Record::Solver(e) => e.to_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::window::Phase;

    fn window(i: u64) -> Record {
        Record::Window(WindowRecord::empty(
            i,
            i * 10,
            (i + 1) * 10,
            Phase::Measure,
            2,
        ))
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = RingSink::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(&window(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring.windows().map(|w| w.index).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.into_records().len(), 3);
    }

    #[test]
    fn ring_separates_windows_and_events() {
        let mut ring = RingSink::new(8);
        ring.record(&window(0));
        ring.record(&Record::Solver(SolverEvent::EvalDelta {
            edits: 1,
            objective: 5.0,
            delta: -0.5,
        }));
        assert_eq!(ring.windows().count(), 1);
        assert_eq!(ring.solver_events().count(), 1);
        assert_eq!(ring.records().count(), 2);
    }

    #[test]
    fn portfolio_events_serialize_with_task_and_null_infinite_incumbent() {
        let v = SolverEvent::WorkerStarted {
            task: 3,
            algo: "SSS".to_string(),
            seed: 9,
            incumbent: f64::INFINITY,
        }
        .to_json();
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("worker_started")
        );
        assert_eq!(v.get("task").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("algo").and_then(Value::as_str), Some("SSS"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(9));
        // +inf incumbent (no finished task yet) serializes as null.
        assert!(v.to_string().contains("\"objective\":null"));

        let v = SolverEvent::IncumbentImproved {
            task: 1,
            objective: 9.25,
        }
        .to_json();
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("incumbent_improved")
        );
        assert_eq!(v.get("objective").and_then(Value::as_f64), Some(9.25));

        let v = SolverEvent::WorkerPruned {
            task: 2,
            objective: 10.5,
            incumbent: 9.25,
        }
        .to_json();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("worker_pruned"));
        assert_eq!(v.get("incumbent").and_then(Value::as_f64), Some(9.25));
    }

    #[test]
    fn json_lines_round_trip() {
        let mut sink = JsonLinesSink::new(Vec::new());
        let mut w = WindowRecord::empty(0, 500, 1000, Phase::Measure, 1);
        w.injected_packets = 25;
        w.injected_flits = 50;
        w.cache.record(12, 3, 2, 11);
        sink.record(&Record::Window(w));
        sink.record(&Record::Solver(SolverEvent::TemperatureStep {
            iteration: 1000,
            temperature: 0.75,
            objective: 13.5,
            accepted_since_last: 12,
        }));
        assert_eq!(sink.lines_written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);

        let v = json::parse(lines[0]).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("window"));
        assert_eq!(v.get("phase").and_then(Value::as_str), Some("measure"));
        assert_eq!(v.get("injected_packets").and_then(Value::as_u64), Some(25));
        assert_eq!(
            v.get("injection_rate").and_then(Value::as_f64),
            Some(25.0 / 500.0)
        );
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("packets").and_then(Value::as_u64), Some(1));
        assert_eq!(
            cache.get("mean_latency").and_then(Value::as_f64),
            Some(12.0)
        );
        assert_eq!(
            v.get("groups").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );

        let v = json::parse(lines[1]).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("solver"));
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("temperature_step")
        );
        assert_eq!(v.get("iteration").and_then(Value::as_u64), Some(1000));
        assert_eq!(v.get("temperature").and_then(Value::as_f64), Some(0.75));
    }

    #[test]
    fn write_errors_are_sticky_not_panics() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(Broken);
        sink.record(&window(0));
        sink.record(&window(1));
        assert_eq!(sink.lines_written(), 0);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }
}
