//! Bundled sinks: bounded in-memory capture and JSON-lines artifacts.

use std::collections::VecDeque;
use std::io::Write;

use crate::heatmap::HeatmapRecord;
use crate::histogram::{FlowAccum, FlowSummary, PacketRecord};
use crate::json::Value;
use crate::latency::LatencyAccum;
use crate::probe::{Record, Sink};
use crate::solver::SolverEvent;
use crate::window::{ProfileRecord, WindowRecord};

/// Bounded in-memory capture that keeps the **newest** records.
///
/// When full, recording pushes the oldest record out and counts it as
/// dropped, so a long run with a small ring ends with the tail of the
/// trace — the part post-mortem analysis usually wants. Per-packet
/// records and wall-clock profiles are opt-in
/// ([`with_packets`](RingSink::with_packets) /
/// [`with_profile`](RingSink::with_profile)); end-of-run flow and
/// heatmap records always arrive.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    records: VecDeque<Record>,
    dropped: u64,
    want_packets: bool,
    want_profile: bool,
}

impl RingSink {
    /// A ring holding at most `capacity` records (coerced up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            records: VecDeque::with_capacity(capacity),
            dropped: 0,
            want_packets: false,
            want_profile: false,
        }
    }

    /// Opt into one [`PacketRecord`] per delivered packet.
    pub fn with_packets(mut self) -> Self {
        self.want_packets = true;
        self
    }

    /// Opt into wall-clock [`ProfileRecord`]s (nondeterministic).
    pub fn with_profile(mut self) -> Self {
        self.want_profile = true;
        self
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Retained window records, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Window(w) => Some(w),
            _ => None,
        })
    }

    /// Retained solver events, oldest first.
    pub fn solver_events(&self) -> impl Iterator<Item = &SolverEvent> {
        self.records.iter().filter_map(|r| match r {
            Record::Solver(e) => Some(e),
            _ => None,
        })
    }

    /// Retained per-packet records, oldest first.
    pub fn packets(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Packet(p) => Some(p),
            _ => None,
        })
    }

    /// Retained end-of-run flow summaries, oldest first.
    pub fn flow_summaries(&self) -> impl Iterator<Item = &FlowSummary> {
        self.records.iter().filter_map(|r| match r {
            Record::Flow(f) => Some(f),
            _ => None,
        })
    }

    /// Retained end-of-run heatmaps, oldest first.
    pub fn heatmaps(&self) -> impl Iterator<Item = &HeatmapRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Heatmap(h) => Some(h),
            _ => None,
        })
    }

    /// Retained per-window phase profiles, oldest first.
    pub fn profiles(&self) -> impl Iterator<Item = &ProfileRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Profile(p) => Some(p),
            _ => None,
        })
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the sink, yielding retained records oldest first.
    pub fn into_records(self) -> Vec<Record> {
        self.records.into()
    }
}

impl Sink for RingSink {
    fn record(&mut self, record: &Record) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record.clone());
    }

    fn wants_packets(&self) -> bool {
        self.want_packets
    }

    fn wants_profile(&self) -> bool {
        self.want_profile
    }
}

/// Streams records as JSON lines (one object per record per line) to any
/// [`Write`] — the artifact format behind `obm experiments trace`.
///
/// The schema is documented in DESIGN.md; every line carries a `"type"`
/// discriminator (`"window"`, `"solver"`, `"packet"`, `"flow"`,
/// `"heatmap"` or `"profile"`). I/O errors are sticky: the
/// first failure is remembered and later records are discarded, so a full
/// disk cannot panic the simulator mid-run. Check
/// [`error`](JsonLinesSink::error) / [`finish`](JsonLinesSink::finish).
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<std::io::Error>,
    want_packets: bool,
    want_profile: bool,
}

impl<W: Write> JsonLinesSink<W> {
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            written: 0,
            error: None,
            want_packets: false,
            want_profile: false,
        }
    }

    /// Opt into one `"packet"` line per delivered packet.
    pub fn with_packets(mut self) -> Self {
        self.want_packets = true;
        self
    }

    /// Opt into `"profile"` lines (nondeterministic wall-clock timings).
    pub fn with_profile(mut self) -> Self {
        self.want_profile = true;
        self
    }

    /// Write one arbitrary JSON line (used for leading meta records).
    pub fn write_value(&mut self, value: &Value) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{value}") {
            self.error = Some(e);
        } else {
            self.written += 1;
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the writer, or the first I/O error (sticky write
    /// errors take precedence over flush errors).
    pub fn finish(mut self) -> std::io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => {
                self.writer.flush()?;
                Ok(self.writer)
            }
        }
    }
}

impl<W: Write> Sink for JsonLinesSink<W> {
    fn record(&mut self, record: &Record) {
        let value = record.to_json();
        self.write_value(&value);
    }

    fn wants_packets(&self) -> bool {
        self.want_packets
    }

    fn wants_profile(&self) -> bool {
        self.want_profile
    }
}

fn accum_to_json(a: &LatencyAccum) -> Value {
    Value::obj([
        ("packets", Value::from(a.packets)),
        ("mean_latency", Value::from(a.apl())),
        ("mean_hops", Value::from(a.mean_hops())),
        ("mean_td_q", Value::from(a.mean_td_q())),
        ("p50", Value::from(a.percentile(0.5))),
        ("p95", Value::from(a.percentile(0.95))),
        ("total_flits", Value::from(a.total_flits)),
    ])
}

impl WindowRecord {
    /// The JSON-lines representation of this window (schema in DESIGN.md).
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("type", Value::from("window")),
            ("index", Value::from(self.index)),
            ("start_cycle", Value::from(self.start_cycle)),
            ("end_cycle", Value::from(self.end_cycle)),
            ("phase", Value::from(self.phase.name())),
            ("injected_packets", Value::from(self.injected_packets)),
            ("injected_flits", Value::from(self.injected_flits)),
            ("ejected_packets", Value::from(self.ejected_packets)),
            ("ejected_flits", Value::from(self.ejected_flits)),
            ("buffered_flits", Value::from(self.buffered_flits)),
            ("live_packets", Value::from(self.live_packets)),
            ("injection_rate", Value::from(self.injection_rate())),
            ("ejection_rate", Value::from(self.ejection_rate())),
            ("mean_latency", Value::from(self.mean_latency())),
            ("cache", accum_to_json(&self.cache)),
            ("memory", accum_to_json(&self.memory)),
            (
                "groups",
                Value::Arr(self.groups.iter().map(accum_to_json).collect()),
            ),
        ])
    }
}

impl SolverEvent {
    /// The JSON-lines representation of this event (schema in DESIGN.md).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("type", Value::from("solver")),
            ("kind", Value::from(self.kind())),
            ("objective", Value::from(self.objective())),
        ];
        match *self {
            SolverEvent::SwapAccepted {
                window_start,
                step,
                delta,
                ..
            } => {
                pairs.push(("window_start", Value::from(window_start)));
                pairs.push(("step", Value::from(step)));
                pairs.push(("delta", Value::from(delta)));
            }
            SolverEvent::TemperatureStep {
                iteration,
                temperature,
                accepted_since_last,
                ..
            } => {
                pairs.push(("iteration", Value::from(iteration)));
                pairs.push(("temperature", Value::from(temperature)));
                pairs.push(("accepted_since_last", Value::from(accepted_since_last)));
            }
            SolverEvent::EvalDelta { edits, delta, .. } => {
                pairs.push(("edits", Value::from(edits)));
                pairs.push(("delta", Value::from(delta)));
            }
            SolverEvent::WorkerStarted {
                task,
                ref algo,
                seed,
                ..
            } => {
                pairs.push(("task", Value::from(task)));
                pairs.push(("algo", Value::from(algo.as_str())));
                pairs.push(("seed", Value::from(seed)));
            }
            SolverEvent::IncumbentImproved { task, .. } => {
                pairs.push(("task", Value::from(task)));
            }
            SolverEvent::WorkerPruned {
                task, incumbent, ..
            } => {
                pairs.push(("task", Value::from(task)));
                pairs.push(("incumbent", Value::from(incumbent)));
            }
        }
        Value::obj(pairs)
    }
}

fn quantile_json(accum: &FlowAccum, q: f64) -> Value {
    accum
        .histogram
        .quantile(q)
        .map(Value::from)
        .unwrap_or(Value::Null)
}

fn flow_accum_to_json(a: &FlowAccum) -> Value {
    Value::obj([
        ("packets", Value::from(a.packets)),
        ("mean_latency", Value::from(a.histogram.mean())),
        ("p50", quantile_json(a, 0.5)),
        ("p95", quantile_json(a, 0.95)),
        ("p99", quantile_json(a, 0.99)),
        (
            "max",
            a.histogram.max().map(Value::from).unwrap_or(Value::Null),
        ),
        ("mean_source_queue", Value::from(a.mean_source_queue())),
        ("mean_in_network", Value::from(a.mean_in_network())),
        ("mean_serialization", Value::from(a.mean_serialization())),
        (
            "log2_buckets",
            Value::Arr(
                a.histogram
                    .log2_buckets()
                    .iter()
                    .map(|b| {
                        Value::Arr(vec![
                            Value::from(b.lo),
                            Value::from(b.hi),
                            Value::from(b.count),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl PacketRecord {
    /// The JSON-lines representation of this packet (schema in DESIGN.md).
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("type", Value::from("packet")),
            ("src", Value::from(self.src)),
            ("dst", Value::from(self.dst)),
            (
                "class",
                Value::from(if self.cache { "cache" } else { "memory" }),
            ),
            ("group", Value::from(self.group)),
            ("flits", Value::from(self.flits as u64)),
            ("hops", Value::from(self.hops as u64)),
            ("enqueue_cycle", Value::from(self.enqueue_cycle)),
            ("inject_cycle", Value::from(self.inject_cycle)),
            ("head_eject_cycle", Value::from(self.head_eject_cycle)),
            ("tail_eject_cycle", Value::from(self.tail_eject_cycle)),
            ("source_queue", Value::from(self.source_queue())),
            ("in_network", Value::from(self.in_network())),
            ("serialization", Value::from(self.serialization())),
            ("latency", Value::from(self.latency())),
            ("measured", Value::Bool(self.measured)),
        ])
    }
}

impl FlowSummary {
    /// The JSON-lines representation of this summary (schema in
    /// DESIGN.md).
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("type", Value::from("flow")),
            ("cache", flow_accum_to_json(&self.cache)),
            ("memory", flow_accum_to_json(&self.memory)),
            (
                "groups",
                Value::Arr(self.groups.iter().map(flow_accum_to_json).collect()),
            ),
        ])
    }
}

impl HeatmapRecord {
    /// The JSON-lines representation of this heatmap (schema in
    /// DESIGN.md). `total_link_flits` is carried explicitly so consumers
    /// can arithmetic-check conservation against the report's
    /// `link_flit_traversals` without summing `links`.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("type", Value::from("heatmap")),
            ("rows", Value::from(self.rows)),
            ("cols", Value::from(self.cols)),
            ("total_vcs", Value::from(self.total_vcs)),
            ("cycles", Value::from(self.cycles)),
            ("total_link_flits", Value::from(self.total_link_flits())),
            (
                "links",
                Value::Arr(
                    self.links()
                        .map(|l| {
                            Value::obj([
                                ("tile", Value::from(l.tile)),
                                ("port", Value::from(l.port)),
                                ("to", Value::from(l.to)),
                                ("flits", Value::from(l.flits)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "vc_occupancy",
                Value::Arr(self.vc_occupancy.iter().map(|&v| Value::from(v)).collect()),
            ),
            (
                "credit_stalls",
                Value::Arr(self.credit_stalls.iter().map(|&v| Value::from(v)).collect()),
            ),
            (
                "vc_stalls",
                Value::Arr(self.vc_stalls.iter().map(|&v| Value::from(v)).collect()),
            ),
            (
                "switch_stalls",
                Value::Arr(self.switch_stalls.iter().map(|&v| Value::from(v)).collect()),
            ),
        ])
    }
}

impl ProfileRecord {
    /// The JSON-lines representation of this profile (schema in
    /// DESIGN.md). Wall-clock values: nondeterministic across runs.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("type", Value::from("profile")),
            ("window_index", Value::from(self.window_index)),
            ("start_cycle", Value::from(self.start_cycle)),
            ("end_cycle", Value::from(self.end_cycle)),
            ("generate_nanos", Value::from(self.generate_nanos)),
            ("inject_nanos", Value::from(self.inject_nanos)),
            ("route_nanos", Value::from(self.route_nanos)),
            ("traverse_nanos", Value::from(self.traverse_nanos)),
            ("telemetry_nanos", Value::from(self.telemetry_nanos)),
            ("total_nanos", Value::from(self.total_nanos())),
        ])
    }
}

impl Record {
    /// The JSON-lines representation of this record.
    pub fn to_json(&self) -> Value {
        match self {
            Record::Window(w) => w.to_json(),
            Record::Solver(e) => e.to_json(),
            Record::Packet(p) => p.to_json(),
            Record::Flow(f) => f.to_json(),
            Record::Heatmap(h) => h.to_json(),
            Record::Profile(p) => p.to_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::window::Phase;

    fn window(i: u64) -> Record {
        Record::Window(WindowRecord::empty(
            i,
            i * 10,
            (i + 1) * 10,
            Phase::Measure,
            2,
        ))
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = RingSink::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(&window(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring.windows().map(|w| w.index).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.into_records().len(), 3);
    }

    #[test]
    fn ring_separates_windows_and_events() {
        let mut ring = RingSink::new(8);
        ring.record(&window(0));
        ring.record(&Record::Solver(SolverEvent::EvalDelta {
            edits: 1,
            objective: 5.0,
            delta: -0.5,
        }));
        assert_eq!(ring.windows().count(), 1);
        assert_eq!(ring.solver_events().count(), 1);
        assert_eq!(ring.records().count(), 2);
    }

    #[test]
    fn portfolio_events_serialize_with_task_and_null_infinite_incumbent() {
        let v = SolverEvent::WorkerStarted {
            task: 3,
            algo: "SSS".to_string(),
            seed: 9,
            incumbent: f64::INFINITY,
        }
        .to_json();
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("worker_started")
        );
        assert_eq!(v.get("task").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("algo").and_then(Value::as_str), Some("SSS"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(9));
        // +inf incumbent (no finished task yet) serializes as null.
        assert!(v.to_string().contains("\"objective\":null"));

        let v = SolverEvent::IncumbentImproved {
            task: 1,
            objective: 9.25,
        }
        .to_json();
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("incumbent_improved")
        );
        assert_eq!(v.get("objective").and_then(Value::as_f64), Some(9.25));

        let v = SolverEvent::WorkerPruned {
            task: 2,
            objective: 10.5,
            incumbent: 9.25,
        }
        .to_json();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("worker_pruned"));
        assert_eq!(v.get("incumbent").and_then(Value::as_f64), Some(9.25));
    }

    #[test]
    fn json_lines_round_trip() {
        let mut sink = JsonLinesSink::new(Vec::new());
        let mut w = WindowRecord::empty(0, 500, 1000, Phase::Measure, 1);
        w.injected_packets = 25;
        w.injected_flits = 50;
        w.cache.record(12, 3, 2, 11);
        sink.record(&Record::Window(w));
        sink.record(&Record::Solver(SolverEvent::TemperatureStep {
            iteration: 1000,
            temperature: 0.75,
            objective: 13.5,
            accepted_since_last: 12,
        }));
        assert_eq!(sink.lines_written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);

        let v = json::parse(lines[0]).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("window"));
        assert_eq!(v.get("phase").and_then(Value::as_str), Some("measure"));
        assert_eq!(v.get("injected_packets").and_then(Value::as_u64), Some(25));
        assert_eq!(
            v.get("injection_rate").and_then(Value::as_f64),
            Some(25.0 / 500.0)
        );
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("packets").and_then(Value::as_u64), Some(1));
        assert_eq!(
            cache.get("mean_latency").and_then(Value::as_f64),
            Some(12.0)
        );
        assert_eq!(
            v.get("groups").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );

        let v = json::parse(lines[1]).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("solver"));
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("temperature_step")
        );
        assert_eq!(v.get("iteration").and_then(Value::as_u64), Some(1000));
        assert_eq!(v.get("temperature").and_then(Value::as_f64), Some(0.75));
    }

    #[test]
    fn ring_opt_ins_and_new_record_accessors() {
        let ring = RingSink::new(4);
        assert!(!Sink::wants_packets(&ring));
        assert!(!Sink::wants_profile(&ring));
        let mut ring = RingSink::new(8).with_packets().with_profile();
        assert!(Sink::wants_packets(&ring));
        assert!(Sink::wants_profile(&ring));

        let pkt = PacketRecord {
            src: 0,
            dst: 3,
            cache: true,
            group: 0,
            flits: 2,
            hops: 2,
            enqueue_cycle: 10,
            inject_cycle: 12,
            head_eject_cycle: 24,
            tail_eject_cycle: 25,
            measured: true,
        };
        let mut flow = FlowSummary::new(1);
        flow.record(&pkt);
        let mut heat = HeatmapRecord::new(2, 2, 2);
        heat.on_link_traversal(0, crate::heatmap::PORT_EAST);
        heat.finalize(100);
        ring.record(&Record::Packet(pkt));
        ring.record(&Record::Flow(flow));
        ring.record(&Record::Heatmap(heat));
        ring.record(&Record::Profile(ProfileRecord {
            window_index: 0,
            start_cycle: 0,
            end_cycle: 100,
            generate_nanos: 1,
            inject_nanos: 2,
            route_nanos: 3,
            traverse_nanos: 4,
            telemetry_nanos: 5,
        }));
        assert_eq!(ring.packets().count(), 1);
        assert_eq!(ring.flow_summaries().count(), 1);
        assert_eq!(ring.heatmaps().count(), 1);
        assert_eq!(ring.profiles().count(), 1);
        assert_eq!(ring.windows().count(), 0);
        assert_eq!(ring.solver_events().count(), 0);
    }

    #[test]
    fn new_record_json_lines_round_trip() {
        let pkt = PacketRecord {
            src: 1,
            dst: 6,
            cache: false,
            group: 1,
            flits: 5,
            hops: 3,
            enqueue_cycle: 100,
            inject_cycle: 104,
            head_eject_cycle: 120,
            tail_eject_cycle: 124,
            measured: true,
        };
        let v = pkt.to_json();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("packet"));
        assert_eq!(v.get("class").and_then(Value::as_str), Some("memory"));
        assert_eq!(v.get("source_queue").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("in_network").and_then(Value::as_u64), Some(16));
        assert_eq!(v.get("serialization").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("latency").and_then(Value::as_u64), Some(25));
        // Round-trips through the parser.
        let parsed = json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.get("latency").and_then(Value::as_u64), Some(25));

        let mut flow = FlowSummary::new(2);
        flow.record(&pkt);
        let v = flow.to_json();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("flow"));
        let mem = v.get("memory").unwrap();
        assert_eq!(mem.get("packets").and_then(Value::as_u64), Some(1));
        assert_eq!(mem.get("p99").and_then(Value::as_u64), Some(25));
        assert_eq!(mem.get("max").and_then(Value::as_u64), Some(25));
        // Empty accumulator serializes null quantiles, not a panic.
        let cache = v.get("cache").unwrap();
        assert!(matches!(cache.get("p99"), Some(Value::Null)));

        let mut heat = HeatmapRecord::new(2, 2, 2);
        heat.on_link_traversal(0, crate::heatmap::PORT_EAST);
        heat.on_link_traversal(0, crate::heatmap::PORT_EAST);
        heat.finalize(50);
        let v = heat.to_json();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("heatmap"));
        assert_eq!(v.get("total_link_flits").and_then(Value::as_u64), Some(2));
        let links = v.get("links").and_then(Value::as_arr).unwrap();
        assert_eq!(links.len(), 8);
        let total: u64 = links
            .iter()
            .map(|l| l.get("flits").and_then(Value::as_u64).unwrap())
            .sum();
        assert_eq!(total, 2);

        let v = ProfileRecord {
            window_index: 3,
            start_cycle: 3000,
            end_cycle: 4000,
            generate_nanos: 10,
            inject_nanos: 20,
            route_nanos: 30,
            traverse_nanos: 40,
            telemetry_nanos: 50,
        }
        .to_json();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("profile"));
        assert_eq!(v.get("total_nanos").and_then(Value::as_u64), Some(150));
    }

    #[test]
    fn write_errors_are_sticky_not_panics() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(Broken);
        sink.record(&window(0));
        sink.record(&window(1));
        assert_eq!(sink.lines_written(), 0);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }
}
