//! Solver-side telemetry events.
//!
//! Emitted through [`Probe::on_solver_event`](crate::probe::Probe) by the
//! mapping algorithms in `obm-core`:
//!
//! * `SortSelectSwap` emits [`SolverEvent::SwapAccepted`] whenever a
//!   window permutation better than the identity is applied;
//! * `SimulatedAnnealing` emits decimated
//!   [`SolverEvent::TemperatureStep`] checkpoints along the cooling
//!   schedule (every step would flood the sink at 200k iterations);
//! * the incremental evaluator emits [`SolverEvent::EvalDelta`] snapshots
//!   tying its running edit count to the exact objective value.

/// One solver event. All variants carry the current objective (the
/// quantity the solver minimises, i.e. the maximum per-application APL)
/// so a sink can reconstruct the descent trajectory without knowing
/// which algorithm produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverEvent {
    /// Sort-Select-Swap accepted a non-identity permutation of a sliding
    /// window of tiles.
    SwapAccepted {
        /// Index (into the sorted tile sequence) of the first tile of the
        /// accepted window.
        window_start: usize,
        /// Sequential acceptance number within this solver run.
        step: u64,
        /// Objective value after applying the permutation.
        objective: f64,
        /// Change in objective produced by the permutation (negative =
        /// improvement).
        delta: f64,
    },
    /// A simulated-annealing cooling checkpoint.
    TemperatureStep {
        /// Iteration index the checkpoint was taken at.
        iteration: u64,
        /// Current temperature.
        temperature: f64,
        /// Objective value of the current (not best) solution.
        objective: f64,
        /// Moves accepted since the previous checkpoint.
        accepted_since_last: u64,
    },
    /// A snapshot from the incremental evaluator: `edits` mutations so
    /// far, and the objective they produced.
    EvalDelta {
        /// Total mutating operations (thread moves, tile swaps, window
        /// permutations) applied to the evaluator so far.
        edits: u64,
        /// Current objective value (max per-application APL).
        objective: f64,
        /// Objective change contributed by the most recent edit batch
        /// (negative = improvement).
        delta: f64,
    },
    /// A portfolio worker started one (algorithm × seed) task.
    WorkerStarted {
        /// Deterministic task rank within the portfolio run.
        task: u64,
        /// Display name of the algorithm ("SSS", "SA", …).
        algo: String,
        /// Seed the task runs with.
        seed: u64,
        /// Shared incumbent objective at start time (`f64::INFINITY` —
        /// serialized as JSON null — when no task has finished yet).
        incumbent: f64,
    },
    /// A finished portfolio task improved the shared incumbent.
    IncumbentImproved {
        /// Deterministic task rank within the portfolio run.
        task: u64,
        /// The new (improved) incumbent objective.
        objective: f64,
    },
    /// A finished portfolio task lost to the incumbent (its result was
    /// discarded by the merge).
    WorkerPruned {
        /// Deterministic task rank within the portfolio run.
        task: u64,
        /// The losing task's objective.
        objective: f64,
        /// The incumbent it lost to.
        incumbent: f64,
    },
}

impl SolverEvent {
    /// Stable snake-case tag used in the JSON-lines artifact schema.
    pub fn kind(&self) -> &'static str {
        match self {
            SolverEvent::SwapAccepted { .. } => "swap_accepted",
            SolverEvent::TemperatureStep { .. } => "temperature_step",
            SolverEvent::EvalDelta { .. } => "eval_delta",
            SolverEvent::WorkerStarted { .. } => "worker_started",
            SolverEvent::IncumbentImproved { .. } => "incumbent_improved",
            SolverEvent::WorkerPruned { .. } => "worker_pruned",
        }
    }

    /// The objective value carried by the event ([`WorkerStarted`]
    /// (SolverEvent::WorkerStarted) carries the incumbent at start time,
    /// which is `f64::INFINITY` before any task finishes).
    pub fn objective(&self) -> f64 {
        match *self {
            SolverEvent::SwapAccepted { objective, .. }
            | SolverEvent::TemperatureStep { objective, .. }
            | SolverEvent::EvalDelta { objective, .. }
            | SolverEvent::IncumbentImproved { objective, .. }
            | SolverEvent::WorkerPruned { objective, .. } => objective,
            SolverEvent::WorkerStarted { incumbent, .. } => incumbent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_objectives() {
        let e = SolverEvent::SwapAccepted {
            window_start: 3,
            step: 1,
            objective: 12.5,
            delta: -0.5,
        };
        assert_eq!(e.kind(), "swap_accepted");
        assert!((e.objective() - 12.5).abs() < 1e-12);
        let e = SolverEvent::TemperatureStep {
            iteration: 100,
            temperature: 0.8,
            objective: 11.0,
            accepted_since_last: 42,
        };
        assert_eq!(e.kind(), "temperature_step");
        let e = SolverEvent::EvalDelta {
            edits: 7,
            objective: 10.0,
            delta: -1.0,
        };
        assert_eq!(e.kind(), "eval_delta");
    }

    #[test]
    fn portfolio_kinds_and_objectives() {
        let e = SolverEvent::WorkerStarted {
            task: 0,
            algo: "SA".to_string(),
            seed: 7,
            incumbent: f64::INFINITY,
        };
        assert_eq!(e.kind(), "worker_started");
        assert!(e.objective().is_infinite());
        let e = SolverEvent::IncumbentImproved {
            task: 1,
            objective: 9.5,
        };
        assert_eq!(e.kind(), "incumbent_improved");
        assert!((e.objective() - 9.5).abs() < 1e-12);
        let e = SolverEvent::WorkerPruned {
            task: 2,
            objective: 10.0,
            incumbent: 9.5,
        };
        assert_eq!(e.kind(), "worker_pruned");
        assert!((e.objective() - 10.0).abs() < 1e-12);
    }
}
