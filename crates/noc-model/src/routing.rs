//! Dimension-order routing.
//!
//! The paper uses deadlock-free XY routing ("dimension-order routing ... to
//! minimize design effort and implementation cost"). A packet first travels
//! along the X dimension (columns) to the destination column, then along the
//! Y dimension (rows). [`route_yx`] is the transposed variant, provided for
//! ablations in the cycle-level simulator.

use crate::geometry::{Mesh, TileId};
use serde::{Deserialize, Serialize};

/// One output direction at a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteDir {
    /// Decreasing row index.
    North,
    /// Increasing row index.
    South,
    /// Decreasing column index.
    West,
    /// Increasing column index.
    East,
    /// Eject to the local tile.
    Local,
}

/// Next-hop decision at tile `here` for a packet destined to `dst`
/// under XY routing.
pub fn route_xy(mesh: &Mesh, here: TileId, dst: TileId) -> RouteDir {
    let h = mesh.coord(here);
    let d = mesh.coord(dst);
    if h.col < d.col {
        RouteDir::East
    } else if h.col > d.col {
        RouteDir::West
    } else if h.row < d.row {
        RouteDir::South
    } else if h.row > d.row {
        RouteDir::North
    } else {
        RouteDir::Local
    }
}

/// Next-hop decision under YX routing (Y dimension first).
pub fn route_yx(mesh: &Mesh, here: TileId, dst: TileId) -> RouteDir {
    let h = mesh.coord(here);
    let d = mesh.coord(dst);
    if h.row < d.row {
        RouteDir::South
    } else if h.row > d.row {
        RouteDir::North
    } else if h.col < d.col {
        RouteDir::East
    } else if h.col > d.col {
        RouteDir::West
    } else {
        RouteDir::Local
    }
}

/// Next-hop decision at tile `here` for a packet destined to `dst` under
/// XY routing on a **torus**: dimension order is preserved, but each
/// dimension travels in whichever direction (possibly through the
/// wraparound link) is shorter, ties broken towards East/South so the
/// decision is deterministic. Every hop reduces the torus distance by
/// one, so path lengths equal
/// [`Topology::Torus.hops`](crate::layout::Topology::hops).
///
/// Note the classic caveat: wraparound links close a cycle per ring, so
/// unlike mesh XY this is *not* deadlock-free for wormhole flow control
/// without a dateline VC policy; the cycle-level simulator uses it for
/// low-load validation runs where cyclic waits do not arise.
pub fn route_xy_torus(mesh: &Mesh, here: TileId, dst: TileId) -> RouteDir {
    let h = mesh.coord(here);
    let d = mesh.coord(dst);
    if h.col != d.col {
        let fwd = (d.col + mesh.cols() - h.col) % mesh.cols();
        if 2 * fwd <= mesh.cols() {
            RouteDir::East
        } else {
            RouteDir::West
        }
    } else if h.row != d.row {
        let fwd = (d.row + mesh.rows() - h.row) % mesh.rows();
        if 2 * fwd <= mesh.rows() {
            RouteDir::South
        } else {
            RouteDir::North
        }
    } else {
        RouteDir::Local
    }
}

/// Torus variant of [`route_yx`]: Y dimension first, each dimension via
/// its shorter (possibly wraparound) direction. See [`route_xy_torus`]
/// for the tie-break and deadlock caveat.
pub fn route_yx_torus(mesh: &Mesh, here: TileId, dst: TileId) -> RouteDir {
    let h = mesh.coord(here);
    let d = mesh.coord(dst);
    if h.row != d.row {
        let fwd = (d.row + mesh.rows() - h.row) % mesh.rows();
        if 2 * fwd <= mesh.rows() {
            RouteDir::South
        } else {
            RouteDir::North
        }
    } else if h.col != d.col {
        let fwd = (d.col + mesh.cols() - h.col) % mesh.cols();
        if 2 * fwd <= mesh.cols() {
            RouteDir::East
        } else {
            RouteDir::West
        }
    } else {
        RouteDir::Local
    }
}

/// Apply a direction to a tile on a torus: wraps around the edges.
///
/// # Panics
/// Panics if `dir` is [`RouteDir::Local`].
pub fn step_torus(mesh: &Mesh, here: TileId, dir: RouteDir) -> TileId {
    let c = mesh.coord(here);
    let (rows, cols) = (mesh.rows(), mesh.cols());
    let next = match dir {
        RouteDir::North => crate::geometry::Coord::new((c.row + rows - 1) % rows, c.col),
        RouteDir::South => crate::geometry::Coord::new((c.row + 1) % rows, c.col),
        RouteDir::West => crate::geometry::Coord::new(c.row, (c.col + cols - 1) % cols),
        RouteDir::East => crate::geometry::Coord::new(c.row, (c.col + 1) % cols),
        RouteDir::Local => panic!("cannot step in the Local direction"),
    };
    mesh.tile(next)
}

/// Apply a direction to a tile, returning the neighbouring tile.
///
/// # Panics
/// Panics if the move would leave the mesh (a routing bug), or if `dir` is
/// [`RouteDir::Local`].
pub fn step(mesh: &Mesh, here: TileId, dir: RouteDir) -> TileId {
    let c = mesh.coord(here);
    let next = match dir {
        RouteDir::North => {
            assert!(c.row > 0, "routed off the north edge");
            crate::geometry::Coord::new(c.row - 1, c.col)
        }
        RouteDir::South => {
            assert!(c.row + 1 < mesh.rows(), "routed off the south edge");
            crate::geometry::Coord::new(c.row + 1, c.col)
        }
        RouteDir::West => {
            assert!(c.col > 0, "routed off the west edge");
            crate::geometry::Coord::new(c.row, c.col - 1)
        }
        RouteDir::East => {
            assert!(c.col + 1 < mesh.cols(), "routed off the east edge");
            crate::geometry::Coord::new(c.row, c.col + 1)
        }
        RouteDir::Local => panic!("cannot step in the Local direction"),
    };
    mesh.tile(next)
}

/// Full YX path from `src` to `dst`, inclusive of both endpoints.
pub fn path_yx(mesh: &Mesh, src: TileId, dst: TileId) -> Vec<TileId> {
    let mut path = Vec::with_capacity(mesh.hops(src, dst) + 1);
    let mut here = src;
    path.push(here);
    loop {
        match route_yx(mesh, here, dst) {
            RouteDir::Local => break,
            dir => {
                here = step(mesh, here, dir);
                path.push(here);
            }
        }
    }
    path
}

/// Full XY path from `src` to `dst`, inclusive of both endpoints.
pub fn path_xy(mesh: &Mesh, src: TileId, dst: TileId) -> Vec<TileId> {
    let mut path = Vec::with_capacity(mesh.hops(src, dst) + 1);
    let mut here = src;
    path.push(here);
    loop {
        match route_xy(mesh, here, dst) {
            RouteDir::Local => break,
            dir => {
                here = step(mesh, here, dir);
                path.push(here);
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    #[test]
    fn xy_goes_x_first() {
        let m = Mesh::square(4);
        let src = m.tile(Coord::new(0, 0));
        let dst = m.tile(Coord::new(2, 3));
        let p = path_xy(&m, src, dst);
        // X first: (0,0)→(0,1)→(0,2)→(0,3)→(1,3)→(2,3)
        let coords: Vec<Coord> = p.iter().map(|&t| m.coord(t)).collect();
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(0, 1),
                Coord::new(0, 2),
                Coord::new(0, 3),
                Coord::new(1, 3),
                Coord::new(2, 3),
            ]
        );
    }

    #[test]
    fn path_length_equals_hops_plus_one() {
        let m = Mesh::square(8);
        for a in m.tiles() {
            for b in m.tiles() {
                assert_eq!(path_xy(&m, a, b).len(), m.hops(a, b) + 1);
            }
        }
    }

    #[test]
    fn yx_path_goes_y_first_and_matches_length() {
        let m = Mesh::square(5);
        for a in m.tiles() {
            for b in m.tiles() {
                let p = path_yx(&m, a, b);
                assert_eq!(p.len(), m.hops(a, b) + 1);
                // Y first: once the path moves in X it stays in X.
                let mut seen_x = false;
                for w in p.windows(2) {
                    let (c0, c1) = (m.coord(w[0]), m.coord(w[1]));
                    let is_x = c0.row == c1.row;
                    if seen_x {
                        assert!(is_x, "X→Y turn in YX path");
                    }
                    seen_x |= is_x;
                }
            }
        }
    }

    #[test]
    fn self_route_is_local() {
        let m = Mesh::square(3);
        for t in m.tiles() {
            assert_eq!(route_xy(&m, t, t), RouteDir::Local);
            assert_eq!(route_yx(&m, t, t), RouteDir::Local);
        }
    }

    #[test]
    fn yx_is_transpose_of_xy() {
        let m = Mesh::square(5);
        for a in m.tiles() {
            for b in m.tiles() {
                let xy = route_xy(&m, a, b);
                let ac = m.coord(a);
                let bc = m.coord(b);
                let at = m.tile(Coord::new(ac.col, ac.row));
                let bt = m.tile(Coord::new(bc.col, bc.row));
                let yx = route_yx(&m, at, bt);
                let expect = match xy {
                    RouteDir::North => RouteDir::West,
                    RouteDir::South => RouteDir::East,
                    RouteDir::West => RouteDir::North,
                    RouteDir::East => RouteDir::South,
                    RouteDir::Local => RouteDir::Local,
                };
                assert_eq!(yx, expect);
            }
        }
    }

    #[test]
    fn torus_routes_walk_minimal_paths() {
        // Following route_{xy,yx}_torus step by step from any source must
        // reach the destination in exactly torus_hops steps.
        for m in [Mesh::square(4), Mesh::new(5, 4), Mesh::new(3, 7)] {
            for a in m.tiles() {
                for b in m.tiles() {
                    for route in [route_xy_torus, route_yx_torus] {
                        let mut here = a;
                        let mut steps = 0usize;
                        while here != b {
                            let dir = route(&m, here, b);
                            assert_ne!(dir, RouteDir::Local);
                            here = step_torus(&m, here, dir);
                            steps += 1;
                            assert!(steps <= m.num_tiles(), "routing loop {a:?}→{b:?}");
                        }
                        assert_eq!(steps, m.torus_hops_impl(a, b), "{a:?}→{b:?}");
                        assert_eq!(route(&m, b, b), RouteDir::Local);
                    }
                }
            }
        }
    }

    #[test]
    fn torus_route_uses_wraparound_when_shorter() {
        // On a 1×8 ring, going from col 0 to col 6 is shorter westwards
        // through the wrap link (2 hops) than eastwards (6 hops).
        let m = Mesh::new(1, 8);
        let a = m.tile(Coord::new(0, 0));
        let b = m.tile(Coord::new(0, 6));
        assert_eq!(route_xy_torus(&m, a, b), RouteDir::West);
        // Exactly half way (col 4): tie broken towards East.
        let c = m.tile(Coord::new(0, 4));
        assert_eq!(route_xy_torus(&m, a, c), RouteDir::East);
    }

    #[test]
    fn torus_route_matches_mesh_route_when_no_wrap_helps() {
        // Between tiles less than half the ring apart in both dimensions,
        // the torus route agrees with plain dimension-order routing.
        let m = Mesh::square(5);
        let a = m.tile(Coord::new(1, 1));
        let b = m.tile(Coord::new(2, 3));
        assert_eq!(route_xy_torus(&m, a, b), route_xy(&m, a, b));
        assert_eq!(route_yx_torus(&m, a, b), route_yx(&m, a, b));
    }

    #[test]
    fn xy_routing_is_deadlock_free_turn_model() {
        // XY routing never takes a Y→X turn: once a packet moves in Y it
        // stays in Y. Verify on all pairs of an 6×6 mesh.
        let m = Mesh::square(6);
        for a in m.tiles() {
            for b in m.tiles() {
                let p = path_xy(&m, a, b);
                let mut seen_y = false;
                for w in p.windows(2) {
                    let (c0, c1) = (m.coord(w[0]), m.coord(w[1]));
                    let is_y = c0.col == c1.col;
                    if seen_y {
                        assert!(is_y, "Y→X turn found: {:?}→{:?}", c0, c1);
                    }
                    seen_y |= is_y;
                }
            }
        }
    }
}
