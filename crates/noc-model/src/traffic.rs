//! Packet classes and formats.
//!
//! Table 2 of the paper: 128-bit links, short 16-bit packets are single-flit
//! (requests, coherence control), long packets carrying a 64-byte cache line
//! plus a head flit are 5 flits (data replies).

use serde::{Deserialize, Serialize};

/// The two traffic classes distinguished by the mapping formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Shared-L2-cache traffic: requests to the address-hashed bank,
    /// checking/forwarding between L1s, and data replies. Either endpoint is
    /// an L2 bank, so destinations are uniform over all tiles.
    Cache,
    /// Memory-controller traffic, forwarded to the nearest controller.
    Memory,
}

/// Physical packet format on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketFormat {
    /// Link width in bits per cycle (Table 2: 128).
    pub link_bits: u32,
    /// Payload of a short control/request packet in bits (16).
    pub short_bits: u32,
    /// Cache-line size in bytes carried by a long packet (64).
    pub line_bytes: u32,
}

impl Default for PacketFormat {
    fn default() -> Self {
        PacketFormat {
            link_bits: 128,
            short_bits: 16,
            line_bytes: 64,
        }
    }
}

impl PacketFormat {
    /// Flits in a short packet. With 16-bit payloads on a 128-bit link this
    /// is a single flit.
    pub fn short_flits(&self) -> u32 {
        self.short_bits.div_ceil(self.link_bits).max(1)
    }

    /// Flits in a long data packet: one head flit plus the data flits
    /// (Table 2: 1 + 512/128 = 5 flits).
    pub fn long_flits(&self) -> u32 {
        1 + (self.line_bytes * 8).div_ceil(self.link_bits)
    }

    /// Serialization latency in cycles of a packet of `flits` flits at one
    /// flit per cycle: the body must follow the head through the ejection
    /// link, i.e. `flits` cycles in total with the head's cycle counted in
    /// the per-hop terms — the paper's `td_s = packet length / bandwidth`.
    pub fn serialization_cycles(&self, flits: u32) -> f64 {
        flits as f64
    }

    /// Mean serialization latency over a traffic mix in which a fraction
    /// `long_fraction` of packets are long data packets.
    pub fn mixed_serialization(&self, long_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&long_fraction));
        (1.0 - long_fraction) * self.serialization_cycles(self.short_flits())
            + long_fraction * self.serialization_cycles(self.long_flits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_flit_counts() {
        let f = PacketFormat::default();
        assert_eq!(f.short_flits(), 1);
        assert_eq!(f.long_flits(), 5);
    }

    #[test]
    fn mixed_serialization_interpolates() {
        let f = PacketFormat::default();
        assert!((f.mixed_serialization(0.0) - 1.0).abs() < 1e-12);
        assert!((f.mixed_serialization(1.0) - 5.0).abs() < 1e-12);
        assert!((f.mixed_serialization(0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wide_link_still_single_flit_minimum() {
        let f = PacketFormat {
            link_bits: 256,
            short_bits: 16,
            line_bytes: 64,
        };
        assert_eq!(f.short_flits(), 1);
        assert_eq!(f.long_flits(), 3);
    }
}
