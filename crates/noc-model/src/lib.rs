//! Analytic model of a mesh-based NoC for chip-multiprocessors.
//!
//! This crate implements the architectural model of Section II of
//! *"Balancing On-Chip Network Latency in Multi-Application Mapping for
//! Chip-Multiprocessors"* (Zhu et al., IPDPS 2014):
//!
//! * a 2-D mesh of tiles, each with a core, a private L1 and a slice of the
//!   distributed shared L2 cache ([`geometry::Mesh`]);
//! * dimension-order (XY) routing ([`routing`]);
//! * the packet service-latency model of Eq. (2),
//!   `TD = H · (td_r + td_w + td_q) + td_s` ([`latency::LatencyParams`]);
//! * address-interleaved L2 bank hashing, which makes cache-packet
//!   destinations uniform over all tiles ([`hashing`]);
//! * memory controllers at the mesh corners with proximity-based forwarding
//!   ([`placement`]);
//! * the per-tile average latency arrays `TC(k)` (Eq. 3) and `TM(k)` (Eq. 4)
//!   consumed by the mapping algorithms ([`latency::TileLatencies`]).
//!
//! Everything here is pure, deterministic math with no I/O; the cycle-level
//! simulator in the `noc-sim` crate validates these closed forms.

#![warn(missing_docs)]

pub mod geometry;
pub mod hashing;
pub mod latency;
pub mod layout;
pub mod loads;
pub mod placement;
pub mod routing;
pub mod traffic;

pub use geometry::{Coord, Mesh, TileId};
pub use latency::{LatencyParams, TileLatencies};
pub use layout::{ChipLayout, PlacementError, Topology};
pub use loads::{LinkLoads, SourceLoad};
pub use placement::MemoryControllers;
pub use routing::{route_xy, route_xy_torus, route_yx, route_yx_torus, RouteDir};
pub use traffic::{PacketClass, PacketFormat};
