//! Mesh geometry: tiles, coordinates and hop distances.
//!
//! The paper numbers tiles `k ∈ [1, N]` with `k = (i−1)·n + j` (Eq. 1) where
//! `i`/`j` are the 1-based row/column. Internally we use 0-based
//! [`TileId`]s in the same row-major order; [`TileId::from_paper`] and
//! [`TileId::to_paper`] convert to the paper's 1-based numbering.

use serde::{Deserialize, Serialize};

/// A tile index in row-major order, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TileId(pub usize);

impl TileId {
    /// Convert from the paper's 1-based tile number (Eq. 1).
    #[inline]
    pub fn from_paper(k: usize) -> Self {
        assert!(k >= 1, "paper tile numbers start at 1");
        TileId(k - 1)
    }

    /// Convert to the paper's 1-based tile number (Eq. 1).
    #[inline]
    pub fn to_paper(self) -> usize {
        self.0 + 1
    }

    /// The raw 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A (row, col) coordinate on the mesh, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// 0-based row (the paper's `i − 1`).
    pub row: usize,
    /// 0-based column (the paper's `j − 1`).
    pub col: usize,
}

impl Coord {
    /// Construct a coordinate.
    #[inline]
    pub fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance to another coordinate (the hop count of any
    /// minimal route on a mesh).
    #[inline]
    pub fn manhattan(self, other: Coord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

/// A rectangular 2-D mesh of `rows × cols` tiles.
///
/// The paper evaluates square `n × n` meshes (8×8 in the evaluation, 4×4 in
/// the Figure 5 example); rectangular meshes are supported for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    rows: usize,
    cols: usize,
}

impl Mesh {
    /// Create a mesh with the given number of rows and columns.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        Mesh { rows, cols }
    }

    /// Create a square `n × n` mesh.
    pub fn square(n: usize) -> Self {
        Mesh::new(n, n)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles `N`.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the mesh is square (`n × n`).
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Coordinate of a tile.
    ///
    /// # Panics
    /// Panics if the tile is out of range.
    #[inline]
    pub fn coord(&self, t: TileId) -> Coord {
        assert!(t.0 < self.num_tiles(), "tile {} out of range", t.0);
        Coord::new(t.0 / self.cols, t.0 % self.cols)
    }

    /// Tile at a coordinate.
    ///
    /// # Panics
    /// Panics if the coordinate is out of range.
    #[inline]
    pub fn tile(&self, c: Coord) -> TileId {
        assert!(c.row < self.rows && c.col < self.cols, "coord out of range");
        TileId(c.row * self.cols + c.col)
    }

    /// Hop count between two tiles under minimal (e.g. XY) routing.
    #[inline]
    pub fn hops(&self, a: TileId, b: TileId) -> usize {
        self.coord(a).manhattan(self.coord(b))
    }

    /// Iterator over all tiles in row-major order.
    pub fn tiles(&self) -> impl ExactSizeIterator<Item = TileId> {
        (0..self.num_tiles()).map(TileId)
    }

    /// The four corner tiles (clockwise from the top-left). For a 1×1 mesh
    /// all four entries are the single tile; degenerate meshes repeat tiles.
    pub fn corners(&self) -> [TileId; 4] {
        [
            self.tile(Coord::new(0, 0)),
            self.tile(Coord::new(0, self.cols - 1)),
            self.tile(Coord::new(self.rows - 1, self.cols - 1)),
            self.tile(Coord::new(self.rows - 1, 0)),
        ]
    }

    /// Neighbours of a tile (up, down, left, right — those that exist).
    pub fn neighbors(&self, t: TileId) -> impl Iterator<Item = TileId> + '_ {
        let c = self.coord(t);
        let mut out = [None; 4];
        if c.row > 0 {
            out[0] = Some(self.tile(Coord::new(c.row - 1, c.col)));
        }
        if c.row + 1 < self.rows {
            out[1] = Some(self.tile(Coord::new(c.row + 1, c.col)));
        }
        if c.col > 0 {
            out[2] = Some(self.tile(Coord::new(c.row, c.col - 1)));
        }
        if c.col + 1 < self.cols {
            out[3] = Some(self.tile(Coord::new(c.row, c.col + 1)));
        }
        out.into_iter().flatten()
    }

    /// Average hop count from tile `k` to *all* tiles including itself —
    /// the `H̄C_k` of Eq. (3). This is the mean cache-packet hop count
    /// because L2 banks are address-interleaved uniformly over tiles.
    pub fn avg_cache_hops(&self, k: TileId) -> f64 {
        let c = self.coord(k);
        let row_sum: usize = (0..self.rows).map(|r| r.abs_diff(c.row)).sum();
        let col_sum: usize = (0..self.cols).map(|j| j.abs_diff(c.col)).sum();
        // Σ_{r,j} (|r−row| + |j−col|) = cols·row_sum + rows·col_sum
        (self.cols * row_sum + self.rows * col_sum) as f64 / self.num_tiles() as f64
    }

    /// Hop count between two tiles on a **torus** of the same dimensions
    /// (wraparound links): per-dimension distance is
    /// `min(|Δ|, size − |Δ|)`. Body of the
    /// [`Topology`](crate::layout::Topology)-parameterized API.
    #[inline]
    pub(crate) fn torus_hops_impl(&self, a: TileId, b: TileId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dr = ca.row.abs_diff(cb.row);
        let dc = ca.col.abs_diff(cb.col);
        dr.min(self.rows - dr) + dc.min(self.cols - dc)
    }

    /// Average torus hop count from tile `k` to all tiles including
    /// itself — the torus analogue of Eq. (3). A torus is
    /// vertex-transitive, so this is the same for every tile: uniform
    /// cache latency by construction. Body of the
    /// [`Topology`](crate::layout::Topology)-parameterized API.
    pub(crate) fn avg_cache_hops_torus_impl(&self, k: TileId) -> f64 {
        let c = self.coord(k);
        let row_sum: usize = (0..self.rows)
            .map(|r| {
                let d = r.abs_diff(c.row);
                d.min(self.rows - d)
            })
            .sum();
        let col_sum: usize = (0..self.cols)
            .map(|j| {
                let d = j.abs_diff(c.col);
                d.min(self.cols - d)
            })
            .sum();
        (self.cols * row_sum + self.rows * col_sum) as f64 / self.num_tiles() as f64
    }

    /// Fraction of cache destinations that require network traversal
    /// (all tiles except the source itself): `(N−1)/N`. Used to weight the
    /// serialization latency, which is only paid when a packet actually
    /// enters the network.
    #[inline]
    pub fn offtile_fraction(&self) -> f64 {
        let n = self.num_tiles() as f64;
        (n - 1.0) / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbering_example() {
        // "the 29-th tile in Figure 1 (where n = 8) is located at the fourth
        // row, fifth column"
        let m = Mesh::square(8);
        let t = TileId::from_paper(29);
        assert_eq!(m.coord(t), Coord::new(3, 4)); // 0-based (4th row, 5th col)
        assert_eq!(t.to_paper(), 29);
    }

    #[test]
    fn roundtrip_tile_coord() {
        let m = Mesh::new(5, 7);
        for t in m.tiles() {
            assert_eq!(m.tile(m.coord(t)), t);
        }
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let m = Mesh::square(6);
        let a = TileId(3);
        let b = TileId(27);
        let c = TileId(35);
        assert_eq!(m.hops(a, b), m.hops(b, a));
        assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
        assert_eq!(m.hops(a, a), 0);
    }

    #[test]
    fn avg_cache_hops_paper_values() {
        // Paper: on the 8×8 mesh, H̄C_1 = 7 for corner tile 1 and
        // H̄C_28 = 4 for central tile 28.
        let m = Mesh::square(8);
        assert!((m.avg_cache_hops(TileId::from_paper(1)) - 7.0).abs() < 1e-12);
        assert!((m.avg_cache_hops(TileId::from_paper(28)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn avg_cache_hops_4x4_values() {
        // Derived by hand for the Figure 5 example: corners 3.0, edges 2.5,
        // center 2.0 hops.
        let m = Mesh::square(4);
        assert!((m.avg_cache_hops(m.tile(Coord::new(0, 0))) - 3.0).abs() < 1e-12);
        assert!((m.avg_cache_hops(m.tile(Coord::new(0, 1))) - 2.5).abs() < 1e-12);
        assert!((m.avg_cache_hops(m.tile(Coord::new(1, 1))) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn corners_are_distinct_on_nontrivial_mesh() {
        let m = Mesh::square(8);
        let cs = m.corners();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(cs[i], cs[j]);
            }
        }
    }

    #[test]
    fn neighbors_counts() {
        let m = Mesh::square(4);
        assert_eq!(m.neighbors(m.tile(Coord::new(0, 0))).count(), 2); // corner
        assert_eq!(m.neighbors(m.tile(Coord::new(0, 1))).count(), 3); // edge
        assert_eq!(m.neighbors(m.tile(Coord::new(1, 1))).count(), 4); // inner
    }

    #[test]
    fn offtile_fraction() {
        let m = Mesh::square(4);
        assert!((m.offtile_fraction() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_mesh_panics() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn torus_hops_wrap() {
        let m = Mesh::square(4);
        let a = m.tile(Coord::new(0, 0));
        let b = m.tile(Coord::new(3, 3));
        assert_eq!(m.hops(a, b), 6);
        assert_eq!(m.torus_hops_impl(a, b), 2); // wrap both dimensions
        assert_eq!(m.torus_hops_impl(a, a), 0);
    }

    #[test]
    fn torus_is_vertex_transitive() {
        let m = Mesh::square(6);
        let first = m.avg_cache_hops_torus_impl(TileId(0));
        for t in m.tiles() {
            assert!((m.avg_cache_hops_torus_impl(t) - first).abs() < 1e-12);
        }
        // and strictly better than the mesh corner
        assert!(first < m.avg_cache_hops(TileId(0)));
    }

    #[test]
    fn rectangular_mesh_geometry() {
        let m = Mesh::new(2, 3);
        assert_eq!(m.num_tiles(), 6);
        assert!(!m.is_square());
        assert_eq!(m.coord(TileId(5)), Coord::new(1, 2));
        assert_eq!(m.hops(TileId(0), TileId(5)), 3);
    }
}
