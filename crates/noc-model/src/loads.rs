//! Analytic link loads and queueing estimates.
//!
//! The paper's latency model treats the per-hop queueing latency `td_q` as
//! a small constant measured from simulation. This module predicts it
//! instead: expected flit load on every directed mesh link under XY
//! routing (cache traffic uniform over destinations, memory traffic to the
//! nearest controller), then a per-link M/D/1-style waiting-time estimate
//! `W = ρ / (2·(1 − ρ))` cycles. The `queueing` experiment checks the
//! prediction against the cycle-level simulator across the load sweep.

use crate::geometry::{Mesh, TileId};
use crate::placement::MemoryControllers;
use crate::routing::{path_xy, route_xy, RouteDir};

/// Directed-link load table: `load[tile][dir]` is the flit rate
/// (flits/cycle) on the link leaving `tile` in direction `dir`
/// (N/S/W/E = 0..4; the local ejection port is not a mesh link).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoads {
    mesh: Mesh,
    load: Vec<[f64; 4]>,
}

fn dir_index(d: RouteDir) -> Option<usize> {
    match d {
        RouteDir::North => Some(0),
        RouteDir::South => Some(1),
        RouteDir::West => Some(2),
        RouteDir::East => Some(3),
        RouteDir::Local => None,
    }
}

/// One traffic source for the load computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceLoad {
    /// Injecting tile.
    pub tile: TileId,
    /// Cache packets per cycle.
    pub cache_rate: f64,
    /// Memory packets per cycle.
    pub mem_rate: f64,
}

impl LinkLoads {
    /// Expected link loads under XY routing for the given sources, with
    /// `flits_per_packet` the mean packet length.
    pub fn compute(
        mesh: &Mesh,
        mcs: &MemoryControllers,
        sources: &[SourceLoad],
        flits_per_packet: f64,
    ) -> Self {
        let n = mesh.num_tiles();
        let mut load = vec![[0.0f64; 4]; n];
        let mut add_path = |src: TileId, dst: TileId, flit_rate: f64| {
            if src == dst {
                return;
            }
            let path = path_xy(mesh, src, dst);
            for w in path.windows(2) {
                let dir = route_xy(mesh, w[0], dst);
                if let Some(d) = dir_index(dir) {
                    load[w[0].index()][d] += flit_rate;
                }
            }
        };
        for s in sources {
            // Cache traffic: uniform over all N tiles (incl. self = no
            // packet).
            let per_dst = s.cache_rate * flits_per_packet / n as f64;
            if per_dst > 0.0 {
                for dst in mesh.tiles() {
                    add_path(s.tile, dst, per_dst);
                }
            }
            // Memory traffic: nearest controller.
            if s.mem_rate > 0.0 {
                let mc = mcs.nearest(mesh, s.tile);
                add_path(s.tile, mc, s.mem_rate * flits_per_packet);
            }
        }
        LinkLoads { mesh: *mesh, load }
    }

    /// Flit rate on the link leaving `tile` towards `dir`.
    ///
    /// # Panics
    /// Panics if `dir` is `Local`.
    pub fn load(&self, tile: TileId, dir: RouteDir) -> f64 {
        self.load[tile.index()][dir_index(dir).expect("mesh link direction")]
    }

    /// The most loaded link's flit rate (the saturation indicator).
    pub fn max_load(&self) -> f64 {
        self.load
            .iter()
            .flat_map(|l| l.iter())
            .cloned()
            .fold(0.0, f64::max)
    }

    /// Mean load over links that exist on the mesh.
    pub fn mean_load(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for t in self.mesh.tiles() {
            for (d, dir) in [
                RouteDir::North,
                RouteDir::South,
                RouteDir::West,
                RouteDir::East,
            ]
            .iter()
            .enumerate()
            {
                if link_exists(&self.mesh, t, *dir) {
                    sum += self.load[t.index()][d];
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// M/D/1-style waiting time of one link: `ρ / (2·(1−ρ))` cycles,
    /// clamped at `ρ = 0.95` to keep the estimate finite near saturation.
    pub fn link_wait(&self, tile: TileId, dir: RouteDir) -> f64 {
        let rho = self.load(tile, dir).min(0.95);
        rho / (2.0 * (1.0 - rho))
    }

    /// Predicted mean per-hop queueing latency over a packet population:
    /// load-weighted average of the per-link waits (each traversing flit
    /// experiences the wait of the link it crosses).
    pub fn mean_td_q(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for t in self.mesh.tiles() {
            for dir in [
                RouteDir::North,
                RouteDir::South,
                RouteDir::West,
                RouteDir::East,
            ] {
                if !link_exists(&self.mesh, t, dir) {
                    continue;
                }
                let rho = self.load(t, dir);
                if rho > 0.0 {
                    weighted += rho * self.link_wait(t, dir);
                    total += rho;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }
}

fn link_exists(mesh: &Mesh, t: TileId, dir: RouteDir) -> bool {
    let c = mesh.coord(t);
    match dir {
        RouteDir::North => c.row > 0,
        RouteDir::South => c.row + 1 < mesh.rows(),
        RouteDir::West => c.col > 0,
        RouteDir::East => c.col + 1 < mesh.cols(),
        RouteDir::Local => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    fn uniform_sources(mesh: &Mesh, rate: f64) -> Vec<SourceLoad> {
        mesh.tiles()
            .map(|t| SourceLoad {
                tile: t,
                cache_rate: rate,
                mem_rate: rate * 0.15,
            })
            .collect()
    }

    #[test]
    fn flit_conservation_total() {
        // Sum of all link loads = Σ over packets of (hops × flit rate):
        // verify against a direct hop-count computation.
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let sources = uniform_sources(&mesh, 0.01);
        let l = LinkLoads::compute(&mesh, &mcs, &sources, 3.0);
        let total_link_load: f64 = (0..16).map(|t| l.load[t].iter().sum::<f64>()).sum();
        let mut expect = 0.0;
        for s in &sources {
            for dst in mesh.tiles() {
                expect += s.cache_rate * 3.0 / 16.0 * mesh.hops(s.tile, dst) as f64;
            }
            let mc = mcs.nearest(&mesh, s.tile);
            expect += s.mem_rate * 3.0 * mesh.hops(s.tile, mc) as f64;
        }
        assert!(
            (total_link_load - expect).abs() < 1e-9,
            "{total_link_load} vs {expect}"
        );
    }

    #[test]
    fn center_links_hotter_than_edge_links() {
        // Uniform cache traffic under XY concentrates on central columns.
        let mesh = Mesh::square(8);
        let mcs = MemoryControllers::corners(&mesh);
        let l = LinkLoads::compute(&mesh, &mcs, &uniform_sources(&mesh, 0.01), 3.0);
        let center = l.load(mesh.tile(Coord::new(3, 3)), RouteDir::East);
        let corner = l.load(mesh.tile(Coord::new(0, 0)), RouteDir::East);
        assert!(center > corner, "center {center} vs corner {corner}");
    }

    #[test]
    fn wait_grows_convexly_with_load() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let w = |rate: f64| {
            LinkLoads::compute(&mesh, &mcs, &uniform_sources(&mesh, rate), 3.0).mean_td_q()
        };
        let w1 = w(0.002);
        let w2 = w(0.01);
        let w3 = w(0.05);
        assert!(w1 < w2 && w2 < w3);
        assert!(w3 - w2 > w2 - w1, "convexity: {w1} {w2} {w3}");
    }

    #[test]
    fn silent_network_has_zero_wait() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let l = LinkLoads::compute(&mesh, &mcs, &[], 3.0);
        assert_eq!(l.mean_td_q(), 0.0);
        assert_eq!(l.max_load(), 0.0);
        assert_eq!(l.mean_load(), 0.0);
    }

    #[test]
    fn self_traffic_loads_nothing() {
        // One source whose memory controller is its own tile.
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let s = SourceLoad {
            tile: mesh.corners()[0],
            cache_rate: 0.0,
            mem_rate: 1.0,
        };
        let l = LinkLoads::compute(&mesh, &mcs, &[s], 3.0);
        assert_eq!(l.max_load(), 0.0);
    }
}
