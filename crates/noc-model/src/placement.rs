//! Memory-controller placement and proximity-based forwarding.
//!
//! The paper's CMP places one memory controller at each of the four mesh
//! corners; every memory request is forwarded to the *nearest* controller
//! ("proximity principle"), which on a square mesh partitions the chip into
//! quadrants. [`MemoryControllers`] generalizes this to any placement so that
//! ablations (edge-centered, diamond, single controller) can reuse the same
//! machinery.

use crate::geometry::{Mesh, TileId};
use crate::layout::PlacementError;
use serde::{Deserialize, Serialize};

/// A set of memory-controller tiles with nearest-controller forwarding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryControllers {
    tiles: Vec<TileId>,
}

impl MemoryControllers {
    /// The paper's default: one controller in each corner tile.
    pub fn corners(mesh: &Mesh) -> Self {
        let mut tiles = mesh.corners().to_vec();
        tiles.sort_unstable();
        tiles.dedup();
        MemoryControllers { tiles }
    }

    /// Controllers at the middle of each of the four edges — a common
    /// alternative placement used for ablation.
    pub fn edge_centers(mesh: &Mesh) -> Self {
        let r = mesh.rows();
        let c = mesh.cols();
        let mut tiles = vec![
            mesh.tile(crate::geometry::Coord::new(0, c / 2)),
            mesh.tile(crate::geometry::Coord::new(r - 1, c / 2)),
            mesh.tile(crate::geometry::Coord::new(r / 2, 0)),
            mesh.tile(crate::geometry::Coord::new(r / 2, c - 1)),
        ];
        tiles.sort_unstable();
        tiles.dedup();
        MemoryControllers { tiles }
    }

    /// An arbitrary custom placement, validated: `tiles` must be
    /// non-empty and every tile must be on the mesh. Duplicates are
    /// deduplicated and the set is kept sorted (deterministic
    /// nearest-controller tie-breaks).
    pub fn try_custom(mesh: &Mesh, mut tiles: Vec<TileId>) -> Result<Self, PlacementError> {
        if tiles.is_empty() {
            return Err(PlacementError::NoControllers);
        }
        if let Some(&bad) = tiles.iter().find(|t| t.index() >= mesh.num_tiles()) {
            return Err(PlacementError::ControllerOutOfRange {
                tile: bad.index(),
                num_tiles: mesh.num_tiles(),
            });
        }
        tiles.sort_unstable();
        tiles.dedup();
        Ok(MemoryControllers { tiles })
    }

    /// The controller tiles, sorted and deduplicated.
    pub fn tiles(&self) -> &[TileId] {
        &self.tiles
    }

    /// The controller nearest to `from` (ties broken by lowest tile index,
    /// which is deterministic and matches a fixed quadrant assignment on
    /// even-sized square meshes).
    pub fn nearest(&self, mesh: &Mesh, from: TileId) -> TileId {
        *self
            .tiles
            .iter()
            .min_by_key(|&&mc| (mesh.hops(from, mc), mc.index()))
            .expect("non-empty controller set")
    }

    /// The controller nearest to `from` under torus distances.
    pub fn nearest_torus(&self, mesh: &Mesh, from: TileId) -> TileId {
        *self
            .tiles
            .iter()
            .min_by_key(|&&mc| (mesh.torus_hops_impl(from, mc), mc.index()))
            .expect("non-empty controller set")
    }

    /// Torus hop distance from `from` to its nearest controller.
    pub fn hops_to_nearest_torus(&self, mesh: &Mesh, from: TileId) -> usize {
        mesh.torus_hops_impl(from, self.nearest_torus(mesh, from))
    }

    /// Hop distance from `from` to its nearest controller.
    ///
    /// With corner controllers on an `n×n` mesh this equals the paper's
    /// Eq. (4): `H̄M_k = min(i−1, n−i) + min(j−1, n−j)` (1-based indices).
    pub fn hops_to_nearest(&self, mesh: &Mesh, from: TileId) -> usize {
        mesh.hops(from, self.nearest(mesh, from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    /// Direct transcription of Eq. (4) using the paper's 1-based indices.
    fn eq4(n: usize, k: usize) -> usize {
        let i = (k - 1) / n + 1;
        let j = (k - 1) % n + 1;
        (i - 1).min(n - i) + (j - 1).min(n - j)
    }

    #[test]
    fn corner_placement_matches_eq4() {
        for n in [2usize, 4, 6, 8, 10] {
            let m = Mesh::square(n);
            let mcs = MemoryControllers::corners(&m);
            for k in 1..=n * n {
                assert_eq!(
                    mcs.hops_to_nearest(&m, TileId::from_paper(k)),
                    eq4(n, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn corner_tiles_have_zero_distance() {
        let m = Mesh::square(8);
        let mcs = MemoryControllers::corners(&m);
        for c in m.corners() {
            assert_eq!(mcs.hops_to_nearest(&m, c), 0);
            assert_eq!(mcs.nearest(&m, c), c);
        }
    }

    #[test]
    fn quadrant_assignment_on_8x8() {
        // A tile strictly inside the top-left quadrant must use the
        // top-left controller.
        let m = Mesh::square(8);
        let mcs = MemoryControllers::corners(&m);
        let tl = m.tile(Coord::new(0, 0));
        assert_eq!(mcs.nearest(&m, m.tile(Coord::new(1, 2))), tl);
        let br = m.tile(Coord::new(7, 7));
        assert_eq!(mcs.nearest(&m, m.tile(Coord::new(6, 5))), br);
    }

    #[test]
    fn edge_centers_distinct_on_8x8() {
        let m = Mesh::square(8);
        let mcs = MemoryControllers::edge_centers(&m);
        assert_eq!(mcs.tiles().len(), 4);
    }

    #[test]
    fn custom_single_controller() {
        let m = Mesh::square(4);
        let mc = m.tile(Coord::new(2, 1));
        let mcs = MemoryControllers::try_custom(&m, vec![mc]).expect("valid");
        for t in m.tiles() {
            assert_eq!(mcs.nearest(&m, t), mc);
            assert_eq!(mcs.hops_to_nearest(&m, t), m.hops(t, mc));
        }
    }

    #[test]
    fn try_custom_rejects_bad_placements() {
        let m = Mesh::square(4);
        assert_eq!(
            MemoryControllers::try_custom(&m, vec![]),
            Err(PlacementError::NoControllers)
        );
        assert_eq!(
            MemoryControllers::try_custom(&m, vec![TileId(16)]),
            Err(PlacementError::ControllerOutOfRange {
                tile: 16,
                num_tiles: 16
            })
        );
        // Duplicates collapse; the set stays sorted.
        let mcs = MemoryControllers::try_custom(&m, vec![TileId(5), TileId(2), TileId(5)])
            .expect("valid");
        assert_eq!(mcs.tiles(), &[TileId(2), TileId(5)]);
    }
}
