//! Address-interleaved L2 bank hashing.
//!
//! Commercial CMPs place a cache line in the bank selected by hashing the
//! low-order bits of the physical address (Figure 2 of the paper): with
//! 64-byte lines, bits 0–5 are the block offset and the next `log2(N)` bits
//! select the bank. Consecutive cache lines therefore interleave uniformly
//! across all `N` banks, which is the property the latency model's Eq. (3)
//! relies on.

use crate::geometry::{Mesh, TileId};

/// Bank-selection hash for a distributed shared L2.
#[derive(Debug, Clone, Copy)]
pub struct BankHash {
    num_banks: usize,
    offset_bits: u32,
}

impl BankHash {
    /// Hash for a mesh of `N` banks with the given cache-line size.
    ///
    /// # Panics
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(mesh: &Mesh, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "cache lines are a power of two"
        );
        BankHash {
            num_banks: mesh.num_tiles(),
            offset_bits: line_bytes.trailing_zeros(),
        }
    }

    /// The bank (tile) holding the line containing physical address `addr`.
    ///
    /// Uses modulo interleaving on the line index, which is exactly bit
    /// extraction when `N` is a power of two (the paper's 64-tile case) and
    /// degrades gracefully to modulo otherwise.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> TileId {
        let line = addr >> self.offset_bits;
        TileId((line % self.num_banks as u64) as usize)
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_lines_interleave() {
        let m = Mesh::square(8);
        let h = BankHash::new(&m, 64);
        // 64 consecutive cache lines must hit all 64 banks exactly once.
        let mut seen = [false; 64];
        for i in 0..64u64 {
            let t = h.bank_of(i * 64);
            assert!(!seen[t.index()], "bank hit twice");
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn same_line_same_bank() {
        let m = Mesh::square(8);
        let h = BankHash::new(&m, 64);
        assert_eq!(h.bank_of(0x1000), h.bank_of(0x103F));
        assert_ne!(h.bank_of(0x1000), h.bank_of(0x1040));
    }

    #[test]
    fn paper_bit_positions() {
        // 16 MB L2, 64 B lines: offset bits 0–5, index bits 6–11 select
        // among 64 banks. bank_of must equal bits [6..12) of the address
        // when N = 64.
        let m = Mesh::square(8);
        let h = BankHash::new(&m, 64);
        for addr in [0u64, 0x40, 0x80, 0xFC0, 0x1000, 0xDEADBEEF] {
            let expect = ((addr >> 6) & 0x3F) as usize;
            assert_eq!(h.bank_of(addr).index(), expect);
        }
    }

    #[test]
    fn uniform_over_large_stream() {
        let m = Mesh::square(4);
        let h = BankHash::new(&m, 64);
        let mut counts = vec![0usize; 16];
        for i in 0..16_000u64 {
            counts[h.bank_of(i * 64).index()] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 1000);
        }
    }
}
