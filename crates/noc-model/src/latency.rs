//! The packet service-latency model (Eq. 2) and the per-tile average latency
//! arrays `TC(k)` / `TM(k)` (Eqs. 3–4) that the mapping algorithms consume.
//!
//! Eq. (2): `TD_k = H_k(k') · (td_r + td_w + td_q) + td_s`, with the
//! exception that a packet whose hashed destination is its own tile never
//! enters the network and pays neither hop nor serialization latency.

use crate::geometry::{Mesh, TileId};
use crate::layout::ChipLayout;
use crate::placement::MemoryControllers;
use crate::traffic::PacketFormat;
use serde::{Deserialize, Serialize};

/// Router/link timing parameters of Eq. (2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// Per-hop router pipeline latency `td_r` in cycles (Table 2: 3-stage).
    pub td_r: f64,
    /// Per-hop wire/link traversal latency `td_w` in cycles.
    pub td_w: f64,
    /// Average per-hop queueing latency `td_q` in cycles. The paper observes
    /// 0–1 cycles at the evaluated loads; our cycle-level simulator confirms
    /// this (see the `noc-sim` crate and `experiments validate`).
    pub td_q: f64,
    /// Serialization latency `td_s` of a cache-class packet in cycles
    /// (packet length ÷ channel bandwidth, averaged over the short/long mix).
    pub td_s_cache: f64,
    /// Serialization latency of a memory-class packet in cycles.
    pub td_s_mem: f64,
}

impl LatencyParams {
    /// Calibrated defaults for the paper's Table 2 platform: 3-cycle router,
    /// 1-cycle links, and serialization from an even request/reply packet
    /// mix (1-flit request + 5-flit reply ⇒ 3 cycles average). `td_q`
    /// defaults to 0 in the analytic arrays — the paper observes 0–1 cycles
    /// at the evaluated loads and the cycle-level simulator confirms it; a
    /// measured value can be plugged back in via the field. These defaults
    /// land a random 8×8 mapping at g-APL ≈ 22.7 cycles, the scale of the
    /// paper's Table 1 Random column (22.61).
    pub fn paper_table2() -> Self {
        let fmt = PacketFormat::default();
        LatencyParams {
            td_r: 3.0,
            td_w: 1.0,
            td_q: 0.0,
            td_s_cache: fmt.mixed_serialization(0.5),
            td_s_mem: fmt.mixed_serialization(0.5),
        }
    }

    /// The parameters of the paper's Figure 5 worked example:
    /// `td_r = 3, td_w = 1, td_s = 1`, no queueing.
    pub fn fig5_example() -> Self {
        LatencyParams {
            td_r: 3.0,
            td_w: 1.0,
            td_q: 0.0,
            td_s_cache: 1.0,
            td_s_mem: 1.0,
        }
    }

    /// Combined per-hop latency `td_r + td_w + td_q`.
    #[inline]
    pub fn per_hop(&self) -> f64 {
        self.td_r + self.td_w + self.td_q
    }

    /// Service latency of a single cache packet over `hops` hops (Eq. 2).
    /// Zero hops means the hashed bank is the source tile itself: no packet.
    #[inline]
    pub fn cache_packet_latency(&self, hops: usize) -> f64 {
        if hops == 0 {
            0.0
        } else {
            hops as f64 * self.per_hop() + self.td_s_cache
        }
    }

    /// Service latency of a single memory packet over `hops` hops (Eq. 2).
    /// Zero hops means the source tile hosts the controller.
    #[inline]
    pub fn mem_packet_latency(&self, hops: usize) -> f64 {
        if hops == 0 {
            0.0
        } else {
            hops as f64 * self.per_hop() + self.td_s_mem
        }
    }
}

impl Default for LatencyParams {
    fn default() -> Self {
        LatencyParams::paper_table2()
    }
}

/// The per-tile average-latency arrays `{TC(k)}` and `{TM(k)}` together with
/// the underlying hop-count averages (needed by the power model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileLatencies {
    tc: Vec<f64>,
    tm: Vec<f64>,
    cache_hops: Vec<f64>,
    mem_hops: Vec<f64>,
    params: LatencyParams,
}

impl TileLatencies {
    /// Compute `TC`/`TM` for every tile of `mesh` under `params` with the
    /// given memory-controller placement.
    ///
    /// `TC(k) = H̄C_k · (td_r+td_w+td_q) + td_s · (N−1)/N` — the uniform
    /// bank hash sends `1/N` of cache packets to the local bank, which pay
    /// nothing (this is what makes the paper's Figure 5 example evaluate to
    /// exactly 10.3375 cycles).
    ///
    /// `TM(k) = H̄M_k · (td_r+td_w+td_q) + td_s`, except controller tiles
    /// themselves, which pay nothing.
    pub fn compute(mesh: &Mesh, mcs: &MemoryControllers, params: LatencyParams) -> Self {
        TileLatencies::for_layout(&ChipLayout::with_controllers(*mesh, mcs.clone()), params)
    }

    /// Compute `TC`/`TM` for every tile of an arbitrary validated
    /// [`ChipLayout`] — the one constructor behind every topology,
    /// controller placement and failed-link configuration.
    ///
    /// On the paper's layout (mesh topology, corner controllers, no
    /// failed links) the result is bit-identical to the closed forms of
    /// Eqs. (3)–(4): the hop averages are the same integer sums divided
    /// by `N`, combined with `params` in the same expression order.
    pub fn for_layout(layout: &ChipLayout, params: LatencyParams) -> Self {
        let mesh = layout.mesh();
        let n = mesh.num_tiles();
        let mut tc = Vec::with_capacity(n);
        let mut tm = Vec::with_capacity(n);
        let mut cache_hops = Vec::with_capacity(n);
        let mut mem_hops = Vec::with_capacity(n);
        for k in mesh.tiles() {
            let hc = layout.avg_cache_hops(k);
            cache_hops.push(hc);
            tc.push(hc * params.per_hop() + params.td_s_cache * mesh.offtile_fraction());
            let hm = layout.hops_to_nearest_controller(k);
            mem_hops.push(hm as f64);
            tm.push(params.mem_packet_latency(hm));
        }
        TileLatencies {
            tc,
            tm,
            cache_hops,
            mem_hops,
            params,
        }
    }

    /// Convenience constructor for the paper's platform: square mesh,
    /// corner controllers.
    pub fn paper_default(mesh: &Mesh) -> Self {
        let mcs = MemoryControllers::corners(mesh);
        TileLatencies::compute(mesh, &mcs, LatencyParams::paper_table2())
    }

    /// `TC(k)`: average cache-access packet latency from tile `k`.
    #[inline]
    pub fn tc(&self, k: TileId) -> f64 {
        self.tc[k.index()]
    }

    /// `TM(k)`: average memory-access packet latency from tile `k`.
    #[inline]
    pub fn tm(&self, k: TileId) -> f64 {
        self.tm[k.index()]
    }

    /// Average cache-packet hop count `H̄C_k` from tile `k` (Eq. 3).
    #[inline]
    pub fn cache_hops(&self, k: TileId) -> f64 {
        self.cache_hops[k.index()]
    }

    /// Hop count to the nearest memory controller `H̄M_k` (Eq. 4).
    #[inline]
    pub fn mem_hops(&self, k: TileId) -> f64 {
        self.mem_hops[k.index()]
    }

    /// All `TC` values, indexed by tile.
    pub fn tc_array(&self) -> &[f64] {
        &self.tc
    }

    /// All `TM` values, indexed by tile.
    pub fn tm_array(&self) -> &[f64] {
        &self.tm
    }

    /// The parameters this table was computed with.
    pub fn params(&self) -> LatencyParams {
        self.params
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tc.len()
    }

    /// Whether the table is empty (never true for a valid mesh).
    pub fn is_empty(&self) -> bool {
        self.tc.is_empty()
    }

    /// Build directly from raw arrays — used by the NP-completeness
    /// reduction, which needs an arbitrary `TC` vector, and by tests.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn from_raw(tc: Vec<f64>, tm: Vec<f64>, params: LatencyParams) -> Self {
        assert_eq!(tc.len(), tm.len(), "TC/TM length mismatch");
        let per_hop = params.per_hop();
        let cache_hops = tc.iter().map(|&t| t / per_hop.max(1e-12)).collect();
        let mem_hops = tm.iter().map(|&t| t / per_hop.max(1e-12)).collect();
        TileLatencies {
            tc,
            tm,
            cache_hops,
            mem_hops,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;
    use crate::layout::Topology;

    #[test]
    fn fig5_tile_latencies() {
        // 4×4 mesh, td_r=3, td_w=1, td_s=1: corner TC = 3·4 + 15/16,
        // edge TC = 2.5·4 + 15/16, center TC = 2·4 + 15/16.
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let corner = mesh.tile(Coord::new(0, 0));
        let edge = mesh.tile(Coord::new(0, 1));
        let center = mesh.tile(Coord::new(1, 1));
        assert!((tl.tc(corner) - 12.9375).abs() < 1e-12);
        assert!((tl.tc(edge) - 10.9375).abs() < 1e-12);
        assert!((tl.tc(center) - 8.9375).abs() < 1e-12);
    }

    #[test]
    fn tc_center_low_corner_high() {
        // Figure 3a: cache latency larger towards the perimeter.
        let mesh = Mesh::square(8);
        let tl = TileLatencies::paper_default(&mesh);
        let corner = mesh.tile(Coord::new(0, 0));
        let center = mesh.tile(Coord::new(3, 3));
        assert!(tl.tc(corner) > tl.tc(center));
    }

    #[test]
    fn tm_corner_low_center_high() {
        // Figure 3b: memory latency smaller towards the corners.
        let mesh = Mesh::square(8);
        let tl = TileLatencies::paper_default(&mesh);
        let corner = mesh.tile(Coord::new(0, 0));
        let center = mesh.tile(Coord::new(3, 3));
        assert!(tl.tm(corner) < tl.tm(center));
        assert_eq!(tl.tm(corner), 0.0);
    }

    #[test]
    fn symmetry_of_tc_under_mesh_symmetries() {
        let mesh = Mesh::square(8);
        let tl = TileLatencies::paper_default(&mesh);
        for r in 0..8 {
            for c in 0..8 {
                let t = mesh.tile(Coord::new(r, c));
                let h = mesh.tile(Coord::new(r, 7 - c));
                let v = mesh.tile(Coord::new(7 - r, c));
                let d = mesh.tile(Coord::new(c, r));
                assert!((tl.tc(t) - tl.tc(h)).abs() < 1e-12);
                assert!((tl.tc(t) - tl.tc(v)).abs() < 1e-12);
                assert!((tl.tc(t) - tl.tc(d)).abs() < 1e-12);
                assert!((tl.tm(t) - tl.tm(h)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn per_hop_sums_components() {
        let p = LatencyParams {
            td_r: 3.0,
            td_w: 1.0,
            td_q: 0.5,
            td_s_cache: 3.0,
            td_s_mem: 3.0,
        };
        assert!((p.per_hop() - 4.5).abs() < 1e-12);
        assert!((p.cache_packet_latency(2) - 12.0).abs() < 1e-12);
        assert_eq!(p.cache_packet_latency(0), 0.0);
        assert_eq!(p.mem_packet_latency(0), 0.0);
    }

    #[test]
    fn random_8x8_gapl_scale_matches_table1() {
        // Uniform thread rates on a random mapping give the population mean
        // of TC; with Table 2 calibration this should be in the low 20s of
        // cycles like Table 1's Random column (≈22.6).
        let mesh = Mesh::square(8);
        let tl = TileLatencies::paper_default(&mesh);
        let mean_tc: f64 = tl.tc_array().iter().sum::<f64>() / 64.0;
        assert!(
            (21.0..25.0).contains(&mean_tc),
            "mean TC {mean_tc} out of Table 1 scale"
        );
    }

    #[test]
    fn torus_tc_uniform_and_lower() {
        let mesh = Mesh::square(8);
        let mcs = MemoryControllers::corners(&mesh);
        let params = LatencyParams::paper_table2();
        let mesh_tl = TileLatencies::compute(&mesh, &mcs, params);
        let torus = ChipLayout::try_new(mesh, Topology::Torus, mcs.clone(), Vec::new())
            .expect("valid layout");
        let torus_tl = TileLatencies::for_layout(&torus, params);
        let first = torus_tl.tc(TileId(0));
        for k in mesh.tiles() {
            assert!(
                (torus_tl.tc(k) - first).abs() < 1e-12,
                "torus TC not uniform"
            );
            assert!(torus_tl.tc(k) <= mesh_tl.tc(k) + 1e-12, "torus never worse");
            assert!(torus_tl.tm(k) <= mesh_tl.tm(k) + 1e-12);
        }
    }

    #[test]
    fn from_raw_roundtrip() {
        let tc = vec![1.0, 2.0, 3.0];
        let tm = vec![0.0, 1.0, 0.5];
        let tl = TileLatencies::from_raw(tc.clone(), tm.clone(), LatencyParams::fig5_example());
        assert_eq!(tl.tc_array(), tc.as_slice());
        assert_eq!(tl.tm_array(), tm.as_slice());
        assert_eq!(tl.len(), 3);
    }
}
