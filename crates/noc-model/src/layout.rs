//! The chip layout as a first-class value: mesh dimensions, topology,
//! memory-controller placement and (optionally) failed links, all behind
//! one [`ChipLayout`] that is the single source of truth the latency
//! model ([`TileLatencies::for_layout`](crate::TileLatencies::for_layout))
//! and the simulator (`noc_sim::SimConfig::for_layout`) derive from.
//!
//! The paper fixes the layout by fiat — a mesh with one controller per
//! corner (Eqs. 3–4). [`ChipLayout::paper_default`] reproduces exactly
//! that (bit-identical latency tables), while [`ChipLayout::try_new`]
//! admits arbitrary placements, the torus topology, and meshes with
//! failed links that traffic is rerouted around (hop counts become BFS
//! shortest paths over the surviving links). Validation happens here,
//! once, through typed [`PlacementError`]s — downstream consumers never
//! re-check.

use crate::geometry::{Coord, Mesh, TileId};
use crate::placement::MemoryControllers;

/// Network topology of the chip.
///
/// The paper's platform is a 2-D mesh; the torus adds wraparound links,
/// which makes every tile's average cache distance identical (vertex
/// transitivity) and is the classic hardware fix for the centre/perimeter
/// asymmetry the OBM problem exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Topology {
    /// 2-D mesh (the paper's platform).
    #[default]
    Mesh,
    /// 2-D torus: per-dimension wraparound links.
    Torus,
}

impl Topology {
    /// Hop count between two tiles under minimal routing on this
    /// topology.
    #[inline]
    pub fn hops(self, mesh: &Mesh, a: TileId, b: TileId) -> usize {
        match self {
            Topology::Mesh => mesh.hops(a, b),
            Topology::Torus => mesh.torus_hops_impl(a, b),
        }
    }

    /// Average hop count from tile `k` to all tiles including itself —
    /// Eq. (3) on the mesh, its wraparound analogue on the torus.
    #[inline]
    pub fn avg_cache_hops(self, mesh: &Mesh, k: TileId) -> f64 {
        match self {
            Topology::Mesh => mesh.avg_cache_hops(k),
            Topology::Torus => mesh.avg_cache_hops_torus_impl(k),
        }
    }

    /// CLI spelling (`mesh` / `torus`).
    pub fn name(self) -> &'static str {
        match self {
            Topology::Mesh => "mesh",
            Topology::Torus => "torus",
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Topology {
    type Err = String;

    /// Parse a CLI spelling: `mesh` or `torus`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mesh" => Ok(Topology::Mesh),
            "torus" => Ok(Topology::Torus),
            other => Err(format!(
                "unknown topology '{other}' (expected mesh or torus)"
            )),
        }
    }
}

/// A rejected chip layout or controller placement.
///
/// The `ConfigError`/`SpecError` convention: typed variants with
/// readable messages, no panics on the construction path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The controller set is empty (every memory packet needs a target).
    NoControllers,
    /// A controller tile index is outside the mesh.
    ControllerOutOfRange {
        /// The offending 0-based tile index.
        tile: usize,
        /// Tiles in the mesh.
        num_tiles: usize,
    },
    /// A failed-link endpoint is outside the mesh.
    LinkOutOfRange {
        /// The offending 0-based tile index.
        tile: usize,
        /// Tiles in the mesh.
        num_tiles: usize,
    },
    /// A failed link connects a tile to itself.
    SelfLink(usize),
    /// A failed link's endpoints are not neighbours under the topology.
    LinkNotAdjacent {
        /// First endpoint (0-based).
        a: usize,
        /// Second endpoint (0-based).
        b: usize,
    },
    /// Removing the failed links disconnects the chip: `tile` cannot
    /// reach tile 0.
    Disconnected {
        /// A tile unreachable from tile 0 over the surviving links.
        tile: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoControllers => {
                write!(f, "at least one memory controller is required")
            }
            PlacementError::ControllerOutOfRange { tile, num_tiles } => {
                write!(
                    f,
                    "controller tile {tile} out of range (mesh has {num_tiles} tiles)"
                )
            }
            PlacementError::LinkOutOfRange { tile, num_tiles } => {
                write!(
                    f,
                    "failed-link tile {tile} out of range (mesh has {num_tiles} tiles)"
                )
            }
            PlacementError::SelfLink(tile) => {
                write!(f, "failed link connects tile {tile} to itself")
            }
            PlacementError::LinkNotAdjacent { a, b } => {
                write!(f, "tiles {a} and {b} are not neighbours; no link to fail")
            }
            PlacementError::Disconnected { tile } => {
                write!(
                    f,
                    "failed links disconnect the chip (tile {tile} unreachable)"
                )
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// The chip layout: mesh dimensions, topology, memory-controller
/// placement and failed links, validated once at construction.
///
/// Hop counts come from the closed forms when no links have failed
/// (bit-identical to the pre-layout API) and from a precomputed all-pairs
/// BFS distance matrix over the surviving links otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipLayout {
    mesh: Mesh,
    topology: Topology,
    controllers: MemoryControllers,
    /// Normalized (lower tile first), sorted, deduplicated.
    failed_links: Vec<(TileId, TileId)>,
    /// All-pairs hop counts over surviving links, row-major `[src][dst]`;
    /// only populated when `failed_links` is non-empty.
    dist: Option<Vec<u32>>,
}

impl ChipLayout {
    /// Validate and build a layout.
    ///
    /// Failed links are undirected: `(a, b)` and `(b, a)` describe the
    /// same link and are normalized and deduplicated. With failed links
    /// present, all-pairs shortest-path hop counts are precomputed by BFS
    /// and the chip must stay connected.
    pub fn try_new(
        mesh: Mesh,
        topology: Topology,
        controllers: MemoryControllers,
        failed_links: Vec<(TileId, TileId)>,
    ) -> Result<Self, PlacementError> {
        let n = mesh.num_tiles();
        if controllers.tiles().is_empty() {
            return Err(PlacementError::NoControllers);
        }
        for &t in controllers.tiles() {
            if t.index() >= n {
                return Err(PlacementError::ControllerOutOfRange {
                    tile: t.index(),
                    num_tiles: n,
                });
            }
        }
        let mut links: Vec<(TileId, TileId)> = Vec::with_capacity(failed_links.len());
        for &(a, b) in &failed_links {
            for t in [a, b] {
                if t.index() >= n {
                    return Err(PlacementError::LinkOutOfRange {
                        tile: t.index(),
                        num_tiles: n,
                    });
                }
            }
            if a == b {
                return Err(PlacementError::SelfLink(a.index()));
            }
            if !adjacent(&mesh, topology, a, b) {
                return Err(PlacementError::LinkNotAdjacent {
                    a: a.index(),
                    b: b.index(),
                });
            }
            links.push(if a.index() < b.index() {
                (a, b)
            } else {
                (b, a)
            });
        }
        links.sort_unstable();
        links.dedup();
        let dist = if links.is_empty() {
            None
        } else {
            Some(bfs_all_pairs(&mesh, topology, &links)?)
        };
        Ok(ChipLayout {
            mesh,
            topology,
            controllers,
            failed_links: links,
            dist,
        })
    }

    /// A healthy mesh (no failed links) with the given controllers — the
    /// infallible fast path [`TileLatencies::compute`] delegates through.
    ///
    /// The controller set must fit the mesh (always true for sets built
    /// against the same mesh via `corners`/`edge_centers`/`try_custom`).
    pub fn with_controllers(mesh: Mesh, controllers: MemoryControllers) -> Self {
        ChipLayout::try_new(mesh, Topology::Mesh, controllers, Vec::new())
            .expect("controller set fits the mesh")
    }

    /// The paper's platform: mesh topology, one controller per corner,
    /// no failed links. [`TileLatencies::for_layout`] on this layout is
    /// bit-identical to [`TileLatencies::paper_default`].
    pub fn paper_default(mesh: Mesh) -> Self {
        let controllers = MemoryControllers::corners(&mesh);
        ChipLayout::with_controllers(mesh, controllers)
    }

    /// The mesh dimensions.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The topology.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The memory-controller placement.
    #[inline]
    pub fn controllers(&self) -> &MemoryControllers {
        &self.controllers
    }

    /// The failed links, normalized (lower tile first) and sorted.
    pub fn failed_links(&self) -> &[(TileId, TileId)] {
        &self.failed_links
    }

    /// Hop count between two tiles under minimal routing on this layout:
    /// the topology's closed form when the chip is healthy, the BFS
    /// shortest path over surviving links otherwise.
    #[inline]
    pub fn hops(&self, a: TileId, b: TileId) -> usize {
        match &self.dist {
            None => self.topology.hops(&self.mesh, a, b),
            Some(d) => d[a.index() * self.mesh.num_tiles() + b.index()] as usize,
        }
    }

    /// Average hop count from `k` to all tiles including itself (Eq. 3
    /// generalized to this layout).
    pub fn avg_cache_hops(&self, k: TileId) -> f64 {
        match &self.dist {
            None => self.topology.avg_cache_hops(&self.mesh, k),
            Some(d) => {
                let n = self.mesh.num_tiles();
                let sum: u64 = d[k.index() * n..(k.index() + 1) * n]
                    .iter()
                    .map(|&h| h as u64)
                    .sum();
                sum as f64 / n as f64
            }
        }
    }

    /// The controller nearest to `from` under this layout's distances
    /// (ties broken by lowest tile index).
    pub fn nearest_controller(&self, from: TileId) -> TileId {
        match (&self.dist, self.topology) {
            (None, Topology::Mesh) => self.controllers.nearest(&self.mesh, from),
            (None, Topology::Torus) => self.controllers.nearest_torus(&self.mesh, from),
            (Some(_), _) => *self
                .controllers
                .tiles()
                .iter()
                .min_by_key(|&&mc| (self.hops(from, mc), mc.index()))
                .expect("validated non-empty controller set"),
        }
    }

    /// Hop distance from `from` to its nearest controller (Eq. 4
    /// generalized to this layout).
    pub fn hops_to_nearest_controller(&self, from: TileId) -> usize {
        self.hops(from, self.nearest_controller(from))
    }
}

/// Whether `a` and `b` share a physical link under `topology`.
fn adjacent(mesh: &Mesh, topology: Topology, a: TileId, b: TileId) -> bool {
    topology.hops(mesh, a, b) == 1
}

/// Physical neighbours of `t` under `topology` (wraparound links count on
/// the torus), excluding `failed` links.
fn surviving_neighbors(
    mesh: &Mesh,
    topology: Topology,
    failed: &[(TileId, TileId)],
    t: TileId,
) -> Vec<TileId> {
    let c = mesh.coord(t);
    let rows = mesh.rows();
    let cols = mesh.cols();
    let mut out = Vec::with_capacity(4);
    let mut push = |coord: Coord| {
        let nb = mesh.tile(coord);
        if nb == t {
            return; // degenerate 1-wide torus dimension: wrap is a self-loop
        }
        let key = if t.index() < nb.index() {
            (t, nb)
        } else {
            (nb, t)
        };
        if failed.binary_search(&key).is_err() && !out.contains(&nb) {
            out.push(nb);
        }
    };
    match topology {
        Topology::Mesh => {
            if c.row > 0 {
                push(Coord::new(c.row - 1, c.col));
            }
            if c.row + 1 < rows {
                push(Coord::new(c.row + 1, c.col));
            }
            if c.col > 0 {
                push(Coord::new(c.row, c.col - 1));
            }
            if c.col + 1 < cols {
                push(Coord::new(c.row, c.col + 1));
            }
        }
        Topology::Torus => {
            push(Coord::new((c.row + rows - 1) % rows, c.col));
            push(Coord::new((c.row + 1) % rows, c.col));
            push(Coord::new(c.row, (c.col + cols - 1) % cols));
            push(Coord::new(c.row, (c.col + 1) % cols));
        }
    }
    out
}

/// All-pairs BFS hop counts over the surviving links; errors if any tile
/// is unreachable from tile 0 (the chip must stay connected).
fn bfs_all_pairs(
    mesh: &Mesh,
    topology: Topology,
    failed: &[(TileId, TileId)],
) -> Result<Vec<u32>, PlacementError> {
    let n = mesh.num_tiles();
    let adjacency: Vec<Vec<TileId>> = mesh
        .tiles()
        .map(|t| surviving_neighbors(mesh, topology, failed, t))
        .collect();
    let mut dist = vec![u32::MAX; n * n];
    let mut queue = std::collections::VecDeque::new();
    for src in 0..n {
        let row = &mut dist[src * n..(src + 1) * n];
        row[src] = 0;
        queue.clear();
        queue.push_back(TileId(src));
        while let Some(t) = queue.pop_front() {
            let d = row[t.index()];
            for &nb in &adjacency[t.index()] {
                if row[nb.index()] == u32::MAX {
                    row[nb.index()] = d + 1;
                    queue.push_back(nb);
                }
            }
        }
        if src == 0 {
            if let Some(unreached) = row.iter().position(|&d| d == u32::MAX) {
                return Err(PlacementError::Disconnected { tile: unreached });
            }
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{LatencyParams, TileLatencies};

    #[test]
    fn paper_default_layout_matches_paper_default_tables() {
        for n in [2usize, 4, 8] {
            let mesh = Mesh::square(n);
            let layout = ChipLayout::paper_default(mesh);
            let via_layout = TileLatencies::for_layout(&layout, LatencyParams::paper_table2());
            let direct = TileLatencies::paper_default(&mesh);
            // Bit-identical, not just approximately equal.
            assert_eq!(via_layout, direct, "n={n}");
        }
    }

    #[test]
    fn topology_parses_cli_spellings() {
        assert_eq!("mesh".parse::<Topology>(), Ok(Topology::Mesh));
        assert_eq!("torus".parse::<Topology>(), Ok(Topology::Torus));
        assert!("ring".parse::<Topology>().is_err());
        assert_eq!(Topology::Torus.to_string(), "torus");
        assert_eq!(Topology::default(), Topology::Mesh);
    }

    #[test]
    fn torus_hops_via_topology() {
        let mesh = Mesh::square(4);
        let a = mesh.tile(Coord::new(0, 0));
        let b = mesh.tile(Coord::new(3, 3));
        assert_eq!(Topology::Mesh.hops(&mesh, a, b), 6);
        assert_eq!(Topology::Torus.hops(&mesh, a, b), 2);
    }

    #[test]
    fn controller_validation_errors() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&Mesh::square(8)); // tiles up to 63
        assert_eq!(
            ChipLayout::try_new(mesh, Topology::Mesh, mcs, Vec::new()),
            Err(PlacementError::ControllerOutOfRange {
                tile: 56, // first out-of-range tile in sorted order
                num_tiles: 16
            })
        );
    }

    #[test]
    fn failed_link_validation_errors() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let bad = |links: Vec<(TileId, TileId)>| {
            ChipLayout::try_new(mesh, Topology::Mesh, mcs.clone(), links).unwrap_err()
        };
        assert_eq!(
            bad(vec![(TileId(0), TileId(99))]),
            PlacementError::LinkOutOfRange {
                tile: 99,
                num_tiles: 16
            }
        );
        assert_eq!(
            bad(vec![(TileId(3), TileId(3))]),
            PlacementError::SelfLink(3)
        );
        assert_eq!(
            bad(vec![(TileId(0), TileId(5))]),
            PlacementError::LinkNotAdjacent { a: 0, b: 5 }
        );
        // Cutting both links of corner tile 0 isolates it.
        assert_eq!(
            bad(vec![(TileId(0), TileId(1)), (TileId(0), TileId(4))]),
            PlacementError::Disconnected { tile: 1 }
        );
        // Errors render readable messages.
        assert!(PlacementError::NoControllers.to_string().contains("one"));
    }

    #[test]
    fn failed_link_reroutes_hops() {
        // 2x2 mesh: failing the (0,1) link forces 0 -> 2 -> 3 -> 1.
        let mesh = Mesh::new(2, 2);
        let mcs = MemoryControllers::corners(&mesh);
        let layout = ChipLayout::try_new(
            mesh,
            Topology::Mesh,
            mcs,
            vec![(TileId(1), TileId(0))], // reversed order: normalized
        )
        .expect("connected");
        assert_eq!(layout.failed_links(), &[(TileId(0), TileId(1))]);
        assert_eq!(layout.hops(TileId(0), TileId(1)), 3);
        assert_eq!(layout.hops(TileId(1), TileId(0)), 3);
        assert_eq!(layout.hops(TileId(0), TileId(3)), 2);
        // Average cache hops sees the detour: (0 + 3 + 1 + 2) / 4.
        assert!((layout.avg_cache_hops(TileId(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn torus_wrap_link_can_fail() {
        // On a 1x4 torus, failing the wrap link (0,3) degrades it to a line.
        let mesh = Mesh::new(1, 4);
        let mcs = MemoryControllers::corners(&mesh);
        let layout = ChipLayout::try_new(mesh, Topology::Torus, mcs, vec![(TileId(0), TileId(3))])
            .expect("still connected");
        assert_eq!(layout.hops(TileId(0), TileId(3)), 3);
        // The same link is not a mesh link: rejected under Topology::Mesh.
        let err = ChipLayout::try_new(
            mesh,
            Topology::Mesh,
            MemoryControllers::corners(&mesh),
            vec![(TileId(0), TileId(3))],
        )
        .unwrap_err();
        assert_eq!(err, PlacementError::LinkNotAdjacent { a: 0, b: 3 });
    }

    #[test]
    fn nearest_controller_respects_detours() {
        // Controllers at the top corners of a 4x4. Tile 1 is one hop from
        // controller 0 on the healthy chip; failing the (0,1) link makes
        // the detour to 0 three hops, so controller 3 (two hops) wins.
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::try_custom(&mesh, vec![TileId(0), TileId(3)])
            .expect("valid placement");
        let healthy = ChipLayout::try_new(mesh, Topology::Mesh, mcs.clone(), Vec::new())
            .expect("valid layout");
        assert_eq!(healthy.nearest_controller(TileId(1)), TileId(0));
        assert_eq!(healthy.hops_to_nearest_controller(TileId(1)), 1);
        let cut = ChipLayout::try_new(mesh, Topology::Mesh, mcs, vec![(TileId(0), TileId(1))])
            .expect("still connected");
        assert_eq!(cut.nearest_controller(TileId(1)), TileId(3));
        assert_eq!(cut.hops_to_nearest_controller(TileId(1)), 2);
    }
}
