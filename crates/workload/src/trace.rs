//! Bursty per-thread request-rate traces.
//!
//! A trace is a sequence of epochs; each epoch records a thread's cache and
//! memory request rates (requests per kilocycle) during that epoch. The
//! generator produces a *base + burst* process:
//!
//! `x[t][e] = β·r_t + h · Bernoulli((1−β)·r_t / h)`
//!
//! a small always-on component plus rare large spikes of height `h`. The
//! spike height is solved in closed form so that the **sample mean and
//! sample standard deviation over all (thread, epoch) samples match the
//! calibration targets exactly in expectation** — this is how we reproduce
//! the paper's Table 3, whose (mean, std) pairs are only consistent as
//! trace-sample statistics (see DESIGN.md §4.1).

use crate::stats::SampleStats;
use crate::{Application, ThreadLoad, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fraction of a thread's mean rate delivered by the always-on base
/// component (keeps every thread's rate strictly positive in every epoch).
const BASE_FRACTION: f64 = 0.2;

/// The epoch trace of a single thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadTrace {
    /// Cache request rate per epoch.
    pub cache: Vec<f64>,
    /// Memory request rate per epoch.
    pub mem: Vec<f64>,
}

impl ThreadTrace {
    /// Mean cache rate over the trace.
    pub fn mean_cache_rate(&self) -> f64 {
        self.cache.iter().sum::<f64>() / self.cache.len().max(1) as f64
    }

    /// Mean memory rate over the trace.
    pub fn mean_mem_rate(&self) -> f64 {
        self.mem.iter().sum::<f64>() / self.mem.len().max(1) as f64
    }

    /// Number of epochs.
    pub fn epochs(&self) -> usize {
        self.cache.len()
    }
}

/// Traces for every thread of a workload, plus the epoch duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    /// Cycles per epoch (used when replaying traces through the simulator).
    pub epoch_cycles: u64,
    /// One trace per thread, in workload thread order.
    pub traces: Vec<ThreadTrace>,
    /// Thread counts per application, preserving grouping.
    pub app_sizes: Vec<usize>,
    /// Application names, parallel to `app_sizes`.
    pub app_names: Vec<String>,
}

/// Calibration targets for one traffic class: the trace-sample mean and
/// standard deviation over all (thread, epoch) samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassTargets {
    pub mean: f64,
    pub std_dev: f64,
}

impl TraceSet {
    /// Generate traces for threads with the given *design* mean rates,
    /// calibrated so the pooled sample statistics hit `cache_t` / `mem_t`.
    ///
    /// `cache_means` and `mem_means` must already average (over threads) to
    /// the respective target means; the generator preserves means per
    /// thread and injects the bursts needed to reach the target std-dev.
    ///
    /// # Panics
    /// Panics if lengths mismatch, any mean is negative, or a target is
    /// unreachable (`std_dev` too small to cover the spread of the design
    /// means themselves).
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        cache_means: &[f64],
        mem_means: &[f64],
        cache_t: ClassTargets,
        mem_t: ClassTargets,
        app_sizes: Vec<usize>,
        app_names: Vec<String>,
        epochs: usize,
        epoch_cycles: u64,
        seed: u64,
    ) -> TraceSet {
        assert_eq!(cache_means.len(), mem_means.len());
        assert_eq!(app_sizes.iter().sum::<usize>(), cache_means.len());
        assert!(epochs > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let cache_h = spike_height(cache_means, cache_t);
        let mem_h = spike_height(mem_means, mem_t);
        let traces = cache_means
            .iter()
            .zip(mem_means)
            .map(|(&rc, &rm)| ThreadTrace {
                cache: burst_series(rc, cache_h, epochs, &mut rng),
                mem: burst_series(rm, mem_h, epochs, &mut rng),
            })
            .collect();
        TraceSet {
            epoch_cycles,
            traces,
            app_sizes,
            app_names,
        }
    }

    /// Pooled sample statistics of the cache class over all samples.
    pub fn cache_stats(&self) -> SampleStats {
        let mut s = SampleStats::new();
        for t in &self.traces {
            s.extend(&t.cache);
        }
        s
    }

    /// Pooled sample statistics of the memory class.
    pub fn mem_stats(&self) -> SampleStats {
        let mut s = SampleStats::new();
        for t in &self.traces {
            s.extend(&t.mem);
        }
        s
    }

    /// Collapse the traces into a [`Workload`] whose per-thread rates are
    /// the *realized* trace means — what a runtime statistics collector
    /// would hand to the mapping algorithm.
    pub fn to_workload(&self) -> Workload {
        let mut apps = Vec::with_capacity(self.app_sizes.len());
        let mut idx = 0;
        for (size, name) in self.app_sizes.iter().zip(&self.app_names) {
            let threads = self.traces[idx..idx + size]
                .iter()
                .map(|t| ThreadLoad {
                    cache_rate: t.mean_cache_rate(),
                    mem_rate: t.mean_mem_rate(),
                })
                .collect();
            idx += size;
            apps.push(Application {
                name: name.clone(),
                threads,
            });
        }
        Workload::new(apps)
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.traces.len()
    }
}

/// Closed-form spike height `h` such that the pooled second moment matches
/// the target. With base `b_t = β·r_t` and spike mass `(1−β)·r_t`:
/// `E[x²] = E_t[b_t² + 2·b_t·(1−β)·r_t] + h·(1−β)·μ`, so
/// `h = (σ² + μ² − E_t[b_t² + 2·b_t·(1−β)·r_t]) / ((1−β)·μ)`.
fn spike_height(means: &[f64], t: ClassTargets) -> f64 {
    assert!(means.iter().all(|&r| r >= 0.0), "negative design rate");
    let n = means.len() as f64;
    let mu = means.iter().sum::<f64>() / n;
    if mu <= 0.0 {
        return 0.0; // zero-traffic class: all-zero traces
    }
    let beta = BASE_FRACTION;
    let base_moment: f64 = means
        .iter()
        .map(|&r| {
            let b = beta * r;
            b * b + 2.0 * b * (1.0 - beta) * r
        })
        .sum::<f64>()
        / n;
    let num = t.std_dev * t.std_dev + t.mean * t.mean - base_moment;
    assert!(
        num > 0.0,
        "target std-dev {} unreachable for mean {} with these design rates",
        t.std_dev,
        t.mean
    );
    num / ((1.0 - beta) * mu)
}

/// One thread's base+burst epoch series with mean `r` and spike height `h`.
fn burst_series(r: f64, h: f64, epochs: usize, rng: &mut SmallRng) -> Vec<f64> {
    if r <= 0.0 || h <= 0.0 {
        return vec![0.0; epochs];
    }
    let base = BASE_FRACTION * r;
    let q = ((1.0 - BASE_FRACTION) * r / h).min(1.0);
    (0..epochs)
        .map(|_| if rng.gen_bool(q) { base + h } else { base })
        .collect()
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Calibration hits arbitrary feasible (mean, std) targets: for any
        /// positive mean and a std-dev at least ~2× the mean (bursty
        /// regime), the pooled sample statistics land within 15%.
        #[test]
        fn calibration_hits_arbitrary_targets(
            mu in 0.5f64..20.0,
            std_factor in 3.0f64..20.0,
            seed in any::<u64>(),
        ) {
            let sigma = mu * std_factor;
            let n = 16;
            let means = vec![mu; n];
            let ts = TraceSet::generate(
                &means,
                &vec![mu * 0.15; n],
                ClassTargets { mean: mu, std_dev: sigma },
                ClassTargets { mean: mu * 0.15, std_dev: sigma * 0.15 },
                vec![n],
                vec!["p".into()],
                30_000,
                1000,
                seed,
            );
            let st = ts.cache_stats();
            prop_assert!((st.mean() - mu).abs() / mu < 0.15,
                "mean {} vs {}", st.mean(), mu);
            prop_assert!((st.std_dev() - sigma).abs() / sigma < 0.15,
                "std {} vs {}", st.std_dev(), sigma);
        }

        /// Trace values are never negative and every epoch of a positive-
        /// rate thread is strictly positive (base component).
        #[test]
        fn traces_nonnegative(seed in any::<u64>(), mu in 0.1f64..5.0) {
            let ts = TraceSet::generate(
                &[mu, mu * 2.0],
                &[mu * 0.1, mu * 0.2],
                ClassTargets { mean: mu * 1.5, std_dev: mu * 12.0 },
                ClassTargets { mean: mu * 0.15, std_dev: mu * 1.2 },
                vec![2],
                vec!["x".into()],
                300,
                1000,
                seed,
            );
            for tr in &ts.traces {
                prop_assert!(tr.cache.iter().all(|&x| x > 0.0));
                prop_assert!(tr.mem.iter().all(|&x| x >= 0.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_means(n: usize, mu: f64) -> Vec<f64> {
        vec![mu; n]
    }

    #[test]
    fn calibration_hits_table3_c1_targets() {
        // Table 3, C1: cache (7.008, 88.3), memory (0.899, 9.84).
        let n = 64;
        let cache_t = ClassTargets {
            mean: 7.008,
            std_dev: 88.3,
        };
        let mem_t = ClassTargets {
            mean: 0.899,
            std_dev: 9.84,
        };
        let ts = TraceSet::generate(
            &flat_means(n, 7.008),
            &flat_means(n, 0.899),
            cache_t,
            mem_t,
            vec![16; 4],
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            20_000,
            1000,
            1,
        );
        let cs = ts.cache_stats();
        let ms = ts.mem_stats();
        assert!(
            (cs.mean() - 7.008).abs() / 7.008 < 0.10,
            "cache mean {}",
            cs.mean()
        );
        assert!(
            (cs.std_dev() - 88.3).abs() / 88.3 < 0.10,
            "cache std {}",
            cs.std_dev()
        );
        assert!(
            (ms.mean() - 0.899).abs() / 0.899 < 0.10,
            "mem mean {}",
            ms.mean()
        );
        assert!(
            (ms.std_dev() - 9.84).abs() / 9.84 < 0.10,
            "mem std {}",
            ms.std_dev()
        );
    }

    #[test]
    fn every_epoch_strictly_positive() {
        let ts = TraceSet::generate(
            &flat_means(8, 2.0),
            &flat_means(8, 0.4),
            ClassTargets {
                mean: 2.0,
                std_dev: 17.0,
            },
            ClassTargets {
                mean: 0.4,
                std_dev: 2.2,
            },
            vec![8],
            vec!["solo".into()],
            500,
            1000,
            7,
        );
        for t in &ts.traces {
            assert!(t.cache.iter().all(|&x| x > 0.0));
            assert!(t.mem.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = |seed| {
            TraceSet::generate(
                &flat_means(4, 5.0),
                &flat_means(4, 1.0),
                ClassTargets {
                    mean: 5.0,
                    std_dev: 50.0,
                },
                ClassTargets {
                    mean: 1.0,
                    std_dev: 10.0,
                },
                vec![4],
                vec!["x".into()],
                100,
                1000,
                seed,
            )
        };
        assert_eq!(mk(3), mk(3));
        assert_ne!(mk(3), mk(4));
    }

    #[test]
    fn to_workload_preserves_grouping_and_means() {
        let ts = TraceSet::generate(
            &[1.0, 2.0, 3.0, 4.0],
            &[0.1, 0.2, 0.3, 0.4],
            ClassTargets {
                mean: 2.5,
                std_dev: 20.0,
            },
            ClassTargets {
                mean: 0.25,
                std_dev: 2.0,
            },
            vec![2, 2],
            vec!["p".into(), "q".into()],
            2000,
            1000,
            11,
        );
        let w = ts.to_workload();
        assert_eq!(w.num_apps(), 2);
        assert_eq!(w.num_threads(), 4);
        // realized total rate must be positive everywhere
        let (c, m) = w.rate_vectors();
        assert!(c.iter().zip(&m).all(|(a, b)| a + b > 0.0));
    }

    #[test]
    fn zero_traffic_class_yields_zero_traces() {
        let ts = TraceSet::generate(
            &flat_means(4, 1.0),
            &flat_means(4, 0.0),
            ClassTargets {
                mean: 1.0,
                std_dev: 5.0,
            },
            ClassTargets {
                mean: 0.0,
                std_dev: 0.0,
            },
            vec![4],
            vec!["x".into()],
            50,
            1000,
            0,
        );
        for t in &ts.traces {
            assert!(t.mem.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn heterogeneous_design_means_are_preserved_per_thread() {
        let means = [1.0, 2.0, 4.0, 8.0];
        let ts = TraceSet::generate(
            &means,
            &[0.1, 0.2, 0.4, 0.8],
            ClassTargets {
                mean: 3.75,
                std_dev: 40.0,
            },
            ClassTargets {
                mean: 0.375,
                std_dev: 4.0,
            },
            vec![4],
            vec!["x".into()],
            100_000,
            1000,
            5,
        );
        for (tr, &r) in ts.traces.iter().zip(&means) {
            let realized = tr.mean_cache_rate();
            assert!(
                (realized - r).abs() / r < 0.15,
                "design {r} realized {realized}"
            );
        }
    }
}
