//! PARSEC-like application profiles.
//!
//! Each profile is a small parametric description of a multithreaded
//! application's communication behaviour: how heavy its shared-cache traffic
//! is, how skewed the load is across its threads (data-parallel codes are
//! even; pipeline codes have hot stages), and how large its
//! memory-to-cache traffic ratio is. The constants are synthetic but chosen
//! to span the qualitative range PARSEC 2.0 exhibits, from the light
//! `swaptions-like` to the streaming-heavy `streamcluster-like`.

use serde::{Deserialize, Serialize};

/// Parametric communication profile of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Name, suffixed "-like" to make the synthetic provenance explicit.
    pub name: &'static str,
    /// Relative total cache-traffic weight (dimensionless; scaled by the
    /// configuration calibration).
    pub cache_weight: f64,
    /// Pareto tail index of the per-thread load skew; smaller = more skewed
    /// (a hot master/pipeline-stage thread).
    pub skew_alpha: f64,
    /// Memory-to-cache request-rate ratio `m_j / c_j` for this application.
    /// The paper reports cache traffic 6.78× memory traffic on average,
    /// i.e. ratios around 0.15.
    pub mem_ratio: f64,
}

/// The built-in profile library, loosely following PARSEC 2.0's
/// characterization (Bienia et al., PACT'08): relative traffic intensities
/// and per-thread balance differ per code.
pub const PROFILES: &[AppProfile] = &[
    AppProfile {
        name: "blackscholes-like",
        cache_weight: 0.45,
        skew_alpha: 4.0,
        mem_ratio: 0.12,
    },
    AppProfile {
        name: "bodytrack-like",
        cache_weight: 1.00,
        skew_alpha: 2.2,
        mem_ratio: 0.14,
    },
    AppProfile {
        name: "canneal-like",
        cache_weight: 2.20,
        skew_alpha: 1.6,
        mem_ratio: 0.22,
    },
    AppProfile {
        name: "dedup-like",
        cache_weight: 1.60,
        skew_alpha: 1.4,
        mem_ratio: 0.18,
    },
    AppProfile {
        name: "facesim-like",
        cache_weight: 1.30,
        skew_alpha: 2.8,
        mem_ratio: 0.15,
    },
    AppProfile {
        name: "ferret-like",
        cache_weight: 1.50,
        skew_alpha: 1.5,
        mem_ratio: 0.16,
    },
    AppProfile {
        name: "fluidanimate-like",
        cache_weight: 0.90,
        skew_alpha: 3.0,
        mem_ratio: 0.13,
    },
    AppProfile {
        name: "freqmine-like",
        cache_weight: 1.10,
        skew_alpha: 2.0,
        mem_ratio: 0.14,
    },
    AppProfile {
        name: "streamcluster-like",
        cache_weight: 2.60,
        skew_alpha: 2.5,
        mem_ratio: 0.24,
    },
    AppProfile {
        name: "swaptions-like",
        cache_weight: 0.35,
        skew_alpha: 5.0,
        mem_ratio: 0.10,
    },
    AppProfile {
        name: "vips-like",
        cache_weight: 1.20,
        skew_alpha: 1.8,
        mem_ratio: 0.15,
    },
    AppProfile {
        name: "x264-like",
        cache_weight: 1.80,
        skew_alpha: 1.3,
        mem_ratio: 0.17,
    },
];

impl AppProfile {
    /// Look a profile up by name.
    pub fn by_name(name: &str) -> Option<&'static AppProfile> {
        PROFILES.iter().find(|p| p.name == name)
    }

    /// Relative per-thread weights for `n` threads: a deterministic
    /// Pareto-shaped ramp `w_t = (t+1)^(-1/alpha)` normalized to mean 1.
    /// Thread 0 is the hottest (master/first pipeline stage). Deterministic
    /// so that a profile always describes the same application; stochastic
    /// burstiness lives in the trace generator, not here.
    pub fn thread_weights(&self, n: usize) -> Vec<f64> {
        assert!(n > 0);
        let raw: Vec<f64> = (0..n)
            .map(|t| ((t + 1) as f64).powf(-1.0 / self.skew_alpha))
            .collect();
        let mean = raw.iter().sum::<f64>() / n as f64;
        raw.iter().map(|w| w / mean).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinctly_named() {
        let mut names: Vec<_> = PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PROFILES.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(AppProfile::by_name("canneal-like").is_some());
        assert!(AppProfile::by_name("doom-like").is_none());
    }

    #[test]
    fn weights_mean_one_and_decreasing() {
        for p in PROFILES {
            let w = p.thread_weights(16);
            let mean = w.iter().sum::<f64>() / 16.0;
            assert!((mean - 1.0).abs() < 1e-12, "{}", p.name);
            for pair in w.windows(2) {
                assert!(pair[0] >= pair[1], "{} weights not monotone", p.name);
            }
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn lower_alpha_is_more_skewed() {
        let skewed = AppProfile::by_name("x264-like").unwrap().thread_weights(16);
        let even = AppProfile::by_name("swaptions-like")
            .unwrap()
            .thread_weights(16);
        // ratio of hottest to coldest thread
        let skew_ratio = skewed[0] / skewed[15];
        let even_ratio = even[0] / even[15];
        assert!(skew_ratio > even_ratio);
    }

    #[test]
    fn single_thread_weight_is_one() {
        let w = PROFILES[0].thread_weights(1);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn mem_ratios_match_paper_scale() {
        // Paper: cache rate is on average 6.78× the memory rate, i.e. the
        // library's mean ratio should be near 1/6.78 ≈ 0.1475.
        let mean: f64 = PROFILES.iter().map(|p| p.mem_ratio).sum::<f64>() / PROFILES.len() as f64;
        assert!((0.10..0.20).contains(&mean), "mean ratio {mean}");
    }
}
