//! Streaming sample statistics (Welford's algorithm).
//!
//! Used to characterize generated traces against the paper's Table 3 and to
//! compute the evaluation metrics' standard deviations without materializing
//! intermediate vectors.

/// Accumulator for mean / variance / extremes of a stream of samples.
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SampleStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        SampleStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every sample of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Build directly from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = SampleStats::new();
        s.extend(xs);
        s
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty stream).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`), matching how a trace's
    /// "standard deviation of communication rates" is reported.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`+inf` for an empty stream).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-inf` for an empty stream).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Population standard deviation of a slice — convenience for the dev-APL
/// metric.
pub fn std_dev(xs: &[f64]) -> f64 {
    SampleStats::from_slice(xs).std_dev()
}

/// Arithmetic mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    SampleStats::from_slice(xs).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stream() {
        let s = SampleStats::from_slice(&[3.0; 100]);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!(s.std_dev() < 1e-12);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn known_variance() {
        // {0, 0, 0, 4}: mean 1, population variance (1+1+1+9)/4 = 3.
        let s = SampleStats::from_slice(&[0.0, 0.0, 0.0, 4.0]);
        assert!((s.mean() - 1.0).abs() < 1e-12);
        assert!((s.variance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let s = SampleStats::from_slice(&xs);
        let mu = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mu).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn empty_stream_is_zeroed() {
        let s = SampleStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn helpers() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 1.0]) - 0.0).abs() < 1e-12);
    }
}
