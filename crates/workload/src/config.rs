//! The paper's evaluation configurations C1–C8 and a general builder.
//!
//! Each configuration is four 16-thread applications on the 8×8 mesh;
//! Table 3 of the paper gives the average and standard deviation of the
//! cache and memory communication rates for each. [`PaperConfig`] carries
//! those targets; [`WorkloadBuilder`] turns a target set plus a choice of
//! application profiles into calibrated traces and a [`Workload`].

use crate::profile::{AppProfile, PROFILES};
use crate::trace::{ClassTargets, TraceSet};
use crate::Workload;
use serde::{Deserialize, Serialize};

/// One of the eight evaluation configurations of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperConfig {
    C1,
    C2,
    C3,
    C4,
    C5,
    C6,
    C7,
    C8,
}

impl PaperConfig {
    /// All eight configurations in order.
    pub const ALL: [PaperConfig; 8] = [
        PaperConfig::C1,
        PaperConfig::C2,
        PaperConfig::C3,
        PaperConfig::C4,
        PaperConfig::C5,
        PaperConfig::C6,
        PaperConfig::C7,
        PaperConfig::C8,
    ];

    /// Display name ("C1".."C8").
    pub fn name(self) -> &'static str {
        match self {
            PaperConfig::C1 => "C1",
            PaperConfig::C2 => "C2",
            PaperConfig::C3 => "C3",
            PaperConfig::C4 => "C4",
            PaperConfig::C5 => "C5",
            PaperConfig::C6 => "C6",
            PaperConfig::C7 => "C7",
            PaperConfig::C8 => "C8",
        }
    }

    /// Table 3 calibration targets: `(cache, memory)` trace-sample
    /// statistics.
    pub fn targets(self) -> (ClassTargets, ClassTargets) {
        let (ca, cs, ma, ms) = match self {
            PaperConfig::C1 => (7.008, 88.3, 0.899, 9.84),
            PaperConfig::C2 => (1.8855, 17.52, 0.381, 2.21),
            PaperConfig::C3 => (10.881, 112.34, 1.51, 18.42),
            PaperConfig::C4 => (11.063, 107.27, 1.548, 17.56),
            PaperConfig::C5 => (9.04, 129.27, 1.371, 19.91),
            PaperConfig::C6 => (9.222, 125.81, 1.409, 19.21),
            PaperConfig::C7 => (1.992, 14.69, 0.399, 2.01),
            PaperConfig::C8 => (8.881, 131.87, 1.334, 20.45),
        };
        (
            ClassTargets {
                mean: ca,
                std_dev: cs,
            },
            ClassTargets {
                mean: ma,
                std_dev: ms,
            },
        )
    }

    /// The four application profiles mixed in this configuration. Heavier
    /// configurations draw from the traffic-heavy end of the library, so
    /// the per-application total rates spread as in the paper (applications
    /// are later renumbered 1–4 in ascending rate order).
    pub fn profiles(self) -> [&'static AppProfile; 4] {
        let pick = |names: [&str; 4]| names.map(|n| AppProfile::by_name(n).expect("known profile"));
        match self {
            PaperConfig::C1 => pick([
                "blackscholes-like",
                "bodytrack-like",
                "canneal-like",
                "streamcluster-like",
            ]),
            PaperConfig::C2 => pick([
                "swaptions-like",
                "blackscholes-like",
                "fluidanimate-like",
                "freqmine-like",
            ]),
            PaperConfig::C3 => pick([
                "blackscholes-like",
                "facesim-like",
                "x264-like",
                "streamcluster-like",
            ]),
            PaperConfig::C4 => pick(["swaptions-like", "vips-like", "dedup-like", "canneal-like"]),
            PaperConfig::C5 => pick([
                "swaptions-like",
                "ferret-like",
                "dedup-like",
                "canneal-like",
            ]),
            PaperConfig::C6 => pick([
                "blackscholes-like",
                "freqmine-like",
                "ferret-like",
                "streamcluster-like",
            ]),
            PaperConfig::C7 => pick([
                "swaptions-like",
                "blackscholes-like",
                "bodytrack-like",
                "facesim-like",
            ]),
            PaperConfig::C8 => pick([
                "swaptions-like",
                "facesim-like",
                "x264-like",
                "canneal-like",
            ]),
        }
    }
}

/// Builds a calibrated [`Workload`] + [`TraceSet`] from profiles and
/// targets. The paper's configurations are `WorkloadBuilder::paper(cfg)`;
/// custom mixes (different mesh sizes, thread counts, app counts) use
/// [`WorkloadBuilder::custom`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    profiles: Vec<&'static AppProfile>,
    threads_per_app: usize,
    cache_targets: ClassTargets,
    mem_targets: ClassTargets,
    epochs: usize,
    epoch_cycles: u64,
    seed: u64,
}

impl WorkloadBuilder {
    /// Builder for one of the paper's C1–C8 configurations: 4 apps × 16
    /// threads, Table 3 targets.
    pub fn paper(cfg: PaperConfig) -> Self {
        let (cache_targets, mem_targets) = cfg.targets();
        WorkloadBuilder {
            profiles: cfg.profiles().to_vec(),
            threads_per_app: 16,
            cache_targets,
            mem_targets,
            epochs: 20_000,
            epoch_cycles: 1_000,
            seed: 0x0b1ced + cfg as u64,
        }
    }

    /// Fully custom builder.
    pub fn custom(
        profiles: Vec<&'static AppProfile>,
        threads_per_app: usize,
        cache_targets: ClassTargets,
        mem_targets: ClassTargets,
    ) -> Self {
        assert!(!profiles.is_empty() && threads_per_app > 0);
        WorkloadBuilder {
            profiles,
            threads_per_app,
            cache_targets,
            mem_targets,
            epochs: 20_000,
            epoch_cycles: 1_000,
            seed: 0,
        }
    }

    /// Override the RNG seed (default derives from the configuration).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the number of trace epochs (default 20 000).
    pub fn epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0);
        self.epochs = epochs;
        self
    }

    /// Override the epoch length in cycles (default 1000).
    pub fn epoch_cycles(mut self, cycles: u64) -> Self {
        assert!(cycles > 0);
        self.epoch_cycles = cycles;
        self
    }

    /// Total threads this builder will produce.
    pub fn num_threads(&self) -> usize {
        self.profiles.len() * self.threads_per_app
    }

    /// Generate the calibrated trace set.
    pub fn build_traces(&self) -> TraceSet {
        let n_apps = self.profiles.len();
        let tpa = self.threads_per_app;
        // Design means: profile weight × per-thread skew, normalized so the
        // pooled mean equals the target mean.
        let mut cache_means = Vec::with_capacity(n_apps * tpa);
        let mut mem_means = Vec::with_capacity(n_apps * tpa);
        for p in &self.profiles {
            for w in p.thread_weights(tpa) {
                let c = p.cache_weight * w;
                cache_means.push(c);
                mem_means.push(c * p.mem_ratio);
            }
        }
        normalize_mean(&mut cache_means, self.cache_targets.mean);
        normalize_mean(&mut mem_means, self.mem_targets.mean);
        TraceSet::generate(
            &cache_means,
            &mem_means,
            self.cache_targets,
            self.mem_targets,
            vec![tpa; n_apps],
            self.profiles.iter().map(|p| p.name.to_string()).collect(),
            self.epochs,
            self.epoch_cycles,
            self.seed,
        )
    }

    /// Generate traces and collapse them into a workload in one step.
    pub fn build(&self) -> (Workload, TraceSet) {
        let traces = self.build_traces();
        (traces.to_workload(), traces)
    }
}

/// Scale a vector so its mean equals `target` (no-op for a zero target).
fn normalize_mean(xs: &mut [f64], target: f64) {
    let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    if mean > 0.0 && target > 0.0 {
        let k = target / mean;
        for x in xs.iter_mut() {
            *x *= k;
        }
    } else {
        xs.iter_mut().for_each(|x| *x = 0.0);
    }
}

/// A quick default workload for examples: C1 with a fixed seed.
pub fn example_workload() -> Workload {
    WorkloadBuilder::paper(PaperConfig::C1).build().0
}

/// Sanity helper: a profile mix drawn round-robin from the full library for
/// arbitrary app counts (used by scaling benches beyond 4 apps).
pub fn round_robin_profiles(n_apps: usize) -> Vec<&'static AppProfile> {
    (0..n_apps).map(|i| &PROFILES[i % PROFILES.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_builder_dimensions() {
        let (w, ts) = WorkloadBuilder::paper(PaperConfig::C1).build();
        assert_eq!(w.num_apps(), 4);
        assert_eq!(w.num_threads(), 64);
        assert_eq!(ts.num_threads(), 64);
        assert_eq!(w.boundaries(), vec![0, 16, 32, 48, 64]);
    }

    #[test]
    fn all_configs_calibrate_within_tolerance() {
        for cfg in PaperConfig::ALL {
            let (cache_t, mem_t) = cfg.targets();
            let ts = WorkloadBuilder::paper(cfg).build_traces();
            let cs = ts.cache_stats();
            let ms = ts.mem_stats();
            assert!(
                (cs.mean() - cache_t.mean).abs() / cache_t.mean < 0.10,
                "{}: cache mean {} vs {}",
                cfg.name(),
                cs.mean(),
                cache_t.mean
            );
            assert!(
                (cs.std_dev() - cache_t.std_dev).abs() / cache_t.std_dev < 0.10,
                "{}: cache std {} vs {}",
                cfg.name(),
                cs.std_dev(),
                cache_t.std_dev
            );
            assert!(
                (ms.mean() - mem_t.mean).abs() / mem_t.mean < 0.10,
                "{}: mem mean {} vs {}",
                cfg.name(),
                ms.mean(),
                mem_t.mean
            );
            assert!(
                (ms.std_dev() - mem_t.std_dev).abs() / mem_t.std_dev < 0.10,
                "{}: mem std {} vs {}",
                cfg.name(),
                ms.std_dev(),
                mem_t.std_dev
            );
        }
    }

    #[test]
    fn apps_have_distinct_total_rates() {
        let (w, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
        let rates: Vec<f64> = w.apps.iter().map(|a| a.total_rate()).collect();
        for pair in rates.windows(2) {
            assert!(pair[0] < pair[1], "apps not strictly ascending: {rates:?}");
        }
    }

    #[test]
    fn cache_dominates_memory_traffic() {
        // Paper: cache rate ≈ 6.78× memory rate on average across configs.
        let mut ratios = Vec::new();
        for cfg in PaperConfig::ALL {
            let (cache_t, mem_t) = cfg.targets();
            ratios.push(cache_t.mean / mem_t.mean);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((6.0..7.5).contains(&mean), "mean cache:mem ratio {mean}");
    }

    #[test]
    fn deterministic_per_config() {
        let a = WorkloadBuilder::paper(PaperConfig::C3).build().0;
        let b = WorkloadBuilder::paper(PaperConfig::C3).build().0;
        assert_eq!(a, b);
        let c = WorkloadBuilder::paper(PaperConfig::C3).seed(99).build().0;
        assert_ne!(a, c);
    }

    #[test]
    fn custom_builder_respects_dimensions() {
        let (cache_t, mem_t) = PaperConfig::C2.targets();
        let b = WorkloadBuilder::custom(round_robin_profiles(6), 8, cache_t, mem_t)
            .epochs(2000)
            .seed(5);
        assert_eq!(b.num_threads(), 48);
        let (w, _) = b.build();
        assert_eq!(w.num_apps(), 6);
        assert_eq!(w.num_threads(), 48);
    }
}
