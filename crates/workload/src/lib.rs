//! Synthetic multi-application workloads for the OBM mapping problem.
//!
//! The paper drives its evaluation with traces gathered from PARSEC 2.0
//! benchmarks under Simics/GEMS full-system simulation. That toolchain is
//! not available here, so this crate is the documented substitution
//! (DESIGN.md §4.1): a generator of **bursty per-thread request-rate
//! traces** whose sample statistics are calibrated to the paper's Table 3,
//! organised into the eight 4-application × 16-thread configurations
//! C1–C8.
//!
//! What downstream consumers use:
//!
//! * the mapping algorithms consume per-thread *average* rates
//!   `(c_j, m_j)` — [`Workload::rate_vectors`];
//! * the cycle-level simulator consumes the epoch traces as injection
//!   schedules — [`trace::ThreadTrace`];
//! * the experiment harness reports Table 3 statistics —
//!   [`stats::SampleStats`].
//!
//! Rates are expressed in **requests per kilocycle**: Table 3's magnitudes
//! (≈2–11 for cache traffic) then correspond to per-tile injection rates of
//! 0.002–0.011 packets/cycle, the uncongested regime in which the paper
//! observes `td_q ≈ 0–1` cycles.

pub mod config;
pub mod monitor;
pub mod profile;
pub mod stats;
pub mod trace;

pub use config::{PaperConfig, WorkloadBuilder};
pub use monitor::RateMonitor;
pub use profile::AppProfile;
pub use trace::{ThreadTrace, TraceSet};

use serde::{Deserialize, Serialize};

/// Average request rates of one thread (requests per kilocycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadLoad {
    /// Shared-L2-cache request rate `c_j`.
    pub cache_rate: f64,
    /// Memory-controller request rate `m_j`.
    pub mem_rate: f64,
}

impl ThreadLoad {
    /// Total request rate of this thread.
    #[inline]
    pub fn total(&self) -> f64 {
        self.cache_rate + self.mem_rate
    }
}

/// One application: a named group of threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Human-readable name (e.g. the PARSEC-like profile it was drawn from).
    pub name: String,
    /// Per-thread average loads.
    pub threads: Vec<ThreadLoad>,
}

impl Application {
    /// Total communication rate (cache + memory) over all threads.
    pub fn total_rate(&self) -> f64 {
        self.threads.iter().map(ThreadLoad::total).sum()
    }

    /// Total cache request rate over all threads.
    pub fn total_cache_rate(&self) -> f64 {
        self.threads.iter().map(|t| t.cache_rate).sum()
    }

    /// Total memory request rate over all threads.
    pub fn total_mem_rate(&self) -> f64 {
        self.threads.iter().map(|t| t.mem_rate).sum()
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

/// A set of concurrently running applications — the input of the
/// multi-application mapping problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Applications, in the paper's convention sorted in ascending order of
    /// total communication rate (Application 1 is the lightest).
    pub apps: Vec<Application>,
}

impl Workload {
    /// Build from applications, sorting them in ascending order of total
    /// communication rate as the paper does for its figures.
    pub fn new(mut apps: Vec<Application>) -> Self {
        apps.sort_by(|a, b| {
            a.total_rate()
                .partial_cmp(&b.total_rate())
                .expect("rates are finite")
        });
        Workload { apps }
    }

    /// Total number of threads across applications.
    pub fn num_threads(&self) -> usize {
        self.apps.iter().map(Application::num_threads).sum()
    }

    /// Number of applications.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Flattened `(c, m)` rate vectors, threads of application `a_1` first
    /// (the paper's thread-index convention of Section III.B).
    pub fn rate_vectors(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.num_threads();
        let mut c = Vec::with_capacity(n);
        let mut m = Vec::with_capacity(n);
        for app in &self.apps {
            for t in &app.threads {
                c.push(t.cache_rate);
                m.push(t.mem_rate);
            }
        }
        (c, m)
    }

    /// Application boundary indices `N_0 = 0, N_1, …, N_A` (paper §III.B):
    /// application `i` owns threads `N_{i-1} .. N_i`.
    pub fn boundaries(&self) -> Vec<usize> {
        let mut b = Vec::with_capacity(self.apps.len() + 1);
        b.push(0);
        let mut acc = 0;
        for app in &self.apps {
            acc += app.num_threads();
            b.push(acc);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(name: &str, rates: &[(f64, f64)]) -> Application {
        Application {
            name: name.into(),
            threads: rates
                .iter()
                .map(|&(c, m)| ThreadLoad {
                    cache_rate: c,
                    mem_rate: m,
                })
                .collect(),
        }
    }

    #[test]
    fn workload_sorts_ascending_by_total_rate() {
        let w = Workload::new(vec![
            app("heavy", &[(10.0, 1.0), (10.0, 1.0)]),
            app("light", &[(1.0, 0.1), (1.0, 0.1)]),
        ]);
        assert_eq!(w.apps[0].name, "light");
        assert_eq!(w.apps[1].name, "heavy");
    }

    #[test]
    fn boundaries_and_vectors_consistent() {
        let w = Workload::new(vec![
            app("a", &[(1.0, 0.1), (2.0, 0.2)]),
            app("b", &[(3.0, 0.3), (4.0, 0.4), (5.0, 0.5)]),
        ]);
        assert_eq!(w.num_threads(), 5);
        assert_eq!(w.boundaries(), vec![0, 2, 5]);
        let (c, m) = w.rate_vectors();
        assert_eq!(c.len(), 5);
        assert_eq!(m.len(), 5);
        assert_eq!(c[0], 1.0);
        assert_eq!(m[4], 0.5);
    }

    #[test]
    fn totals() {
        let a = app("x", &[(1.0, 0.5), (2.0, 0.25)]);
        assert!((a.total_cache_rate() - 3.0).abs() < 1e-12);
        assert!((a.total_mem_rate() - 0.75).abs() < 1e-12);
        assert!((a.total_rate() - 3.75).abs() < 1e-12);
    }
}
