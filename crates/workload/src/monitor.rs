//! Runtime rate estimation — the statistics-collection step of the
//! paper's dynamic scenario (§IV.B): *"we simply collect the {c_j} and
//! {m_j} statistics at runtime during a certain interval after some
//! applications are added/removed, and then solve the OBM problem"*.
//!
//! [`RateMonitor`] plays that collector against a [`TraceSet`]: it
//! averages a window of epochs per thread and produces the `(c_j, m_j)`
//! estimates a real hardware counter would hand to the mapper. Because
//! the traces are bursty, the window length controls the bias/variance
//! trade-off; [`RateMonitor::mean_relative_error`] quantifies it.

use crate::trace::TraceSet;
use crate::{Application, ThreadLoad, Workload};

/// Sliding-window rate estimator over epoch traces.
#[derive(Debug, Clone, Copy)]
pub struct RateMonitor {
    /// First epoch of the observation window.
    pub start_epoch: usize,
    /// Number of epochs observed.
    pub window: usize,
}

impl RateMonitor {
    /// Monitor observing `window` epochs from `start_epoch` (wrapping
    /// around the trace if needed, as a steady-state workload would).
    pub fn new(start_epoch: usize, window: usize) -> Self {
        assert!(window > 0, "empty observation window");
        RateMonitor {
            start_epoch,
            window,
        }
    }

    /// Windowed mean of one epoch series.
    fn window_mean(&self, series: &[f64]) -> f64 {
        let n = series.len();
        debug_assert!(n > 0);
        let sum: f64 = (0..self.window)
            .map(|i| series[(self.start_epoch + i) % n])
            .sum();
        sum / self.window as f64
    }

    /// Estimate one thread's load.
    pub fn estimate_thread(&self, traces: &TraceSet, thread: usize) -> ThreadLoad {
        let tr = &traces.traces[thread];
        ThreadLoad {
            cache_rate: self.window_mean(&tr.cache),
            mem_rate: self.window_mean(&tr.mem),
        }
    }

    /// Estimate the whole workload (grouped per application, sorted
    /// ascending by total rate like [`Workload::new`]).
    pub fn estimate_workload(&self, traces: &TraceSet) -> Workload {
        let mut apps = Vec::with_capacity(traces.app_sizes.len());
        let mut idx = 0;
        for (size, name) in traces.app_sizes.iter().zip(&traces.app_names) {
            let threads = (idx..idx + size)
                .map(|j| self.estimate_thread(traces, j))
                .collect();
            idx += size;
            apps.push(Application {
                name: name.clone(),
                threads,
            });
        }
        Workload::new(apps)
    }

    /// Mean relative error of the windowed per-thread cache-rate estimates
    /// against the full-trace means — the convergence metric used to size
    /// the collection interval.
    pub fn mean_relative_error(&self, traces: &TraceSet) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (j, tr) in traces.traces.iter().enumerate() {
            let truth = tr.mean_cache_rate();
            if truth <= 0.0 {
                continue;
            }
            let est = self.estimate_thread(traces, j).cache_rate;
            total += (est - truth).abs() / truth;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PaperConfig, WorkloadBuilder};

    fn traces() -> TraceSet {
        WorkloadBuilder::paper(PaperConfig::C2).build_traces()
    }

    #[test]
    fn full_window_equals_trace_means() {
        let ts = traces();
        let epochs = ts.traces[0].epochs();
        let mon = RateMonitor::new(0, epochs);
        for j in [0usize, 17, 63] {
            let est = mon.estimate_thread(&ts, j);
            assert!((est.cache_rate - ts.traces[j].mean_cache_rate()).abs() < 1e-9);
            assert!((est.mem_rate - ts.traces[j].mean_mem_rate()).abs() < 1e-9);
        }
    }

    #[test]
    fn longer_windows_reduce_error() {
        let ts = traces();
        let short = RateMonitor::new(100, 50).mean_relative_error(&ts);
        let long = RateMonitor::new(100, 5_000).mean_relative_error(&ts);
        assert!(
            long < short,
            "window 5000 error {long} not below window 50 error {short}"
        );
    }

    #[test]
    fn estimated_workload_has_right_shape() {
        let ts = traces();
        let w = RateMonitor::new(0, 2_000).estimate_workload(&ts);
        assert_eq!(w.num_apps(), 4);
        assert_eq!(w.num_threads(), 64);
        let (c, m) = w.rate_vectors();
        assert!(c.iter().zip(&m).all(|(a, b)| a + b > 0.0));
    }

    #[test]
    fn window_wraps_around_trace_end() {
        let ts = traces();
        let epochs = ts.traces[0].epochs();
        let mon = RateMonitor::new(epochs - 10, 20); // wraps
        let est = mon.estimate_thread(&ts, 0);
        assert!(est.cache_rate.is_finite() && est.cache_rate >= 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = RateMonitor::new(0, 0);
    }
}
