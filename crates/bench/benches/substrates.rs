//! Substrate benches: the Hungarian solver's `O(n³)` scaling, incremental
//! vs from-scratch APL evaluation, trace generation, and simulator
//! throughput.

use assignment::CostMatrix;
use cmp_cache::address::AddressPattern;
use cmp_cache::system::{CacheAppSpec, CmpSystem, SystemConfig, ThreadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_model::TileId;
use obm_bench::harness::paper_instance;
use obm_core::{evaluate, IncrementalEvaluator, Mapping};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::PaperConfig;

fn hungarian_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [16usize, 64, 128, 256] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let mut m = CostMatrix::zeros(n, n);
        for r in 0..n {
            for col in 0..n {
                m.set(r, col, rng.gen_range(0.0..100.0));
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| m.solve())
        });
    }
    group.finish();
}

fn evaluation(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let mapping = Mapping::identity(64);
    c.bench_function("evaluate_from_scratch", |b| {
        b.iter(|| evaluate(&pi.instance, &mapping))
    });
    c.bench_function("incremental_swap_and_max_apl", |b| {
        let mut ev = IncrementalEvaluator::new(&pi.instance, mapping.clone());
        b.iter(|| {
            ev.swap_tiles(TileId(3), TileId(40));
            let v = ev.max_apl();
            ev.swap_tiles(TileId(3), TileId(40));
            v
        })
    });
}

fn trace_generation(c: &mut Criterion) {
    c.bench_function("workload_c1_build_2k_epochs", |b| {
        b.iter(|| {
            workload::WorkloadBuilder::paper(PaperConfig::C1)
                .epochs(2_000)
                .build()
        })
    });
}

fn cache_hierarchy(c: &mut Criterion) {
    let mesh = noc_model::Mesh::square(4);
    c.bench_function("cmp_cache_20_epochs", |b| {
        b.iter(|| {
            let cfg = SystemConfig {
                epochs: 20,
                ..SystemConfig::paper_defaults(mesh)
            };
            let app = CacheAppSpec {
                name: "bench".into(),
                threads: (0..8)
                    .map(|i| ThreadSpec {
                        accesses_per_kilocycle: 500.0,
                        write_fraction: 0.2,
                        line_reuse: 8,
                        private: AddressPattern::working_set(
                            0x1000_0000 + i * 0x0100_20C0,
                            2_000,
                            0.8,
                        ),
                        shared_fraction: 0.05,
                    })
                    .collect(),
                shared: AddressPattern::working_set(0x9000_0000, 128, 0.9),
            };
            CmpSystem::new(cfg, vec![app]).run()
        })
    });
}

fn exact_solver(c: &mut Criterion) {
    use obm_core::algorithms::{BranchAndBound, Mapper};
    let pi = paper_instance(PaperConfig::C2);
    // full 8×8 proof is out of reach; bench the 4×4 proof.
    let mesh = noc_model::Mesh::square(4);
    let mcs = noc_model::MemoryControllers::corners(&mesh);
    let tl =
        noc_model::TileLatencies::compute(&mesh, &mcs, noc_model::LatencyParams::paper_table2());
    let mut rng = SmallRng::seed_from_u64(1);
    let c16: Vec<f64> = (0..16).map(|_| rng.gen_range(0.3..3.0)).collect();
    let m16: Vec<f64> = c16.iter().map(|x| x * 0.15).collect();
    let inst = obm_core::ObmInstance::new(tl, vec![0, 4, 8, 12, 16], c16, m16);
    c.bench_function("bnb_prove_optimality_4x4", |b| {
        b.iter(|| {
            BranchAndBound::default().solve_budgeted(&inst, &obm_core::CancelToken::never(), None)
        })
    });
    let _ = pi;
    let mut group = c.benchmark_group("bnb_vs_sss");
    group.bench_function("sss_4x4", |b| {
        b.iter(|| obm_core::algorithms::SortSelectSwap::default().map(&inst, 0))
    });
    group.finish();
}

criterion_group!(
    benches,
    hungarian_scaling,
    evaluation,
    trace_generation,
    cache_hierarchy,
    exact_solver
);
criterion_main!(benches);
