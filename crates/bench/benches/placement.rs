//! Cost of the outer placement search (DESIGN.md §15): an exhaustive
//! sweep over the 252 canonical 4-controller placements of a 4×4 chip
//! with a sort-select-swap inner solve per candidate, and the annealed
//! outer loop at the default iteration budget. Alongside the timings the
//! bench emits two quality lines in the same `label time: N ns/iter`
//! shape — corner-default and best-found max-APL in millicycles — so
//! `scripts/bench_snapshot.sh` can derive `placement_gain_pct` from the
//! same run that produced the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use obm_core::placement::{co_optimize, sss_inner, PlacementOptions, SearchMode};
use obm_core::ObmInstance;

/// The fixed configuration of `experiments placement`: four 4-thread
/// apps on a 4×4 chip, app 4 the most memory-intensive.
fn sweep_instance() -> (ObmInstance, Mesh) {
    let mesh = Mesh::square(4);
    let c: Vec<f64> = (0..16).map(|j| 1.0 + 0.5 * (j % 4) as f64).collect();
    let m: Vec<f64> = (0..16).map(|j| 0.2 + 0.15 * (j / 4) as f64).collect();
    let bounds = vec![0, 4, 8, 12, 16];
    let tl = TileLatencies::compute(
        &mesh,
        &MemoryControllers::corners(&mesh),
        LatencyParams::paper_table2(),
    );
    (ObmInstance::new(tl, bounds, c, m), mesh)
}

fn placement_outer(c: &mut Criterion) {
    let (inst, mesh) = sweep_instance();
    let mut group = c.benchmark_group("placement_outer_4x4");
    group.sample_size(10);
    group.bench_function("exhaustive_252_layouts", |b| {
        let mut opts = PlacementOptions::new(4);
        opts.mode = SearchMode::Exhaustive;
        b.iter(|| {
            co_optimize(&inst, &mesh, &opts, sss_inner)
                .expect("4 controllers on a 4x4 mesh is a valid search")
                .objective
        })
    });
    group.bench_function("annealed_400_iters", |b| {
        let mut opts = PlacementOptions::new(4);
        opts.mode = SearchMode::Annealed { iterations: 400 };
        b.iter(|| {
            co_optimize(&inst, &mesh, &opts, sss_inner)
                .expect("4 controllers on a 4x4 mesh is a valid search")
                .objective
        })
    });
    group.finish();

    // Quality metrics, printed in the criterion-stub line format so the
    // snapshot script's awk pass collects them next to the timings.
    let mut opts = PlacementOptions::new(4);
    opts.mode = SearchMode::Exhaustive;
    let out = co_optimize(&inst, &mesh, &opts, sss_inner)
        .expect("4 controllers on a 4x4 mesh is a valid search");
    let corner = (out.baseline_objective * 1000.0).round() as u64;
    let best = (out.objective * 1000.0).round() as u64;
    println!("placement_outer_4x4/corner_maxapl_millicycles time: {corner} ns/iter (1 samples)");
    println!("placement_outer_4x4/best_maxapl_millicycles time: {best} ns/iter (1 samples)");
}

criterion_group!(benches, placement_outer);
criterion_main!(benches);
