//! Ablation benches: the runtime cost of each SSS design choice
//! (quality impact is reported by `experiments ablation`).

use criterion::{criterion_group, criterion_main, Criterion};
use obm_bench::harness::paper_instance;
use obm_core::algorithms::sss::{SelectionRule, SortSelectSwap};
use obm_core::algorithms::Mapper;
use workload::PaperConfig;

fn sss_variants(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let mut group = c.benchmark_group("sss_variants");
    let base = SortSelectSwap::default();
    let variants: Vec<(&str, SortSelectSwap)> = vec![
        ("default_w4", base),
        ("no_swap_w1", SortSelectSwap { window: 1, ..base }),
        ("window_w2", SortSelectSwap { window: 2, ..base }),
        ("window_w5", SortSelectSwap { window: 5, ..base }),
        (
            "no_final_sam",
            SortSelectSwap {
                final_sam: false,
                ..base
            },
        ),
        (
            "step_cap_1",
            SortSelectSwap {
                max_step: Some(1),
                ..base
            },
        ),
        (
            "select_first",
            SortSelectSwap {
                selection: SelectionRule::First,
                ..base
            },
        ),
    ];
    for (name, cfg) in variants {
        group.bench_function(name, |b| b.iter(|| cfg.map(&pi.instance, 0)));
    }
    group.finish();
}

criterion_group!(benches, sss_variants);
criterion_main!(benches);
