//! Wall-clock throughput of the cycle-level NoC simulator — the
//! bottleneck of every simulation-backed experiment (`validate`,
//! `loadcurve`, `tails`, `nocparams`, ...). Fixed seeds, fixed cycle
//! budgets: numbers are comparable across PRs to track the perf
//! trajectory of the hot loop.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_model::{LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies};
use noc_sim::telemetry::{NoopSink, RingSink};
use noc_sim::{InjectionProcess, Network, Schedule, SimConfig, TrafficSpec};
use obm_bench::harness::paper_instance;
use obm_bench::sim_bridge::{
    simulate_mapping, simulate_mapping_metered, simulate_mapping_probed, simulate_mapping_sharded,
};
use obm_core::algorithms::{Mapper, SortSelectSwap};
use obm_core::{traffic_spec, ObmInstance, RemapConfig, RemapController};
use workload::PaperConfig;

fn uniform_sim_with(
    mesh_side: usize,
    cache_per_kcycle: f64,
    cycles: u64,
    injection: InjectionProcess,
) -> noc_sim::SimReport {
    let mesh = Mesh::square(mesh_side);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.max_drain_cycles = 4 * cycles;
    cfg.seed = 7;
    cfg.injection = injection;
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(cache_per_kcycle),
        Schedule::per_kilocycle(cache_per_kcycle * 0.15),
    );
    Network::new(cfg, traffic).expect("valid scenario").run()
}

fn uniform_sim(mesh_side: usize, cache_per_kcycle: f64, cycles: u64) -> noc_sim::SimReport {
    uniform_sim_with(
        mesh_side,
        cache_per_kcycle,
        cycles,
        InjectionProcess::BernoulliPerCycle,
    )
}

/// The headline number: C1 (8×8, paper Table 3 rates) through the real
/// mapping pipeline, 10k measured cycles.
fn sim_c1_paper_load(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let mapping = SortSelectSwap::default().map(&pi.instance, 0);
    let mut group = c.benchmark_group("noc_sim");
    group.sample_size(10);
    group.bench_function("c1_8x8_10k_cycles", |b| {
        b.iter(|| simulate_mapping(&pi, &mapping, 10_000, 7))
    });
    // The same run on the 4-shard row-band engine (bit-identical result;
    // see tests/shard_determinism.rs). On a single-core host this prices
    // the barrier/channel overhead; on a multi-core host it shows the
    // shard speedup (`bench_snapshot.sh` derives the delta as
    // `shard_delta_pct/c1_8x8_10k_cycles`).
    group.bench_function("c1_8x8_10k_cycles_sharded4", |b| {
        b.iter(|| simulate_mapping_sharded(&pi, &mapping, 10_000, 7, 4))
    });
    // Same run with a full observability probe (windows + flow + heatmap,
    // without per-packet streaming): the delta against the unprobed
    // number above is the cost of spatial telemetry on the hot loop.
    group.bench_function("c1_8x8_10k_cycles_probed", |b| {
        b.iter(|| {
            let mut sink = RingSink::new(64);
            simulate_mapping_probed(&pi, &mapping, 10_000, 7, &mut sink)
        })
    });
    // Same run with a metrics registry attached (DESIGN.md §17): the
    // delta against the unprobed median prices the *enabled* metrics
    // path (`metrics_delta_pct/enabled`); the unprobed median itself,
    // held against the PR 9 baseline, prices the *disabled* path — the
    // never-taken branches must stay within noise
    // (`metrics_delta_pct/disabled`).
    group.bench_function("c1_8x8_10k_cycles_metrics", |b| {
        let registry = noc_metrics::MetricsRegistry::new();
        b.iter(|| simulate_mapping_metered(&pi, &mapping, 10_000, 7, registry.handle()))
    });
    group.finish();
}

/// Load sensitivity of the hot loop: near-idle (paper operating point),
/// mid-load, and heavy (near saturation). The historical `load_*` names
/// keep the default Bernoulli front-end so the series stays comparable
/// across PRs.
fn sim_load_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_sim_uniform_8x8_10k");
    group.sample_size(10);
    group.bench_function("load_0p25", |b| b.iter(|| uniform_sim(8, 0.25, 10_000)));
    group.bench_function("load_2", |b| b.iter(|| uniform_sim(8, 2.0, 10_000)));
    group.bench_function("load_8", |b| b.iter(|| uniform_sim(8, 8.0, 10_000)));
    group.bench_function("load_48", |b| b.iter(|| uniform_sim(8, 48.0, 10_000)));
    group.finish();
}

/// Injection-process comparison at three load levels: the geometric
/// front-end's win is largest where cycles outnumber packets (near-idle,
/// where the fast-forward skips whole quiescent stretches) and shrinks
/// toward parity at saturation (router work dominates both modes).
fn sim_injection_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_sim_geometric_8x8_10k");
    group.sample_size(10);
    group.bench_function("geom_load_0p25", |b| {
        b.iter(|| uniform_sim_with(8, 0.25, 10_000, InjectionProcess::Geometric))
    });
    group.bench_function("geom_load_2", |b| {
        b.iter(|| uniform_sim_with(8, 2.0, 10_000, InjectionProcess::Geometric))
    });
    group.bench_function("geom_load_48", |b| {
        b.iter(|| uniform_sim_with(8, 48.0, 10_000, InjectionProcess::Geometric))
    });
    group.finish();
}

/// Closed-loop controller overhead on the hot loop: the steady
/// (no-drift) 4×4 single-MC scenario run plain and under
/// `run_controlled` with an armed [`RemapController`] whose threshold
/// is set high enough that it never re-solves. The delta between the
/// two medians is the price of *watching* — the per-delivery
/// per-source class accounting plus the per-window controller
/// bookkeeping (`bench_snapshot.sh` derives it as
/// `controlled_delta_pct/steady_4x4_10k`).
fn sim_remap_loadcurve(c: &mut Criterion) {
    let mesh = Mesh::square(4);
    let mcs = MemoryControllers::try_custom(&mesh, vec![TileId(0)]).expect("valid placement");
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let cache: Vec<f64> = [2.0; 4].iter().chain([3.0; 4].iter()).copied().collect();
    let mem: Vec<f64> = [10.0; 4].iter().chain([0.3; 4].iter()).copied().collect();
    let inst = ObmInstance::new(tiles, vec![0, 4, 8], cache, mem);
    let mapping = SortSelectSwap::default().map(&inst, 0);
    let cfg = || {
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(0)]).expect("valid placement");
        cfg.warmup_cycles = 1_000;
        cfg.measure_cycles = 10_000;
        cfg.seed = 7;
        cfg
    };
    let mut group = c.benchmark_group("remap_loadcurve");
    group.sample_size(10);
    group.bench_function("steady_4x4_10k_plain", |b| {
        b.iter(|| {
            Network::new(cfg(), traffic_spec(&inst, &mapping))
                .expect("valid scenario")
                .run()
        })
    });
    group.bench_function("steady_4x4_10k_watched", |b| {
        b.iter(|| {
            let quiet = RemapConfig {
                drift_threshold: 10.0,
                ..RemapConfig::default()
            };
            let mut ctrl = RemapController::with_config(inst.clone(), mapping.clone(), mesh, quiet)
                .expect("valid controller");
            Network::new(cfg(), traffic_spec(&inst, &mapping))
                .expect("valid scenario")
                .run_controlled(&mut NoopSink, &mut ctrl)
                .expect("a quiet controller cannot fail")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    sim_c1_paper_load,
    sim_load_points,
    sim_injection_modes,
    sim_remap_loadcurve
);
criterion_main!(benches);
