//! Wall-clock throughput of the cycle-level NoC simulator — the
//! bottleneck of every simulation-backed experiment (`validate`,
//! `loadcurve`, `tails`, `nocparams`, ...). Fixed seeds, fixed cycle
//! budgets: numbers are comparable across PRs to track the perf
//! trajectory of the hot loop.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_model::Mesh;
use noc_sim::{Network, Schedule, SimConfig, TrafficSpec};
use obm_bench::harness::paper_instance;
use obm_bench::sim_bridge::simulate_mapping;
use obm_core::algorithms::{Mapper, SortSelectSwap};
use workload::PaperConfig;

fn uniform_sim(mesh_side: usize, cache_per_kcycle: f64, cycles: u64) -> noc_sim::SimReport {
    let mesh = Mesh::square(mesh_side);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.max_drain_cycles = 4 * cycles;
    cfg.seed = 7;
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(cache_per_kcycle),
        Schedule::per_kilocycle(cache_per_kcycle * 0.15),
    );
    Network::new(cfg, traffic).expect("valid scenario").run()
}

/// The headline number: C1 (8×8, paper Table 3 rates) through the real
/// mapping pipeline, 10k measured cycles.
fn sim_c1_paper_load(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let mapping = SortSelectSwap::default().map(&pi.instance, 0);
    let mut group = c.benchmark_group("noc_sim");
    group.sample_size(10);
    group.bench_function("c1_8x8_10k_cycles", |b| {
        b.iter(|| simulate_mapping(&pi, &mapping, 10_000, 7))
    });
    group.finish();
}

/// Load sensitivity of the hot loop: near-idle (paper operating point),
/// mid-load, and heavy (near saturation).
fn sim_load_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_sim_uniform_8x8_10k");
    group.sample_size(10);
    group.bench_function("load_2", |b| b.iter(|| uniform_sim(8, 2.0, 10_000)));
    group.bench_function("load_8", |b| b.iter(|| uniform_sim(8, 8.0, 10_000)));
    group.bench_function("load_48", |b| b.iter(|| uniform_sim(8, 48.0, 10_000)));
    group.finish();
}

criterion_group!(benches, sim_c1_paper_load, sim_load_points);
criterion_main!(benches);
