//! Runtime of the four mapping algorithms (the cost axis of Figure 12 and
//! the complexity claims of §IV.B), plus SSS scaling across mesh sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use obm_bench::harness::paper_instance;
use obm_core::algorithms::{Global, Mapper, MonteCarlo, SimulatedAnnealing, SortSelectSwap};
use obm_core::ObmInstance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::PaperConfig;

fn mapper_runtimes(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let mut group = c.benchmark_group("mappers_8x8_c1");
    group.bench_function("SSS", |b| {
        b.iter(|| SortSelectSwap::default().map(&pi.instance, 0))
    });
    group.bench_function("Global", |b| b.iter(|| Global.map(&pi.instance, 0)));
    group.bench_function("MC_1k", |b| {
        b.iter(|| MonteCarlo::with_samples(1_000).map(&pi.instance, 0))
    });
    group.bench_function("SA_10k", |b| {
        b.iter(|| SimulatedAnnealing::with_iterations(10_000).map(&pi.instance, 0))
    });
    group.finish();
}

fn synthetic_instance(n: usize, apps: usize, seed: u64) -> ObmInstance {
    let mesh = Mesh::square(n);
    let mcs = MemoryControllers::corners(&mesh);
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let total = n * n;
    let per_app = total / apps;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Vec::with_capacity(total);
    let mut bounds = vec![0];
    for a in 0..apps {
        let scale = 1.8f64.powi(a as i32);
        let count = if a + 1 == apps {
            total - per_app * (apps - 1)
        } else {
            per_app
        };
        for _ in 0..count {
            c.push(scale * rng.gen_range(0.5..2.0));
        }
        bounds.push(c.len());
    }
    let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
    ObmInstance::new(tiles, bounds, c, m)
}

/// SSS runtime vs mesh size — the `O(N³)` scaling claim.
fn sss_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sss_scaling");
    group.sample_size(10);
    for n in [4usize, 8, 12, 16] {
        let inst = synthetic_instance(n, 4, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &inst, |b, inst| {
            b.iter(|| SortSelectSwap::default().map(inst, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, mapper_runtimes, sss_scaling);
criterion_main!(benches);
