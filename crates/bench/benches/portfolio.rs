//! Portfolio engine scaling: a 4-worker race over multi-seed simulated
//! annealing vs the equivalent sequential best-of loop on the 8x8 C1
//! instance (the PR's ≥2x wall-clock acceptance criterion), plus the
//! 1-worker overhead check (the engine should cost no more than the loop
//! it replaces).

use criterion::{criterion_group, criterion_main, Criterion};
use obm_bench::harness::paper_instance;
use obm_core::algorithms::{Mapper, SimulatedAnnealing};
use obm_core::evaluate;
use obm_portfolio::{Algorithm, SolveRequest};
use workload::PaperConfig;

const SEEDS: [u64; 4] = [1, 2, 3, 4];
const SA: SimulatedAnnealing = SimulatedAnnealing {
    iterations: 50_000,
    restarts: 1,
    initial_temp_fraction: 0.05,
    final_temp_fraction: 1e-4,
};

fn portfolio_vs_sequential(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let inst = &pi.instance;
    let mut group = c.benchmark_group("portfolio_sa_8x8");
    group.sample_size(10);

    group.bench_function("sequential_best_of_4_seeds", |b| {
        b.iter(|| {
            let mut best: Option<(f64, obm_core::Mapping)> = None;
            for seed in SEEDS {
                let m = SA.map(inst, seed);
                let v = evaluate(inst, &m).max_apl;
                if best.as_ref().is_none_or(|(bv, _)| v < *bv) {
                    best = Some((v, m));
                }
            }
            best
        })
    });

    for workers in [1usize, 4] {
        group.bench_function(&format!("portfolio_{workers}_workers"), |b| {
            b.iter(|| {
                SolveRequest::builder(inst)
                    .algorithm(Algorithm::SimulatedAnnealing(SA))
                    .seeds(SEEDS)
                    .workers(workers)
                    .build()
                    .expect("valid request")
                    .solve()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, portfolio_vs_sequential);
criterion_main!(benches);
