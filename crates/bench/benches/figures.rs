//! One criterion benchmark per table/figure of the paper: each measures
//! the computational kernel that regenerates the artifact (the printable
//! rows come from `cargo run -p obm-bench --bin experiments`).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_model::{Mesh, TileLatencies};
use obm_bench::experiments::fig5;
use obm_bench::harness::paper_instance;
use obm_bench::sim_bridge::{simulate_mapping, traffic_from_mapping};
use obm_core::algorithms::{Global, Mapper, RandomMapper, SortSelectSwap};
use obm_core::evaluate;
use workload::{PaperConfig, WorkloadBuilder};

/// Table 1: random-mapping population statistics vs Global on one config.
fn table1(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    c.bench_function("table1_random_population_500", |b| {
        b.iter(|| RandomMapper::averages(&pi.instance, 500, 0xA5))
    });
    c.bench_function("table1_global_mapping", |b| {
        b.iter(|| Global.map(&pi.instance, 0))
    });
}

/// Table 3: trace generation + calibration for one configuration.
fn table3(c: &mut Criterion) {
    c.bench_function("table3_trace_generation_c1", |b| {
        b.iter(|| {
            WorkloadBuilder::paper(PaperConfig::C1)
                .epochs(2_000)
                .build_traces()
        })
    });
}

/// Table 4 / Figure 9 / Figure 10: the four-algorithm line-up on one
/// configuration (SA budget fixed for benchmarking determinism).
fn table4_fig9_fig10(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    c.bench_function("lineup_sss_plus_eval", |b| {
        b.iter(|| {
            let m = SortSelectSwap::default().map(&pi.instance, 0);
            evaluate(&pi.instance, &m)
        })
    });
}

/// Figure 3: the TC/TM latency arrays.
fn fig3(c: &mut Criterion) {
    c.bench_function("fig3_tile_latency_arrays_8x8", |b| {
        b.iter(|| TileLatencies::paper_default(&Mesh::square(8)))
    });
}

/// Figure 4 / Figure 8: mapping grids for C1.
fn fig4_fig8(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    c.bench_function("fig4_global_grid_c1", |b| {
        b.iter(|| {
            let m = Global.map(&pi.instance, 0);
            m.tile_to_thread(64)
        })
    });
    c.bench_function("fig8_sss_grid_c1", |b| {
        b.iter(|| {
            let m = SortSelectSwap::default().map(&pi.instance, 0);
            m.tile_to_thread(64)
        })
    });
}

/// Figure 5: the exact 4×4 example.
fn fig5_bench(c: &mut Criterion) {
    c.bench_function("fig5_exact_example", |b| {
        b.iter(|| {
            let inst = fig5::fig5_instance();
            let (good, bad) = fig5::fig5_mappings(&inst);
            (
                evaluate(&inst, &good).max_apl,
                evaluate(&inst, &bad).max_apl,
            )
        })
    });
}

/// Figure 11: analytic power evaluation of one mapping.
fn fig11(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let mapping = SortSelectSwap::default().map(&pi.instance, 0);
    let mesh = Mesh::square(8);
    let params = noc_power::PowerParams::dsent_45nm();
    c.bench_function("fig11_analytic_power", |b| {
        b.iter(|| {
            let loads: Vec<noc_power::PlacedLoad> = (0..pi.instance.num_threads())
                .map(|j| noc_power::PlacedLoad {
                    tile: mapping.tile_of(j),
                    cache_rate: pi.instance.cache_rate(j) / 1000.0,
                    mem_rate: pi.instance.mem_rate(j) / 1000.0,
                })
                .collect();
            noc_power::analytic_power(&params, &mesh, pi.instance.tiles(), &loads, 3.0)
        })
    });
}

/// Figure 12: one SA run at a fixed iteration budget (the sweep's kernel).
fn fig12(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    c.bench_function("fig12_sa_20k_iterations", |b| {
        b.iter(|| {
            obm_core::algorithms::SimulatedAnnealing::with_iterations(20_000).map(&pi.instance, 1)
        })
    });
}

/// Validation: the cycle-level simulator (short run + source construction).
fn validation(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C2);
    let mapping = SortSelectSwap::default().map(&pi.instance, 0);
    c.bench_function("validate_source_construction", |b| {
        b.iter(|| traffic_from_mapping(&pi, &mapping))
    });
    let mut group = c.benchmark_group("validate_simulation");
    group.sample_size(10);
    group.bench_function("sim_10k_cycles_c2", |b| {
        b.iter(|| simulate_mapping(&pi, &mapping, 10_000, 7))
    });
    group.finish();
}

criterion_group!(
    benches,
    table1,
    table3,
    table4_fig9_fig10,
    fig3,
    fig4_fig8,
    fig5_bench,
    fig11,
    fig12,
    validation
);
criterion_main!(benches);
