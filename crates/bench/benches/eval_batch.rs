//! Throughput of the batched SoA evaluation engine (DESIGN.md §13) against
//! the per-mapping scratch evaluator, plus the end-to-end effect of the
//! `EvalTables` hot-path rewiring on a long SA run.

use criterion::{criterion_group, criterion_main, Criterion};
use obm_bench::harness::paper_instance;
use obm_core::algorithms::{Mapper, RandomMapper, SimulatedAnnealing};
use obm_core::{evaluate, BatchEvaluator, Mapping, ObmInstance};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use workload::PaperConfig;

const BATCH: usize = 1_024;

fn random_batch(inst: &ObmInstance, count: usize, seed: u64) -> Vec<Mapping> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| RandomMapper::draw(inst, &mut rng))
        .collect()
}

/// 8×8 C1, batch of 1024 mappings: scratch `evaluate()` loop vs the
/// chunked `eval_many` kernel vs the alloc-free `objectives_into` path.
fn eval_throughput(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let inst = &pi.instance;
    let batch = random_batch(inst, BATCH, 7);
    // Build the tables outside the timed region — solvers amortize this
    // once per instance, so the steady-state kernel is what matters.
    let be = BatchEvaluator::new(inst);
    let mut group = c.benchmark_group("eval_batch");
    // The speedup keys in BENCH_PR6.json are ratios of these medians, so
    // take enough samples that a transient load spike on a shared box
    // cannot poison a whole label's median.
    group.sample_size(40);
    group.bench_function("evaluate_scratch_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &batch {
                acc += evaluate(inst, m).max_apl;
            }
            acc
        })
    });
    group.bench_function("eval_many_into_1024", |b| {
        // Steady-state batched path: the report buffer is recycled across
        // batches, so per-report `per_app` allocations happen once and the
        // timed region is pure kernel + report refill.
        let mut reports = Vec::new();
        b.iter(|| {
            be.eval_many_into(&batch, &mut reports);
            reports.iter().map(|r| r.max_apl).sum::<f64>()
        })
    });
    group.bench_function("eval_many_alloc_1024", |b| {
        // Allocating convenience wrapper: same kernel, plus one fresh
        // `per_app` Vec per report.
        b.iter(|| be.eval_many(&batch).iter().map(|r| r.max_apl).sum::<f64>())
    });
    group.bench_function("objectives_into_1024", |b| {
        let mut objs = Vec::new();
        b.iter(|| {
            objs.clear();
            be.objectives_into(&batch, &mut objs);
            objs.iter().sum::<f64>()
        })
    });
    group.finish();
}

/// End-to-end: a 50k-iteration SA run, whose inner loop reads the
/// `EvalTables` cost matrix through `IncrementalEvaluator`.
fn sa_end_to_end(c: &mut Criterion) {
    let pi = paper_instance(PaperConfig::C1);
    let mut group = c.benchmark_group("eval_batch");
    group.sample_size(10);
    group.bench_function("sa_50k_end_to_end", |b| {
        b.iter(|| SimulatedAnnealing::with_iterations(50_000).map(&pi.instance, 1))
    });
    group.finish();
}

criterion_group!(benches, eval_throughput, sa_end_to_end);
criterion_main!(benches);
