//! Minimal markdown table / grid rendering for experiment output (kept
//! dependency-free; the workspace deliberately avoids serde_json).

/// A markdown table under construction.
#[derive(Debug, Clone, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        MarkdownTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a markdown string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }
}

/// Format a float with 2–4 significant decimals, matching the paper's
/// table style.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

/// Format a percentage delta such as "+3.82%" / "-10.42%".
pub fn pct(x: f64) -> String {
    format!("{}{:.2}%", if x >= 0.0 { "+" } else { "" }, x * 100.0)
}

/// Render an `n×n` grid of small integers (application ids) the way the
/// paper draws Figures 4 and 8.
pub fn render_grid(n: usize, cell: impl Fn(usize, usize) -> String) -> String {
    let mut out = String::new();
    for r in 0..n {
        for c in 0..n {
            out.push_str(&format!("{:>3}", cell(r, c)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = MarkdownTable::new(vec!["cfg", "value"]);
        t.row(vec!["C1", "22.63"]);
        t.row(vec!["C2-long-name", "1"]);
        let s = t.render();
        assert!(s.contains("| cfg "));
        assert!(s.lines().count() == 4);
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = MarkdownTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(22.6311), "22.63");
        assert_eq!(f(0.5347), "0.535");
        assert_eq!(f(131.87), "131.9");
        assert_eq!(pct(-0.1042), "-10.42%");
        assert_eq!(pct(0.0382), "+3.82%");
    }

    #[test]
    fn grid_renders() {
        let g = render_grid(2, |r, c| format!("{}", r * 2 + c + 1));
        assert_eq!(g, "  1  2\n  3  4\n");
    }
}
