//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--fast] [--out DIR] [--injection bernoulli|geometric] [--shards N]
//! experiments all [--fast] [--out DIR] [--injection bernoulli|geometric] [--shards N]
//! experiments list
//! ```
//!
//! With `--out DIR`, each experiment's block is additionally written to
//! `DIR/<id>.md` (the directory is created if missing).
//!
//! `--injection` selects the traffic-source process for the
//! simulator-sweep experiments (loadcurve, validate, tails); sweeps
//! default to the geometric fast path. Seeded-replay experiments ignore
//! the flag.
//!
//! `--shards N` runs every paper-scenario simulation on the N-shard
//! row-band parallel engine (bit-identical to serial; the effective
//! count is clamped to the mesh's row count per run). The flag wins
//! over the `OBM_SIM_SHARDS` environment variable; worker threads for
//! the sweep grid itself come from `OBM_WORKERS` (default: all detected
//! cores).
//!
//! Paper ids: table1, table3, table4, fig3, fig4, fig5, fig8, fig9,
//! fig10, fig11, fig12, validate. Extension ids: ablation, loadcurve,
//! scaling, weighted, torus, firstprinciples, optgap, queueing, fig3sim,
//! oversub, nocparams, tails.

use noc_sim::InjectionProcess;
use obm_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_dir: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let injection = match args
        .iter()
        .position(|a| a == "--injection")
        .and_then(|i| args.get(i + 1))
    {
        None => InjectionProcess::Geometric,
        Some(v) => match v.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("--injection: {e}");
                std::process::exit(2);
            }
        },
    };
    // An explicit --shards wins over OBM_SIM_SHARDS; publishing it back
    // to the environment (before any sweep thread exists) lets every
    // simulation entry point pick it up through `noc_sim::env_shards`.
    if let Some(v) = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
    {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => std::env::set_var("OBM_SIM_SHARDS", v),
            _ => {
                eprintln!("--shards: expected a positive integer, got '{v}'");
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" || *a == "--injection" || *a == "--shards" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out directory {dir}: {e}");
            std::process::exit(2);
        }
    }

    if ids.is_empty() || ids == ["list"] {
        eprintln!(
            "usage: experiments <id>...|all [--fast] [--injection bernoulli|geometric] [--shards N]"
        );
        eprintln!("available experiments:");
        for id in experiments::ALL {
            eprintln!("  {id}");
        }
        std::process::exit(if ids.is_empty() { 2 } else { 0 });
    }

    let selected: Vec<&str> = if ids == ["all"] {
        experiments::ALL.to_vec()
    } else {
        ids
    };

    for id in selected {
        match experiments::run_with(id, fast, injection) {
            Some(output) => {
                println!("{output}");
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{id}.md");
                    if let Err(e) = std::fs::write(&path, &output) {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}' — try `experiments list`");
                std::process::exit(2);
            }
        }
    }
}
