//! **NoC parameter ablation** (extension) — how sensitive is the paper's
//! "td_q ≈ 0–1 cycles" operating point to the router's provisioning?
//! Sweeps virtual channels per class and input-buffer depth at C1-scale
//! uniform load on the cycle-level simulator.

use crate::pool;
use crate::table::{f, MarkdownTable};
use noc_model::Mesh;
use noc_sim::{Network, Schedule, SimConfig, TrafficSpec};

fn run_point(vcs: usize, depth: usize, cycles: u64) -> noc_sim::SimReport {
    let mesh = Mesh::square(8);
    let cfg = SimConfig::builder(mesh)
        .vcs_per_class(vcs)
        .buffer_depth(depth)
        .warmup_cycles(cycles / 10)
        .measure_cycles(cycles)
        .max_drain_cycles(10 * cycles)
        .seed(31)
        .build()
        .expect("swept router parameters are valid");
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(7.0), // C1 scale
        Schedule::per_kilocycle(0.9),
    );
    Network::new(cfg, traffic).expect("valid scenario").run()
}

pub fn run(fast: bool) -> String {
    let cycles = if fast { 8_000 } else { 30_000 };
    let mut t = MarkdownTable::new(vec![
        "VCs/class",
        "buffer depth",
        "g-APL",
        "td_q",
        "drained",
    ]);
    let points: &[(usize, usize)] = if fast {
        &[(1, 2), (3, 5)]
    } else {
        &[
            (1, 2),
            (1, 5),
            (2, 5),
            (3, 2),
            (3, 5), // the paper's Table 2 point
            (3, 8),
            (4, 8),
        ]
    };
    // Independent seeded sims, work-stolen across the shared pool;
    // slot-ordered results keep the table rows matching the serial
    // version.
    let reports = pool::run_indexed(points.len(), |i| {
        let (vcs, depth) = points[i];
        run_point(vcs, depth, cycles)
    });
    for (&(vcs, depth), r) in points.iter().zip(&reports) {
        t.row(vec![
            format!("{vcs}"),
            format!("{depth}"),
            f(r.g_apl()),
            f(r.mean_td_q()),
            if r.fully_drained { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "## NoC parameter ablation (extension) — VCs and buffers at C1-scale load\n\n{}\n\
         At the paper's loads the network is so far from saturation that even a\n\
         1-VC, 2-flit-buffer router keeps td_q well under a cycle — Table 2's\n\
         3-VC/5-flit provisioning is comfortable, and the mapping conclusions do\n\
         not hinge on router generosity.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the cycle-level simulator; exercised by `experiments nocparams`"]
    fn nocparams_runs() {
        let out = super::run(true);
        assert!(out.contains("NoC parameter"));
    }
}
