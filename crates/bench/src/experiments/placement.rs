//! **Placement co-optimization** (extension) — the paper fixes the
//! memory controllers at the corners (Section II) and only maps threads;
//! this sweep makes the placement a decision variable. An exhaustive
//! outer search over symmetry-reduced controller placements (DESIGN.md
//! §15) with sort-select-swap in the inner loop finds the layout whose
//! *optimized* mapping has the lowest max-APL, then both layouts are
//! replayed through the cycle-level simulator under a telemetry probe so
//! the PR 5 link heatmaps show where the traffic moved.

use crate::table::{f, MarkdownTable};
use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use noc_sim::telemetry::RingSink;
use noc_sim::{Network, SimConfig};
use obm_core::placement::{co_optimize, sss_inner, PlacementOptions, SearchMode};
use obm_core::{evaluate, ObmInstance};

/// Four 4-thread applications on a 4×4 chip, app 4 the most
/// memory-intensive — enough heterogeneity that where the controllers
/// sit decides who pays the memory-latency bill.
fn rates() -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    let c: Vec<f64> = (0..16).map(|j| 1.0 + 0.5 * (j % 4) as f64).collect();
    let m: Vec<f64> = (0..16).map(|j| 0.2 + 0.15 * (j / 4) as f64).collect();
    (c, m, vec![0, 4, 8, 12, 16])
}

pub fn run(fast: bool) -> String {
    let mesh = Mesh::square(4);
    let params = LatencyParams::paper_table2();
    let (c, m, bounds) = rates();
    let corners = TileLatencies::compute(&mesh, &MemoryControllers::corners(&mesh), params);
    let inst = ObmInstance::new(corners, bounds.clone(), c.clone(), m.clone());

    let mut opts = PlacementOptions::new(4);
    opts.mode = SearchMode::Exhaustive;
    let out = co_optimize(&inst, &mesh, &opts, sss_inner)
        .expect("4 controllers on a 4x4 mesh is a valid placement search");

    let cycles: u64 = if fast { 3_000 } else { 20_000 };
    let mut t = MarkdownTable::new(vec![
        "layout",
        "controllers (tiles)",
        "max-APL",
        "dev-APL",
        "sim max-APL",
        "delivered",
    ]);
    let mut heatmaps = String::new();
    for (label, layout, mapping) in [
        (
            "corner-default",
            &out.baseline_layout,
            &out.baseline_mapping,
        ),
        ("best-found", &out.layout, &out.mapping),
    ] {
        let il = ObmInstance::new(
            TileLatencies::for_layout(layout, params),
            bounds.clone(),
            c.clone(),
            m.clone(),
        );
        let r = evaluate(&il, mapping);
        let mut cfg = SimConfig::for_layout(layout).expect("search layouts have no failed links");
        cfg.warmup_cycles = (cycles / 10).max(100);
        cfg.measure_cycles = cycles;
        cfg.seed = 0xBEEF;
        let traffic = obm_core::traffic_spec(&il, mapping);
        let mut sink = RingSink::new(4096);
        let report = Network::new(cfg, traffic)
            .expect("sweep simulation config is valid")
            .run_probed(&mut sink);
        let heat = sink
            .heatmaps()
            .next()
            .cloned()
            .expect("probed runs emit a heatmap record");
        let tiles: Vec<String> = layout
            .controllers()
            .tiles()
            .iter()
            .map(|k| k.to_paper().to_string())
            .collect();
        t.row(vec![
            label.to_string(),
            tiles.join(" "),
            f(r.max_apl),
            f(r.dev_apl),
            f(report.max_apl()),
            format!("{}/{}", report.delivered, report.injected),
        ]);
        heatmaps.push_str(&format!(
            "### {label} — link heatmap (decile digits, 9 = hottest link, . = idle)\n\n\
             ```\n{}```\n\n",
            heat.ascii_mesh()
        ));
    }

    format!(
        "## Placement co-optimization (extension) — 4 controllers on a 4x4 chip\n\n\
         Exhaustive outer search over {} canonical controller placements \
         (D4 symmetry reduction of C(16,4) = 1820 combinations), \
         sort-select-swap inner solve per candidate, seed {}.\n\n{}\n\
         Best-found placement cuts max-APL by {:.2}% vs the paper's corner \
         default — moving the controllers toward the memory-heavy rows \
         shortens exactly the TM terms that the corner layout forces onto \
         whichever application loses the mapping race; the heatmaps show \
         the corner layout funnelling memory traffic through the perimeter \
         while the optimized layout spreads it across interior links.\n\n{}",
        out.evaluated,
        opts.seed,
        t.render(),
        out.gain_pct(),
        heatmaps
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn placement_sweep_beats_corners_and_exports_heatmaps() {
        let out = super::run(true);
        assert!(out.contains("Placement co-optimization"), "{out}");
        assert!(out.contains("corner-default"), "{out}");
        assert!(out.contains("best-found"), "{out}");
        // The heatmap pair is exported (two fenced ASCII meshes).
        assert_eq!(out.matches("link heatmap").count(), 2, "{out}");
        assert_eq!(out.matches("```\n").count(), 4, "{out}");
        // The search finds a strictly better layout on this config.
        assert!(!out.contains("by 0.00%"), "{out}");
    }
}
