//! **Queueing prediction** (extension) — the analytic M/D/1-style per-hop
//! queueing estimate of `noc-model::loads` against the cycle-level
//! simulator across the load sweep. Where the paper *measures* `td_q` and
//! observes 0–1 cycles, this shows the number is predictable from link
//! loads alone.

use crate::table::{f, MarkdownTable};
use noc_model::{LinkLoads, MemoryControllers, Mesh, SourceLoad};
use noc_sim::{Network, Schedule, SimConfig, TrafficSpec};

fn run_point(rate_per_kcycle: f64, cycles: u64) -> (f64, f64, f64) {
    let mesh = Mesh::square(8);
    let mcs = MemoryControllers::corners(&mesh);
    // analytic
    let sources: Vec<SourceLoad> = mesh
        .tiles()
        .map(|t| SourceLoad {
            tile: t,
            cache_rate: rate_per_kcycle / 1000.0,
            mem_rate: rate_per_kcycle * 0.15 / 1000.0,
        })
        .collect();
    let loads = LinkLoads::compute(&mesh, &mcs, &sources, 3.0);
    // simulated
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.max_drain_cycles = 6 * cycles;
    cfg.seed = 11;
    let sim_traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(rate_per_kcycle),
        Schedule::per_kilocycle(rate_per_kcycle * 0.15),
    );
    let report = Network::new(cfg, sim_traffic)
        .expect("valid scenario")
        .run();
    (loads.mean_td_q(), report.mean_td_q(), loads.max_load())
}

pub fn run(fast: bool) -> String {
    let cycles = if fast { 10_000 } else { 40_000 };
    let rates: &[f64] = if fast {
        &[8.0, 32.0]
    } else {
        &[2.0, 8.0, 16.0, 32.0, 48.0, 64.0]
    };
    let mut t = MarkdownTable::new(vec![
        "cache req/kcycle/tile",
        "predicted td_q (M/D/1)",
        "simulated td_q",
        "max link load (flits/cyc)",
    ]);
    for &r in rates {
        let (pred, sim, maxload) = run_point(r, cycles);
        t.row(vec![format!("{r}"), f(pred), f(sim), f(maxload)]);
    }
    format!(
        "## Queueing prediction (extension) — analytic link loads vs simulation\n\n{}\n\
         Both predicted and simulated td_q stay well below one cycle through the paper's \
         operating range (≤ 11 req/kcycle), and the estimate reproduces the convex growth \
         shape; absolute values under-predict by a small factor because NI serialization, \
         switch arbitration and VC contention are not in the M/D/1 abstraction — the same \
         effects the paper folds into its measured constant.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the cycle-level simulator; exercised by `experiments queueing`"]
    fn queueing_runs() {
        let out = super::run(true);
        assert!(out.contains("Queueing"));
    }
}
