//! **Figure 12** — simulated-annealing quality as a function of allowed
//! runtime, normalized to the SSS runtime (log-scale x in the paper):
//! SA shows diminishing returns and stays above SSS even at 100× the
//! runtime budget, averaged over the eight configurations.

use crate::harness::{all_paper_instances, median_runtime, sa_iterations_for};
use crate::table::{f, MarkdownTable};
use obm_core::algorithms::{Mapper, SimulatedAnnealing, SortSelectSwap};
use obm_core::evaluate;
use std::time::Duration;

pub fn run(fast: bool) -> String {
    let multipliers: &[f64] = if fast {
        &[0.1, 1.0, 10.0]
    } else {
        &[0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0]
    };
    let instances = all_paper_instances();
    // Reference: SSS runtime and quality per configuration.
    let sss = SortSelectSwap::default();
    let mut sss_time = Duration::ZERO;
    let mut sss_max_apl = 0.0;
    for pi in &instances {
        sss_time += median_runtime(&sss, &pi.instance, 3);
        sss_max_apl += evaluate(&pi.instance, &sss.map(&pi.instance, 0)).max_apl;
    }
    let sss_time = sss_time / instances.len() as u32;
    sss_max_apl /= instances.len() as f64;

    let mut t = MarkdownTable::new(vec!["SA runtime / SSS runtime", "SA max-APL (avg, cycles)"]);
    let mut rows = Vec::new();
    for &mult in multipliers {
        let budget = Duration::from_secs_f64(sss_time.as_secs_f64() * mult);
        let mut avg = 0.0;
        for pi in &instances {
            let iters = sa_iterations_for(&pi.instance, budget);
            let sa = SimulatedAnnealing::with_iterations(iters);
            avg += evaluate(&pi.instance, &sa.map(&pi.instance, 1)).max_apl;
        }
        avg /= instances.len() as f64;
        rows.push((mult, avg));
        t.row(vec![format!("{mult}×"), f(avg)]);
    }
    t.row(vec!["SSS (1× by definition)".to_string(), f(sss_max_apl)]);
    let final_sa = rows.last().map(|r| r.1).unwrap_or(f64::NAN);
    format!(
        "## Figure 12 — SA quality vs runtime (normalized to SSS runtime)\n\n{}\n\
         SSS runtime ≈ {:.2} ms per mapping. SA at {}× budget reaches {} vs SSS {} \
         (paper: SSS outperforms SA even at 100× runtime).\n",
        t.render(),
        sss_time.as_secs_f64() * 1e3,
        multipliers.last().unwrap(),
        f(final_sa),
        f(sss_max_apl),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig12_runs_fast_mode() {
        let out = super::run(true);
        assert!(out.contains("Figure 12"));
        assert!(out.contains("SSS"));
    }
}
