//! **Oversubscription** (extension) — the §III.B footnote's deferred
//! generalization: multiple threads per tile. An SMT-style capacity-2
//! 8×8 chip hosts eight 16-thread applications (128 threads on 64 tiles);
//! virtual-tile expansion lets every mapper run unchanged.

use crate::table::{f, MarkdownTable};
use obm_core::algorithms::{Global, Mapper, SortSelectSwap};
use obm_core::oversub::{default_tiles, map_with_capacity};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub fn run() -> String {
    let tiles = default_tiles(8);
    // Eight 16-thread applications with geometrically spread rates.
    let mut rng = SmallRng::seed_from_u64(77);
    let mut c = Vec::with_capacity(128);
    let mut bounds = vec![0];
    for a in 0..8 {
        let scale = 1.6f64.powi(a);
        for _ in 0..16 {
            c.push(scale * rng.gen_range(0.5..2.0));
        }
        bounds.push(c.len());
    }
    let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();

    let mut t = MarkdownTable::new(vec!["algo", "max-APL", "dev-APL", "g-APL", "max occupancy"]);
    for mapper in [&Global as &dyn Mapper, &SortSelectSwap::default()] {
        let (mapping, report) =
            map_with_capacity(&tiles, bounds.clone(), c.clone(), m.clone(), 2, mapper, 0);
        let occ = mapping.occupancy(64);
        t.row(vec![
            mapper.name().to_string(),
            f(report.max_apl),
            f(report.dev_apl),
            f(report.g_apl),
            format!("{}", occ.iter().max().unwrap()),
        ]);
    }
    format!(
        "## Oversubscription (extension) — 128 threads on a capacity-2 8×8 chip\n\n{}\n\
         The paper's deferred multi-thread-per-tile case reduces cleanly to the base\n\
         problem by virtual-tile expansion; SSS keeps its balancing behaviour with\n\
         eight concurrent applications sharing SMT tiles.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn oversub_runs() {
        let out = super::run();
        assert!(out.contains("Oversubscription"));
        assert!(out.contains("SSS"));
    }
}
