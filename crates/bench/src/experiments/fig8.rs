//! **Figure 8** — (a) the SSS mapping of configuration C1 as an 8×8 grid
//! of application ids, and (b) the per-application APL comparison against
//! Global. The paper's observations: SSS no longer pins the light
//! application to the corners, and the four APLs become nearly equal.

use crate::harness::paper_instance;
use crate::table::{f, render_grid, MarkdownTable};
use noc_model::{Coord, Mesh};
use obm_core::algorithms::{Global, Mapper, SortSelectSwap};
use obm_core::evaluate;
use workload::PaperConfig;

pub fn run() -> String {
    let pi = paper_instance(PaperConfig::C1);
    let sss_map = SortSelectSwap::default().map(&pi.instance, 0);
    let glob_map = Global.map(&pi.instance, 0);
    let sss = evaluate(&pi.instance, &sss_map);
    let glob = evaluate(&pi.instance, &glob_map);
    let mesh = Mesh::square(8);
    let inv = sss_map.tile_to_thread(64);
    let grid = render_grid(8, |r, c| {
        let tile = mesh.tile(Coord::new(r, c));
        match inv[tile.index()] {
            Some(j) => format!("{}", pi.instance.app_of_thread(j) + 1),
            None => ".".to_string(),
        }
    });
    let mut t = MarkdownTable::new(vec!["app", "Global APL", "SSS APL"]);
    for i in 0..4 {
        t.row(vec![
            format!("App {}", i + 1),
            f(glob.per_app[i]),
            f(sss.per_app[i]),
        ]);
    }
    format!(
        "## Figure 8 — SSS mapping of C1\n\n(a) application ids (1 = lightest):\n\n{}\n(b) per-app APLs:\n\n{}\n\
         max-APL: Global {} → SSS {} ({:+.2}%); dev-APL: {} → {}\n\
         (paper: App 1 falls from 25.15 to 22.40 cycles, −10.89%; SSS APLs nearly equal)\n",
        grid,
        t.render(),
        f(glob.max_apl),
        f(sss.max_apl),
        (sss.max_apl / glob.max_apl - 1.0) * 100.0,
        f(glob.dev_apl),
        f(sss.dev_apl),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig8_improves_balance() {
        let out = super::run();
        assert!(out.contains("Figure 8"));
        assert!(out.contains("App 4"));
    }
}
