//! **Validation** (§V methodology) — cross-check the analytic latency model
//! that the mapping algorithms optimize against the cycle-level wormhole
//! simulator: per-application APLs must track Eq. (5), and the measured
//! per-hop queueing latency `td_q` must sit in the paper's observed 0–1
//! cycle band.

use crate::harness::{all_paper_instances, paper_instance};
use crate::sim_bridge::simulate_mapping;
use crate::table::{f, MarkdownTable};
use obm_core::algorithms::{Mapper, SortSelectSwap};
use obm_core::evaluate;
use workload::PaperConfig;

pub fn run(fast: bool) -> String {
    let cycles = if fast { 40_000 } else { 200_000 };
    let instances = if fast {
        vec![
            paper_instance(PaperConfig::C1),
            paper_instance(PaperConfig::C2),
        ]
    } else {
        all_paper_instances()
    };
    let mut t = MarkdownTable::new(vec![
        "cfg",
        "analytic g-APL",
        "simulated g-APL",
        "analytic max-APL",
        "simulated max-APL",
        "td_q (cycles)",
        "drained",
    ]);
    let mut max_err: f64 = 0.0;
    let mut max_tdq: f64 = 0.0;
    for pi in &instances {
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let analytic = evaluate(&pi.instance, &mapping);
        let sim = simulate_mapping(pi, &mapping, cycles, 7);
        let err = (sim.g_apl() - analytic.g_apl).abs() / analytic.g_apl;
        max_err = max_err.max(err);
        max_tdq = max_tdq.max(sim.mean_td_q());
        t.row(vec![
            pi.config.name().to_string(),
            f(analytic.g_apl),
            f(sim.g_apl()),
            f(analytic.max_apl),
            f(sim.max_apl()),
            f(sim.mean_td_q()),
            if sim.fully_drained { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "## Validation — analytic model vs cycle-level simulation\n\n{}\n\
         Worst g-APL discrepancy {:.1}%; worst td_q {:.3} cycles \
         (paper: td_q observed 0–1 cycles at evaluated loads).\n",
        t.render(),
        max_err * 100.0,
        max_tdq,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the cycle-level simulator; exercised by `experiments validate`"]
    fn validate_runs() {
        let out = super::run(true);
        assert!(out.contains("Validation"));
    }
}
