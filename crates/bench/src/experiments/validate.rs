//! **Validation** (§V methodology) — cross-check the analytic latency model
//! that the mapping algorithms optimize against the cycle-level wormhole
//! simulator: per-application APLs must track Eq. (5), and the measured
//! per-hop queueing latency `td_q` must sit in the paper's observed 0–1
//! cycle band.

use crate::harness::{all_paper_instances, paper_instance};
use crate::pool;
use crate::sim_bridge::simulate_mapping_probed_with;
use crate::table::{f, MarkdownTable};
use noc_metrics::{MetricsHandle, MetricsRegistry};
use noc_sim::telemetry::{Phase, RingSink};
use noc_sim::InjectionProcess;
use obm_core::algorithms::{Mapper, MonteCarlo, SimulatedAnnealing, SortSelectSwap};
use obm_core::evaluate;
use obm_portfolio::{Algorithm, SolveRequest};
use workload::PaperConfig;

/// Sweeps default to geometric injection (the validation compares latency
/// *statistics* against the analytic model, not a seeded replay).
pub fn run(fast: bool) -> String {
    run_with(fast, InjectionProcess::Geometric)
}

pub fn run_with(fast: bool, injection: InjectionProcess) -> String {
    run_with_metrics(fast, injection, &MetricsHandle::disabled())
}

/// [`run_with`] reporting into a metrics registry (DESIGN.md §17). The
/// sweep's throughput and parallelism figures are published as gauges
/// and the printed footer reads them back from the registry, so the
/// report and an exported snapshot can never disagree. With a disabled
/// handle a private registry is used — the gauges still back the
/// printout.
pub fn run_with_metrics(
    fast: bool,
    injection: InjectionProcess,
    metrics: &MetricsHandle,
) -> String {
    let metrics = if metrics.enabled() {
        metrics.clone()
    } else {
        MetricsRegistry::new().handle()
    };
    let cycles = if fast { 40_000 } else { 200_000 };
    let instances = if fast {
        vec![
            paper_instance(PaperConfig::C1),
            paper_instance(PaperConfig::C2),
        ]
    } else {
        all_paper_instances()
    };
    let mut t = MarkdownTable::new(vec![
        "cfg",
        "analytic g-APL",
        "simulated g-APL",
        "analytic max-APL",
        "simulated max-APL",
        "portfolio max-APL",
        "portfolio winner",
        "td_q (cycles)",
        "drained",
        "Msim-cycles/s",
        "skipped cycles",
        "peak win inj (flits/cyc)",
        "peak win buffered",
        "exact p99",
        "NI-q cyc/pkt",
    ]);
    let sa_iterations = if fast { 20_000 } else { 100_000 };
    // One grid item per configuration (mapping + analytic model + seeded
    // simulation are all per-instance), work-stolen across the shared
    // pool; results come back in item order, keeping the table rows in
    // the serial order.
    let results = pool::run_indexed(instances.len(), |i| {
        let pi = &instances[i];
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let analytic = evaluate(&pi.instance, &mapping);
        // Race the solver portfolio on the same instance: its
        // winner bounds what any single heuristic achieved.
        let portfolio = SolveRequest::builder(&pi.instance)
            .algorithm(Algorithm::SortSelectSwap(SortSelectSwap::default()))
            .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
                iterations: sa_iterations,
                ..SimulatedAnnealing::default()
            }))
            .algorithm(Algorithm::MonteCarlo(MonteCarlo {
                samples: 2_000,
                workers: 1,
            }))
            .algorithm(Algorithm::BalancedGreedy)
            .seeds([0, 1])
            .workers(2)
            .metrics(metrics.clone())
            .build()
            .expect("valid portfolio request")
            .solve();
        // Probed run: windowed telemetry rides along with the
        // validation sweep at no semantic cost (bit-identical).
        let mut sink = RingSink::new(4096);
        let sim = simulate_mapping_probed_with(pi, &mapping, cycles, 7, injection, &mut sink);
        let measure = || sink.windows().filter(|w| w.phase == Phase::Measure);
        let peak_inj = measure().map(|w| w.injection_rate()).fold(0.0f64, f64::max);
        let peak_buf = measure().map(|w| w.buffered_flits).max().unwrap_or(0);
        // The end-of-run flow summary arrives after every
        // window, so it survives the bounded ring: exact
        // (nearest-rank) p99 and the per-packet NI source-
        // queuing cost ride along for free.
        let all = sink
            .flow_summaries()
            .next()
            .map(|flow| flow.merged())
            .unwrap_or_default();
        let p99 = all.histogram.quantile(0.99).unwrap_or(0);
        let ni_q = all.mean_source_queue();
        (analytic, sim, peak_inj, peak_buf, portfolio, p99, ni_q)
    });
    let mut max_err: f64 = 0.0;
    let mut max_tdq: f64 = 0.0;
    let mut max_gain: f64 = 0.0;
    let mut total_cycles = 0u64;
    let mut total_flit_hops = 0u64;
    let mut total_wall_nanos = 0u64;
    let mut total_evals = 0u64;
    let mut total_eval_nanos = 0u64;
    for (pi, (analytic, sim, peak_inj, peak_buf, portfolio, p99, ni_q)) in
        instances.iter().zip(&results)
    {
        let err = (sim.g_apl() - analytic.g_apl).abs() / analytic.g_apl;
        max_err = max_err.max(err);
        max_tdq = max_tdq.max(sim.mean_td_q());
        // SSS is in the line-up, so the winner can only match or improve.
        max_gain = max_gain.max((analytic.max_apl - portfolio.objective) / analytic.max_apl);
        total_cycles += sim.network.cycles_run;
        total_flit_hops += sim.network.link_flit_traversals;
        total_wall_nanos += sim.network.wall_nanos;
        // Aggregate solver-portfolio evaluation throughput (tasks that
        // finished a timed fresh run only — resumed/dropped tasks report
        // wall_nanos 0 and are excluded from both sums).
        for s in portfolio.stats.iter().filter(|s| s.objective.is_some()) {
            if s.wall_nanos > 0 {
                total_evals += s.evaluations;
                total_eval_nanos += s.wall_nanos;
            }
        }
        t.row(vec![
            pi.config.name().to_string(),
            f(analytic.g_apl),
            f(sim.g_apl()),
            f(analytic.max_apl),
            f(sim.max_apl()),
            f(portfolio.objective),
            format!("{} s{}", portfolio.winner, portfolio.winner_seed),
            f(sim.mean_td_q()),
            if sim.fully_drained { "yes" } else { "NO" }.to_string(),
            format!("{:.2}", sim.network.cycles_per_sec() / 1e6),
            format!("{}", sim.network.skipped_cycles),
            format!("{peak_inj:.3}"),
            format!("{peak_buf}"),
            format!("{p99}"),
            format!("{ni_q:.3}"),
        ]);
    }
    // Per-worker wall times, so the aggregate is per-thread simulator
    // throughput (not wall-clock of the parallel sweep). Published as
    // gauges first, then read back for the footer — the snapshot is the
    // source of truth (wall-derived gauges are zero under the logical
    // clock, and the footer honestly prints that zero).
    metrics.wall_gauge_set(
        "validate_sim_cycles_per_sec",
        total_cycles as f64 * 1e9 / total_wall_nanos.max(1) as f64,
    );
    metrics.wall_gauge_set(
        "validate_sim_flit_hops_per_sec",
        total_flit_hops as f64 * 1e9 / total_wall_nanos.max(1) as f64,
    );
    metrics.wall_gauge_set(
        "validate_evals_per_sec",
        total_evals as f64 * 1e9 / total_eval_nanos.max(1) as f64,
    );
    metrics.gauge_set("pool_effective_workers", pool::effective_workers() as f64);
    metrics.gauge_set("pool_detected_cores", pool::detected_cores() as f64);
    metrics.gauge_set("sim_shards_env", noc_sim::env_shards().unwrap_or(1) as f64);
    let gauge = |name: &str| metrics.gauge_value(name).unwrap_or(0.0);
    let agg_cps = gauge("validate_sim_cycles_per_sec");
    let agg_fps = gauge("validate_sim_flit_hops_per_sec");
    let agg_eps = gauge("validate_evals_per_sec");
    format!(
        "## Validation — analytic model vs cycle-level simulation ({injection:?} injection)\n\n{}\n\
         Worst g-APL discrepancy {:.1}%; worst td_q {:.3} cycles \
         (paper: td_q observed 0–1 cycles at evaluated loads).\n\
         Portfolio winner improves on plain SSS by up to {:.2}% max-APL.\n\
         Simulator throughput: {:.2} Mcycles/s, {:.2} Mflit-hops/s per worker thread.\n\
         Portfolio evaluation throughput: {:.2} Mevals/s aggregate over timed tasks.\n\
         Sweep pool: {} effective worker(s) on {} detected core(s); \
         simulator shards: {} per run (OBM_SIM_SHARDS).\n",
        t.render(),
        max_err * 100.0,
        max_tdq,
        max_gain * 100.0,
        agg_cps / 1e6,
        agg_fps / 1e6,
        agg_eps / 1e6,
        gauge("pool_effective_workers") as usize,
        gauge("pool_detected_cores") as usize,
        gauge("sim_shards_env") as usize,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the cycle-level simulator; exercised by `experiments validate`"]
    fn validate_runs() {
        let out = super::run(true);
        assert!(out.contains("Validation"));
    }
}
