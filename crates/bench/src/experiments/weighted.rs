//! **Weighted OBM** (extension) — the differentiated-service variant the
//! paper's §II.A points to: minimize `max_i w_i·d_i` so a paying/priority
//! application receives proportionally lower latency. Runs C1 with the
//! lightest application promoted to weight 2 and 4.

use crate::harness::paper_instance;
use crate::table::{f, MarkdownTable};
use obm_core::algorithms::{Mapper, SortSelectSwap};
use obm_core::evaluate;
use workload::PaperConfig;

pub fn run() -> String {
    let base = paper_instance(PaperConfig::C1);
    let mut t = MarkdownTable::new(vec![
        "weights (app1..app4)",
        "APL app1",
        "APL app2",
        "APL app3",
        "APL app4",
        "objective max(w·d)",
    ]);
    for w in [
        vec![1.0, 1.0, 1.0, 1.0],
        vec![2.0, 1.0, 1.0, 1.0],
        vec![4.0, 1.0, 1.0, 1.0],
        vec![1.0, 1.0, 1.0, 2.0],
    ] {
        let inst = base.instance.clone().with_app_weights(w.clone());
        let r = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
        t.row(vec![
            format!("{w:?}"),
            f(r.per_app[0]),
            f(r.per_app[1]),
            f(r.per_app[2]),
            f(r.per_app[3]),
            f(r.max_apl),
        ]);
    }
    format!(
        "## Weighted OBM (extension) — differentiated service via priority weights\n\n{}\n\
         Raising an application's weight drives its APL down at bounded cost to the others \
         (the min-max equalizes w·d, so d ∝ 1/w where tile supply allows).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn weighted_runs_and_prioritizes() {
        let out = super::run();
        assert!(out.contains("Weighted OBM"));
    }
}
