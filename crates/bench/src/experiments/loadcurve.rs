//! **Load curve** (extension) — the classic NoC latency-vs-offered-load
//! characterization of the simulated network, plus an XY-vs-YX routing
//! check. Establishes that the paper's Table 3 loads (≈2–11 cache requests
//! per kilocycle per tile) sit far below saturation, which is why `td_q`
//! stays in the 0–1 cycle band and the analytic model is valid.

use crate::pool;
use crate::table::{f, MarkdownTable};
use noc_model::Mesh;
use noc_sim::config::RoutingKind;
use noc_sim::telemetry::{Phase, RingSink};
use noc_sim::{InjectionProcess, Network, Schedule, SimConfig, TrafficSpec};

fn uniform_traffic(mesh: &Mesh, cache_per_kcycle: f64) -> TrafficSpec {
    TrafficSpec::uniform(
        mesh,
        Schedule::per_kilocycle(cache_per_kcycle),
        Schedule::per_kilocycle(cache_per_kcycle * 0.15),
    )
}

/// One sweep point, probed: the report plus the peak measure-window
/// buffered-flit occupancy (a transient the end-of-run peak counter
/// conflates with warmup/drain; the windowed series separates it) and the
/// exact nearest-rank p99 latency from the end-of-run flow summary.
fn run_point(
    rate: f64,
    routing: RoutingKind,
    cycles: u64,
    injection: InjectionProcess,
) -> (noc_sim::SimReport, usize, u64) {
    let mesh = Mesh::square(8);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.max_drain_cycles = 4 * cycles;
    cfg.routing = routing;
    cfg.seed = 5;
    cfg.injection = injection;
    let mut sink = RingSink::new(4096);
    let report = Network::new(cfg, uniform_traffic(&mesh, rate))
        .expect("valid scenario")
        .run_probed(&mut sink);
    let peak_window_buffered = sink
        .windows()
        .filter(|w| w.phase == Phase::Measure)
        .map(|w| w.buffered_flits)
        .max()
        .unwrap_or(0);
    let p99 = sink
        .flow_summaries()
        .next()
        .and_then(|flow| flow.merged().histogram.quantile(0.99))
        .unwrap_or(0);
    (report, peak_window_buffered, p99)
}

/// Sweeps default to geometric injection: the points are latency
/// *statistics* at an offered load, not seeded replays, so the fast path's
/// different RNG stream is free speedup.
pub fn run(fast: bool) -> String {
    run_with(fast, InjectionProcess::Geometric)
}

pub fn run_with(fast: bool, injection: InjectionProcess) -> String {
    let cycles: u64 = if fast { 10_000 } else { 40_000 };
    let rates: &[f64] = if fast {
        &[4.0, 16.0, 48.0]
    } else {
        // 0.25 is the near-idle anchor where the geometric fast path's
        // event-horizon skipping dominates (cf. `benches/noc_sim.rs`).
        &[0.25, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0]
    };
    let mut t = MarkdownTable::new(vec![
        "cache req/kcycle/tile",
        "g-APL (cycles)",
        "exact p99",
        "td_q (cycles)",
        "link util",
        "peak buffered flits",
        "peak measure-window buffered",
    ]);
    // Each sweep point is an independent seeded simulation, work-stolen
    // across the shared pool; slot-ordered results keep the row order
    // identical to the serial version. The XY/YX ablation runs ride along
    // as the last two grid items.
    let mut reports = pool::run_indexed(rates.len() + 2, |i| {
        if i < rates.len() {
            run_point(rates[i], RoutingKind::Xy, cycles, injection)
        } else if i == rates.len() {
            run_point(8.0, RoutingKind::Xy, cycles, injection)
        } else {
            run_point(8.0, RoutingKind::Yx, cycles, injection)
        }
    });
    let yx = reports.pop().expect("grid includes the YX ablation point");
    let xy = reports.pop().expect("grid includes the XY ablation point");
    for (&r, (rep, peak_window, p99)) in rates.iter().zip(&reports) {
        t.row(vec![
            format!("{r}"),
            f(rep.g_apl()),
            format!("{p99}"),
            f(rep.mean_td_q()),
            format!("{:.3}", rep.network.mean_link_utilization()),
            format!("{}", rep.network.peak_buffered_flits),
            format!("{peak_window}"),
        ]);
    }
    // Routing ablation at a paper-scale load: XY vs YX must agree on a
    // symmetric uniform workload.
    format!(
        "## Load curve (extension) — 8×8 mesh, uniform traffic, {injection:?} injection\n\n{}\n\
         Routing ablation at 8 req/kcycle: XY g-APL {} vs YX g-APL {} \
         (symmetric workload ⇒ statistically equal).\n\
         Paper-scale loads (2–11 req/kcycle) sit far below saturation — the basis for the td_q ≈ 0 analytic arrays.\n",
        t.render(),
        f(xy.0.g_apl()),
        f(yx.0.g_apl()),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the cycle-level simulator; exercised by `experiments loadcurve`"]
    fn loadcurve_runs() {
        let out = super::run(true);
        assert!(out.contains("Load curve"));
    }
}
