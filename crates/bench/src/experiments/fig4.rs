//! **Figure 4** — the Global mapping of configuration C1 drawn as an 8×8
//! grid of application ids (1 = lightest traffic). The paper's observation:
//! Global banishes the light application to the corners.

use crate::harness::paper_instance;
use crate::table::render_grid;
use noc_model::{Coord, Mesh};
use obm_core::algorithms::{Global, Mapper};
use obm_core::evaluate;
use workload::PaperConfig;

pub fn run() -> String {
    let pi = paper_instance(PaperConfig::C1);
    let mapping = Global.map(&pi.instance, 0);
    let mesh = Mesh::square(8);
    let inv = mapping.tile_to_thread(64);
    let grid = render_grid(8, |r, c| {
        let tile = mesh.tile(Coord::new(r, c));
        match inv[tile.index()] {
            Some(j) => format!("{}", pi.instance.app_of_thread(j) + 1),
            None => ".".to_string(),
        }
    });
    let report = evaluate(&pi.instance, &mapping);
    let apls: Vec<String> = report
        .per_app
        .iter()
        .enumerate()
        .map(|(i, d)| format!("App {}: {:.2}", i + 1, d))
        .collect();
    format!(
        "## Figure 4 — Global mapping of C1 (application ids, 1 = lightest)\n\n{}\n\
         Per-app APLs: {} | g-APL {:.2}\n\
         (paper: App 1 pinned to the corners with APL 25.15 vs overall 21.35)\n",
        grid,
        apls.join(", "),
        report.g_apl
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig4_runs_and_shows_grid() {
        let out = super::run();
        assert!(out.contains("Figure 4"));
        assert!(out.contains("App 1"));
    }
}
