//! **Figure 5** — the metric-pitfall example of §III.A: on a 4×4 mesh with
//! four 4-thread applications (cache rates .1/.2/.3/.4, `td_r=3, td_w=1,
//! td_s=1`), two mappings both have perfectly equal APLs — dev-APL 0 and
//! min-to-max ratio 1 cannot tell them apart — yet one is optimal at
//! 10.3375 cycles and the other equally *bad* at 11.5375. Only max-APL
//! separates them, which is why the paper adopts it as the objective.

use noc_model::{LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies};
use obm_core::algorithms::{Mapper, SortSelectSwap};
use obm_core::{evaluate, BalanceMetric, Mapping, ObmInstance};

/// The Figure 5 instance.
pub fn fig5_instance() -> ObmInstance {
    let mesh = Mesh::square(4);
    let mcs = MemoryControllers::corners(&mesh);
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
    let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
    ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16])
}

/// The optimal (a) and reversed "equally bad" (b) mappings.
pub fn fig5_mappings(inst: &ObmInstance) -> (Mapping, Mapping) {
    // classify tiles by TC
    let mut corners = vec![];
    let mut edges = vec![];
    let mut centers = vec![];
    for k in 0..16 {
        let t = TileId(k);
        let tc = inst.tiles().tc(t);
        if (tc - 12.9375).abs() < 1e-9 {
            corners.push(t);
        } else if (tc - 10.9375).abs() < 1e-9 {
            edges.push(t);
        } else {
            centers.push(t);
        }
    }
    let mut good = vec![TileId(0); 16];
    let mut bad = vec![TileId(0); 16];
    for app in 0..4 {
        // (a): .1→corner, .2/.3→edges, .4→center
        good[app * 4] = corners[app];
        good[app * 4 + 1] = edges[2 * app];
        good[app * 4 + 2] = edges[2 * app + 1];
        good[app * 4 + 3] = centers[app];
        // (b): reversed
        bad[app * 4] = centers[app];
        bad[app * 4 + 1] = edges[2 * app + 1];
        bad[app * 4 + 2] = edges[2 * app];
        bad[app * 4 + 3] = corners[app];
    }
    (Mapping::new(good), Mapping::new(bad))
}

pub fn run() -> String {
    let inst = fig5_instance();
    let (good, bad) = fig5_mappings(&inst);
    let ra = evaluate(&inst, &good);
    let rb = evaluate(&inst, &bad);
    let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
    format!(
        "## Figure 5 — why max-APL is the right objective (4×4 example)\n\n\
         mapping (a) optimal      : APLs {:?} | max-APL {:.4} | dev-APL {:.4} | min/max {:.3}\n\
         mapping (b) equally bad  : APLs {:?} | max-APL {:.4} | dev-APL {:.4} | min/max {:.3}\n\
         (paper values: 10.3375 vs 11.5375 cycles)\n\n\
         dev-APL and min-to-max rate (a) and (b) identically; max-APL prefers (a) by {:.2} cycles.\n\
         SSS on this instance reaches max-APL {:.4} (= the optimum).\n",
        ra.per_app.iter().map(|d| (d * 1e4).round() / 1e4).collect::<Vec<_>>(),
        ra.max_apl,
        BalanceMetric::DevApl.value(&ra),
        BalanceMetric::MinToMaxRatio.value(&ra),
        rb.per_app.iter().map(|d| (d * 1e4).round() / 1e4).collect::<Vec<_>>(),
        rb.max_apl,
        BalanceMetric::DevApl.value(&rb),
        BalanceMetric::MinToMaxRatio.value(&rb),
        rb.max_apl - ra.max_apl,
        sss.max_apl,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_paper_values() {
        let inst = fig5_instance();
        let (good, bad) = fig5_mappings(&inst);
        let ra = evaluate(&inst, &good);
        let rb = evaluate(&inst, &bad);
        assert!((ra.max_apl - 10.3375).abs() < 1e-9);
        assert!((rb.max_apl - 11.5375).abs() < 1e-9);
        assert!(ra.dev_apl < 1e-9 && rb.dev_apl < 1e-9);
    }
}
