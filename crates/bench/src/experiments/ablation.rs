//! **Ablation** (extension beyond the paper) — quantify the design choices
//! Algorithm 2 fixes without exploring: the sliding-window size, the
//! middle-of-section selection rule, the step-size schedule, and the final
//! Hungarian pass. Averaged over C1–C8.

use crate::harness::all_paper_instances;
use crate::table::{f, MarkdownTable};
use obm_core::algorithms::sss::{SelectionRule, SortSelectSwap};
use obm_core::algorithms::{BalancedGreedy, HybridSssSa, Mapper};
use obm_core::evaluate;
use obm_core::Polished;

struct Variant {
    name: &'static str,
    cfg: SortSelectSwap,
}

fn variants() -> Vec<Variant> {
    let base = SortSelectSwap::default();
    vec![
        Variant {
            name: "paper default (w=4, middle, final SAM)",
            cfg: base,
        },
        Variant {
            name: "no swap step (w=1)",
            cfg: SortSelectSwap { window: 1, ..base },
        },
        Variant {
            name: "window w=2",
            cfg: SortSelectSwap { window: 2, ..base },
        },
        Variant {
            name: "window w=3",
            cfg: SortSelectSwap { window: 3, ..base },
        },
        Variant {
            name: "window w=5",
            cfg: SortSelectSwap { window: 5, ..base },
        },
        Variant {
            name: "select first-of-section",
            cfg: SortSelectSwap {
                selection: SelectionRule::First,
                ..base
            },
        },
        Variant {
            name: "select last-of-section",
            cfg: SortSelectSwap {
                selection: SelectionRule::Last,
                ..base
            },
        },
        Variant {
            name: "no final SAM pass",
            cfg: SortSelectSwap {
                final_sam: false,
                ..base
            },
        },
        Variant {
            name: "step size capped at 1",
            cfg: SortSelectSwap {
                max_step: Some(1),
                ..base
            },
        },
        Variant {
            name: "step size capped at 4",
            cfg: SortSelectSwap {
                max_step: Some(4),
                ..base
            },
        },
    ]
}

pub fn run() -> String {
    let instances = all_paper_instances();
    let mut t = MarkdownTable::new(vec![
        "variant",
        "max-APL (avg)",
        "dev-APL (avg)",
        "g-APL (avg)",
    ]);
    let mut emit = |name: &str, mapper: &dyn Mapper| {
        let mut max_apl = 0.0;
        let mut dev = 0.0;
        let mut g = 0.0;
        for pi in &instances {
            let r = evaluate(&pi.instance, &mapper.map(&pi.instance, 0));
            max_apl += r.max_apl;
            dev += r.dev_apl;
            g += r.g_apl;
        }
        let n = instances.len() as f64;
        t.row(vec![name.to_string(), f(max_apl / n), f(dev / n), f(g / n)]);
    };
    for v in variants() {
        emit(v.name, &v.cfg);
    }
    // Structural comparison points outside the SSS family.
    emit("balanced greedy dealing (O(N log N))", &BalancedGreedy);
    emit(
        "SSS + swap-polish pass",
        &Polished::new(SortSelectSwap::default()),
    );
    emit(
        "SSS + cold SA refinement (20k moves)",
        &HybridSssSa::default(),
    );
    format!(
        "## Ablation — SSS design choices (averaged over C1–C8)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablation_runs() {
        let out = super::run();
        assert!(out.contains("paper default"));
        assert!(out.contains("no swap step"));
    }
}
