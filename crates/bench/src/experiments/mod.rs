//! One module per table/figure of the paper. Each `run()` returns the
//! formatted output block; the `experiments` binary dispatches on the
//! experiment id and prints it.

pub mod ablation;
pub mod fig12;
pub mod fig3;
pub mod fig3sim;
pub mod fig4;
pub mod fig5;
pub mod fig8;
pub mod firstprinciples;
pub mod lineup_views;
pub mod loadcurve;
pub mod nocparams;
pub mod optgap;
pub mod oversub;
pub mod placement;
pub mod queueing;
pub mod scaling;
pub mod table1;
pub mod table3;
pub mod tails;
pub mod torus;
pub mod validate;
pub mod weighted;

/// All experiment ids: the paper's tables/figures in order, then the
/// validation pass and this repo's extension studies.
pub const ALL: &[&str] = &[
    "table1",
    "table3",
    "table4",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "validate",
    "ablation",
    "loadcurve",
    "scaling",
    "weighted",
    "torus",
    "firstprinciples",
    "optgap",
    "queueing",
    "fig3sim",
    "oversub",
    "nocparams",
    "tails",
    "placement",
];

/// Run one experiment by id. `fast` trims sample counts / simulated cycles
/// so the full suite stays CI-friendly. Sweep-style experiments
/// (`loadcurve`, `validate`, `tails`) use geometric injection by default;
/// [`run_with`] overrides the process.
pub fn run(id: &str, fast: bool) -> Option<String> {
    run_with(id, fast, noc_sim::InjectionProcess::Geometric)
}

/// [`run`] with an explicit injection process for the simulator-sweep
/// experiments. Ids whose output is pinned to the default Bernoulli RNG
/// stream (seeded replays, golden comparisons) ignore `injection`.
pub fn run_with(id: &str, fast: bool, injection: noc_sim::InjectionProcess) -> Option<String> {
    run_with_metrics(id, fast, injection, &noc_metrics::MetricsHandle::disabled())
}

/// [`run_with`] reporting into a metrics registry (DESIGN.md §17,
/// `obm experiments <id> --metrics`). Every experiment counts its run
/// under `experiment_runs_total`; `validate` additionally publishes its
/// throughput/parallelism gauges and the portfolio instrumentation.
pub fn run_with_metrics(
    id: &str,
    fast: bool,
    injection: noc_sim::InjectionProcess,
    metrics: &noc_metrics::MetricsHandle,
) -> Option<String> {
    let out = dispatch(id, fast, injection, metrics);
    if out.is_some() {
        metrics.inc("experiment_runs_total");
    }
    out
}

fn dispatch(
    id: &str,
    fast: bool,
    injection: noc_sim::InjectionProcess,
    metrics: &noc_metrics::MetricsHandle,
) -> Option<String> {
    Some(match id {
        "table1" => table1::run(fast),
        "table3" => table3::run(),
        "table4" => lineup_views::run_table4(),
        "fig3" => fig3::run(),
        "fig4" => fig4::run(),
        "fig5" => fig5::run(),
        "fig8" => fig8::run(),
        "fig9" => lineup_views::run_fig9(),
        "fig10" => lineup_views::run_fig10(),
        "fig11" => lineup_views::run_fig11(),
        "fig12" => fig12::run(fast),
        "validate" => validate::run_with_metrics(fast, injection, metrics),
        "ablation" => ablation::run(),
        "loadcurve" => loadcurve::run_with(fast, injection),
        "scaling" => scaling::run(fast),
        "weighted" => weighted::run(),
        "torus" => torus::run(),
        "firstprinciples" => firstprinciples::run(fast),
        "optgap" => optgap::run(fast),
        "queueing" => queueing::run(fast),
        "fig3sim" => fig3sim::run(fast),
        "oversub" => oversub::run(),
        "nocparams" => nocparams::run(fast),
        "tails" => tails::run_with(fast, injection),
        "placement" => placement::run(fast),
        _ => return None,
    })
}
