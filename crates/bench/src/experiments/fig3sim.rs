//! **Figure 3, measured** (extension) — reproduce the paper's per-tile
//! latency heatmaps from *measurement*: every tile injects identical
//! uniform traffic through the cycle-level simulator, and the measured
//! per-source APL grid is compared against the analytic `TC`-dominated
//! prediction. Closes the loop between Eq. (3) and the flit-level network.

use noc_model::{Coord, Mesh, TileLatencies};
use noc_sim::{Network, Schedule, SimConfig, TrafficSpec};

pub fn run(fast: bool) -> String {
    let mesh = Mesh::square(8);
    let cycles: u64 = if fast { 30_000 } else { 150_000 };
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.seed = 23;
    let cache_rate = 7.0; // C1-scale
    let mem_rate = 0.9;
    let traffic = TrafficSpec::uniform(
        &mesh,
        Schedule::per_kilocycle(cache_rate),
        Schedule::per_kilocycle(mem_rate),
    );
    let report = Network::new(cfg, traffic).expect("valid scenario").run();

    // Analytic prediction of a tile's mixed APL.
    let tl = TileLatencies::paper_default(&mesh);
    let predict = |t: noc_model::TileId| {
        (cache_rate * tl.tc(t) + mem_rate * tl.tm(t)) / (cache_rate + mem_rate)
    };

    let mut measured_grid = String::new();
    let mut worst_err: f64 = 0.0;
    for r in 0..8 {
        for c in 0..8 {
            let t = mesh.tile(Coord::new(r, c));
            let apl = report.per_source[t.index()].apl();
            let err = (apl - predict(t)).abs() / predict(t);
            worst_err = worst_err.max(err);
            measured_grid.push_str(&format!("{apl:>7.2}"));
        }
        measured_grid.push('\n');
    }
    format!(
        "## Figure 3, measured (extension) — per-source APL from the simulator\n\n\
         measured per-tile APL (cycles), uniform C1-scale traffic from every tile:\n{measured_grid}\n\
         worst per-tile deviation from the analytic (c·TC + m·TM)/(c+m) prediction: {:.1}%\n\
         (center tiles fast, corners slow — the Figure 3a gradient, reproduced from flits).\n",
        worst_err * 100.0
    )
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the cycle-level simulator; exercised by `experiments fig3sim`"]
    fn fig3sim_runs() {
        let out = super::run(true);
        assert!(out.contains("measured"));
    }
}
