//! **Topology ablation** (extension) — how much of the OBM problem is a
//! *mesh* phenomenon? On a torus the wraparound links make every tile's
//! average cache distance identical (vertex transitivity), so the
//! centre-vs-perimeter asymmetry that Global exploits disappears and only
//! the memory-controller distances (a ~13% traffic share) differentiate
//! tiles. Global's imbalance should therefore collapse on the torus.

use crate::table::{f, MarkdownTable};
use noc_model::{ChipLayout, LatencyParams, MemoryControllers, Mesh, TileLatencies, Topology};
use obm_core::algorithms::{Global, Mapper, SortSelectSwap};
use obm_core::{evaluate, ObmInstance};
use workload::{PaperConfig, WorkloadBuilder};

pub fn run() -> String {
    let (w, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let mesh = Mesh::square(8);
    let mcs = MemoryControllers::corners(&mesh);
    let params = LatencyParams::paper_table2();
    let (c, m) = w.rate_vectors();

    let mut t = MarkdownTable::new(vec!["topology", "algo", "max-APL", "dev-APL", "g-APL"]);
    let mut imbalance = Vec::new();
    let torus = ChipLayout::try_new(mesh, Topology::Torus, mcs.clone(), Vec::new())
        .expect("corner controllers are valid on a torus");
    for (name, tiles) in [
        ("mesh", TileLatencies::compute(&mesh, &mcs, params)),
        ("torus", TileLatencies::for_layout(&torus, params)),
    ] {
        let inst = ObmInstance::new(tiles, w.boundaries(), c.clone(), m.clone());
        for mapper in [&Global as &dyn Mapper, &SortSelectSwap::default()] {
            let r = evaluate(&inst, &mapper.map(&inst, 0));
            if mapper.name() == "Global" {
                imbalance.push((name, r.dev_apl));
            }
            t.row(vec![
                name.to_string(),
                mapper.name().to_string(),
                f(r.max_apl),
                f(r.dev_apl),
                f(r.g_apl),
            ]);
        }
    }
    format!(
        "## Topology ablation (extension) — mesh vs torus on C1\n\n{}\n\
         Global's dev-APL falls from {} (mesh) to {} (torus): the latency-balancing \
         problem is largely created by the mesh's centre/perimeter asymmetry; \
         wraparound links solve most of it in hardware, at the cost the paper's \
         §I cites (link/layout overhead) — mapping solves it for free.\n",
        t.render(),
        f(imbalance[0].1),
        f(imbalance[1].1),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn torus_collapses_global_imbalance() {
        let out = super::run();
        assert!(out.contains("Topology ablation"));
        assert!(out.contains("torus"));
    }
}
