//! **Table 3** — average values and standard deviations of the cache and
//! memory communication rates of the eight configurations, measured on the
//! generated traces and compared against the paper's targets.

use crate::table::{f, MarkdownTable};
use workload::{PaperConfig, WorkloadBuilder};

pub fn run() -> String {
    let mut t = MarkdownTable::new(vec![
        "cfg",
        "cache avg (paper)",
        "cache avg (ours)",
        "cache std (paper)",
        "cache std (ours)",
        "mem avg (paper)",
        "mem avg (ours)",
        "mem std (paper)",
        "mem std (ours)",
    ]);
    for cfg in PaperConfig::ALL {
        let (cache_t, mem_t) = cfg.targets();
        let traces = WorkloadBuilder::paper(cfg).build_traces();
        let cs = traces.cache_stats();
        let ms = traces.mem_stats();
        t.row(vec![
            cfg.name().to_string(),
            f(cache_t.mean),
            f(cs.mean()),
            f(cache_t.std_dev),
            f(cs.std_dev()),
            f(mem_t.mean),
            f(ms.mean()),
            f(mem_t.std_dev),
            f(ms.std_dev()),
        ]);
    }
    format!(
        "## Table 3 — communication-rate statistics of C1–C8 (trace-sample level)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table3_runs() {
        let out = super::run();
        assert!(out.contains("C8"));
    }
}
