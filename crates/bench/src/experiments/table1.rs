//! **Table 1** — "Imbalance exacerbation by global optimization":
//! average g-APL / max-APL / dev-APL over >10⁴ random mappings vs the
//! Global mapping, on configurations C1–C4.

use crate::harness::paper_instance;
use crate::table::{f, MarkdownTable};
use obm_core::algorithms::{Global, Mapper, RandomMapper};
use obm_core::evaluate;
use workload::PaperConfig;

pub fn run(fast: bool) -> String {
    let samples = if fast { 2_000 } else { 10_000 };
    let configs = [
        PaperConfig::C1,
        PaperConfig::C2,
        PaperConfig::C3,
        PaperConfig::C4,
    ];
    let mut t = MarkdownTable::new(vec![
        "cfg",
        "g-APL rand",
        "g-APL Global",
        "max-APL rand",
        "max-APL Global",
        "dev-APL rand",
        "dev-APL Global",
    ]);
    let mut sums = [0.0f64; 6];
    for cfg in configs {
        let pi = paper_instance(cfg);
        let rand = RandomMapper::averages(&pi.instance, samples, 0xA5);
        let glob = evaluate(&pi.instance, &Global.map(&pi.instance, 0));
        let row = [
            rand.mean_g_apl,
            glob.g_apl,
            rand.mean_max_apl,
            glob.max_apl,
            rand.mean_dev_apl,
            glob.dev_apl,
        ];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        t.row(vec![
            cfg.name().to_string(),
            f(row[0]),
            f(row[1]),
            f(row[2]),
            f(row[3]),
            f(row[4]),
            f(row[5]),
        ]);
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / 4.0).collect();
    t.row(vec![
        "Avg".to_string(),
        f(avg[0]),
        f(avg[1]),
        f(avg[2]),
        f(avg[3]),
        f(avg[4]),
        f(avg[5]),
    ]);
    format!(
        "## Table 1 — imbalance exacerbation by global optimization\n\
         (paper: Random avg g-APL 22.61 / Global 21.53; max-APL 22.73 → 24.97; dev-APL 0.54 → 1.84)\n\n{}\n\
         Global reduces g-APL by {:.2}% but raises max-APL by {:.2}% and dev-APL {:.1}×.\n",
        t.render(),
        (1.0 - avg[1] / avg[0]) * 100.0,
        (avg[3] / avg[2] - 1.0) * 100.0,
        avg[5] / avg[4],
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_shape_holds() {
        let out = super::run(true);
        assert!(out.contains("Table 1"));
        assert!(out.contains("C4"));
        // shape assertions live in the integration tests; here we only
        // check the experiment runs end-to-end.
        assert!(out.contains("Avg"));
    }
}
