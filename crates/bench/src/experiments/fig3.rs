//! **Figure 3** — per-tile packet latencies on the 8×8 mesh: cache access
//! latency `TC(k)` (low in the center, Figure 3a) and memory-controller
//! access latency `TM(k)` (low in the corners, Figure 3b).

use noc_model::{Coord, Mesh, TileLatencies};

pub fn run() -> String {
    let mesh = Mesh::square(8);
    let tl = TileLatencies::paper_default(&mesh);
    let grid = |vals: &dyn Fn(Coord) -> f64| {
        let mut s = String::new();
        for r in 0..8 {
            for c in 0..8 {
                s.push_str(&format!("{:>7.2}", vals(Coord::new(r, c))));
            }
            s.push('\n');
        }
        s
    };
    let tc = grid(&|c| tl.tc(mesh.tile(c)));
    let tm = grid(&|c| tl.tm(mesh.tile(c)));
    format!(
        "## Figure 3 — packet latencies on the 8×8 mesh\n\n\
         (a) cache latency TC(k), cycles — smaller in the center:\n{tc}\n\
         (b) memory latency TM(k), cycles — smaller in the corners:\n{tm}"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig3_gradients() {
        let out = super::run();
        assert!(out.contains("(a)"));
        assert!(out.contains("(b)"));
    }
}
