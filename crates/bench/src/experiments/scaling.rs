//! **Scaling** (extension) — empirical check of the `O(N³)` complexity
//! claim of §IV.B: wall-clock of sort-select-swap and of the Global
//! Hungarian solve across mesh sizes, with the fitted growth exponent.

use crate::table::MarkdownTable;
use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use obm_core::algorithms::{Global, Mapper, SortSelectSwap};
use obm_core::ObmInstance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn instance(n: usize, apps: usize, seed: u64) -> ObmInstance {
    let mesh = Mesh::square(n);
    let mcs = MemoryControllers::corners(&mesh);
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let total = n * n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Vec::with_capacity(total);
    let mut bounds = vec![0];
    let per = total / apps;
    for a in 0..apps {
        let count = if a + 1 == apps {
            total - per * (apps - 1)
        } else {
            per
        };
        let scale = 2.0f64.powi(a as i32);
        for _ in 0..count {
            c.push(scale * rng.gen_range(0.5..2.0));
        }
        bounds.push(c.len());
    }
    let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
    ObmInstance::new(tiles, bounds, c, m)
}

fn time_ms(mapper: &dyn Mapper, inst: &ObmInstance) -> f64 {
    // median of 3
    let mut ts: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(mapper.map(inst, 0));
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ts[1]
}

pub fn run(fast: bool) -> String {
    let sizes: &[usize] = if fast {
        &[4, 8, 12]
    } else {
        &[4, 8, 12, 16, 20]
    };
    let mut t = MarkdownTable::new(vec!["tiles N", "SSS (ms)", "Global (ms)"]);
    let mut pts = Vec::new();
    for &n in sizes {
        let inst = instance(n, 4, 1);
        let sss = time_ms(&SortSelectSwap::default(), &inst);
        let glob = time_ms(&Global, &inst);
        pts.push((n * n, sss));
        t.row(vec![
            format!("{}", n * n),
            format!("{sss:.2}"),
            format!("{glob:.2}"),
        ]);
    }
    // Fitted exponent between the two largest sizes.
    let (n1, t1) = pts[pts.len() - 2];
    let (n2, t2) = pts[pts.len() - 1];
    let exp = (t2 / t1).ln() / (n2 as f64 / n1 as f64).ln();
    format!(
        "## Scaling (extension) — runtime vs mesh size\n\n{}\n\
         SSS growth exponent between N={n1} and N={n2}: {exp:.2} \
         (theory: ≤ 3; the O(N²)·24-perm window stage dominates at small N).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaling_runs() {
        let out = super::run(true);
        assert!(out.contains("Scaling"));
        assert!(out.contains("144"));
    }
}
