//! **Tail latency** (extension) — the paper balances *average* latencies;
//! QoS agreements usually bind on tails. Does min-max APL balancing also
//! balance the p95/p99 packet latencies? Simulate Global and SSS mappings
//! of C1 and compare per-application percentiles.
//!
//! Quantiles here are **exact** nearest-rank statistics from the probed
//! run's sparse latency histograms (`noc-telemetry::histogram`), not the
//! bucket-interpolated approximations of `LatencyAccum::percentile`; the
//! decomposition columns split each application's mean latency into
//! source-queuing, in-network and serialization cycles (DESIGN.md §12).

use crate::harness::paper_instance;
use crate::pool;
use crate::sim_bridge::simulate_mapping_observed;
use crate::table::{f, MarkdownTable};
use noc_sim::InjectionProcess;
use obm_core::algorithms::{Global, Mapper, SortSelectSwap};
use workload::PaperConfig;

/// Sweeps default to geometric injection (percentiles are distribution
/// statistics, not seeded replays).
pub fn run(fast: bool) -> String {
    run_with(fast, InjectionProcess::Geometric)
}

pub fn run_with(fast: bool, injection: InjectionProcess) -> String {
    let cycles = if fast { 40_000 } else { 150_000 };
    let pi = paper_instance(PaperConfig::C1);
    let mut t = MarkdownTable::new(vec![
        "algo", "app", "mean APL", "p50", "p95", "p99", "max", "src-q", "net", "ser",
    ]);
    let mut spreads = Vec::new();
    let sss = SortSelectSwap::default();
    let mappers: [&(dyn Mapper + Sync); 2] = [&Global, &sss];
    // Simulate the two mappings across the shared pool; slot-ordered
    // results keep the table's serial row order.
    let runs = pool::run_indexed(mappers.len(), |i| {
        let mapping = mappers[i].map(&pi.instance, 0);
        simulate_mapping_observed(&pi, &mapping, cycles, 3, injection)
    });
    for (mapper, run) in mappers.iter().zip(&runs) {
        let mut p95s = Vec::new();
        for (i, acc) in run.flow.groups.iter().enumerate() {
            let q = |q: f64| acc.histogram.quantile(q).unwrap_or(0);
            t.row(vec![
                mapper.name().to_string(),
                format!("App {}", i + 1),
                f(acc.histogram.mean()),
                q(0.5).to_string(),
                q(0.95).to_string(),
                q(0.99).to_string(),
                acc.histogram.max().unwrap_or(0).to_string(),
                f(acc.mean_source_queue()),
                f(acc.mean_in_network()),
                f(acc.mean_serialization()),
            ]);
            p95s.push(q(0.95) as f64);
        }
        let spread = p95s.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - p95s.iter().cloned().fold(f64::INFINITY, f64::min);
        spreads.push((mapper.name(), spread));
    }
    format!(
        "## Tail latency (extension) — do balanced means imply balanced tails?\n\n{}\n\
         Per-app exact p95 spread: {} {} cycles vs {} {} cycles. Balancing the mean \
         APL largely balances the tails too — expected, because at these loads the \
         latency distribution is dominated by the (position-dependent) hop count, \
         not by queueing variance; the decomposition columns confirm the in-network \
         term carries the mean while source-queuing stays near zero.\n",
        t.render(),
        spreads[0].0,
        f(spreads[0].1),
        spreads[1].0,
        f(spreads[1].1),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "runs the cycle-level simulator; exercised by `experiments tails`"]
    fn tails_runs() {
        let out = super::run(true);
        assert!(out.contains("Tail latency"));
        assert!(out.contains("p99"));
    }
}
