//! **First-principles pipeline** (extension) — instead of calibrating the
//! per-thread `(c_j, m_j)` rates to Table 3, *derive* them by filtering
//! synthetic PARSEC-like address streams through the Table 2 cache
//! hierarchy (private L1s, MOESI-lite directory, distributed shared L2),
//! then run the mapping line-up on the derived workload. The paper's
//! headline shapes must survive the change of workload provenance.

use crate::harness::instance_from_workload;
use crate::table::{f, MarkdownTable};
use cmp_cache::address::AddressPattern;
use cmp_cache::system::{CacheAppSpec, CmpSystem, SystemConfig, ThreadSpec};
use noc_model::Mesh;
use obm_core::algorithms::{Global, Mapper, SortSelectSwap};
use obm_core::evaluate;

/// Four 16-thread applications spanning the locality regimes.
fn applications() -> Vec<CacheAppSpec> {
    let mk = |name: &str,
              base: u64,
              rate: f64,
              ws_lines: u64,
              skew: f64,
              write_frac: f64,
              shared_frac: f64| {
        CacheAppSpec {
            name: name.into(),
            threads: (0..16)
                .map(|i| ThreadSpec {
                    // per-thread skew: thread 0 hottest, like the profile
                    // library's Pareto ramp
                    accesses_per_kilocycle: rate / ((i + 1) as f64).powf(0.35),
                    write_fraction: write_frac,
                    line_reuse: 8,
                    // Region spacing is deliberately NOT a multiple of the
                    // bank-set stride (16 KB × banks): aligned bases would
                    // pile every thread's hot lines onto the same L2 sets.
                    private: AddressPattern::working_set(
                        base + i * (0x0100_0000 + 131 * 64),
                        ws_lines,
                        skew,
                    ),
                    shared_fraction: shared_frac,
                })
                .collect(),
            shared: AddressPattern::working_set(base + 0xF000_0000, 256, 0.9),
        }
    };
    // Footprints are sized against the Table 2 hierarchy: 32 KB L1s and a
    // 16 MB aggregate L2 (64 × 256 KB). Lines are 64 B, so e.g. 2 000
    // lines/thread × 16 threads = 2 MB app footprint.
    vec![
        // light, cache-friendly compute kernel (fits L1)
        mk(
            "blackscholes-like",
            0x0001_0000_0000,
            400.0,
            400,
            0.9,
            0.10,
            0.02,
        ),
        // balanced data-parallel code (spills L1, lives in L2)
        mk(
            "bodytrack-like",
            0x0002_0000_0000,
            900.0,
            1_200,
            0.95,
            0.20,
            0.08,
        ),
        // pointer-chasing over a large in-L2 structure
        mk(
            "canneal-like",
            0x0003_0000_0000,
            1_500.0,
            3_000,
            0.9,
            0.25,
            0.12,
        ),
        // streaming over the biggest footprint (still L2-resident: the
        // four apps total ≈ 11 MB of 16 MB aggregate L2)
        mk(
            "streamcluster-like",
            0x0004_0000_0000,
            2_200.0,
            6_000,
            0.8,
            0.30,
            0.05,
        ),
    ]
}

pub fn run(fast: bool) -> String {
    let mesh = Mesh::square(8);
    let cfg = SystemConfig {
        epochs: if fast { 80 } else { 500 },
        ..SystemConfig::paper_defaults(mesh)
    };
    let traces = CmpSystem::new(cfg, applications()).run();
    let workload = traces.to_workload();
    let inst = instance_from_workload(&workload);
    let glob = evaluate(&inst, &Global.map(&inst, 0));
    let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));

    let mut t = MarkdownTable::new(vec![
        "app (derived rates)",
        "c (req/kcyc)",
        "m (req/kcyc)",
        "Global APL",
        "SSS APL",
    ]);
    for (i, app) in workload.apps.iter().enumerate() {
        t.row(vec![
            app.name.clone(),
            f(app.total_cache_rate()),
            f(app.total_mem_rate()),
            f(glob.per_app[i]),
            f(sss.per_app[i]),
        ]);
    }
    format!(
        "## First-principles pipeline (extension) — cache hierarchy → rates → mapping\n\n\
         L1 hit rate {:.1}% | L2 hit rate {:.1}% | cache:mem traffic ratio {:.2} \
         (paper's PARSEC average: 6.78) | coherence packets {}\n\n{}\n\
         max-APL: Global {} → SSS {} ({:+.1}%); dev-APL {} → {}; g-APL {} → {} ({:+.1}%)\n\
         The headline shape (SSS equalizes APLs at a small g-APL cost) holds on rates derived\n\
         through the full cache hierarchy, not just on Table 3-calibrated ones.\n",
        traces.l1_stats.hit_rate() * 100.0,
        traces.l2_stats.hit_rate() * 100.0,
        traces.cache_to_mem_ratio(),
        traces.coherence_packets,
        t.render(),
        f(glob.max_apl),
        f(sss.max_apl),
        (sss.max_apl / glob.max_apl - 1.0) * 100.0,
        f(glob.dev_apl),
        f(sss.dev_apl),
        f(glob.g_apl),
        f(sss.g_apl),
        (sss.g_apl / glob.g_apl - 1.0) * 100.0,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn firstprinciples_shape_holds() {
        let out = super::run(true);
        assert!(out.contains("First-principles"));
        assert!(out.contains("SSS"));
    }
}
