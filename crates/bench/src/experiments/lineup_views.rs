//! Views over the shared four-algorithms × eight-configurations sweep:
//! **Table 4** (dev-APL), **Figure 9** (max-APL), **Figure 10** (normalized
//! g-APL) and **Figure 11** (normalized dynamic NoC power).

use crate::lineup::{mean_over_configs, run_lineup, Lineup};
use crate::table::{f, pct, MarkdownTable};
use std::sync::OnceLock;

const ALGOS: [&str; 4] = ["Global", "MC", "SA", "SSS"];

/// The sweep is expensive (SA budget calibration per config); share it
/// across the table/figure views within one process.
fn lineup() -> &'static Lineup {
    static LINEUP: OnceLock<Lineup> = OnceLock::new();
    LINEUP.get_or_init(|| run_lineup(0))
}

fn metric_table(title: &str, metric: impl Fn(&crate::lineup::AlgoResult) -> f64) -> String {
    let l = lineup();
    let mut header = vec!["algo".to_string()];
    header.extend(l.configs.iter().map(|c| c.config.name().to_string()));
    header.push("avg".to_string());
    let mut t = MarkdownTable::new(header);
    for algo in ALGOS {
        let mut row = vec![algo.to_string()];
        let mut sum = 0.0;
        for c in &l.configs {
            let v = metric(c.algo(algo));
            sum += v;
            row.push(f(v));
        }
        row.push(f(sum / l.configs.len() as f64));
        t.row(row);
    }
    format!("## {title}\n\n{}", t.render())
}

/// Table 4 — dev-APL of the four algorithms on C1–C8.
pub fn run_table4() -> String {
    let l = lineup();
    let base = metric_table("Table 4 — dev-APL for different configurations", |a| {
        a.report.dev_apl
    });
    let g = mean_over_configs(l, "Global", |a| a.report.dev_apl);
    let mc = mean_over_configs(l, "MC", |a| a.report.dev_apl);
    let sa = mean_over_configs(l, "SA", |a| a.report.dev_apl);
    let sss = mean_over_configs(l, "SSS", |a| a.report.dev_apl);
    format!(
        "{base}\nSSS reduces dev-APL by {} vs Global, {} vs MC, {} vs SA \
         (paper: −99.65%, −95.45%, −83.15%).\n",
        pct(sss / g - 1.0),
        pct(sss / mc - 1.0),
        pct(sss / sa - 1.0),
    )
}

/// Figure 9 — max-APL of the four algorithms on C1–C8.
pub fn run_fig9() -> String {
    let l = lineup();
    let base = metric_table("Figure 9 — max-APL comparison (cycles)", |a| {
        a.report.max_apl
    });
    let g = mean_over_configs(l, "Global", |a| a.report.max_apl);
    let mc = mean_over_configs(l, "MC", |a| a.report.max_apl);
    let sa = mean_over_configs(l, "SA", |a| a.report.max_apl);
    let sss = mean_over_configs(l, "SSS", |a| a.report.max_apl);
    format!(
        "{base}\nvs Global: SSS {}, MC {}, SA {} \
         (paper: SSS −10.42%, MC −8.74%, SA −9.44%).\n",
        pct(sss / g - 1.0),
        pct(mc / g - 1.0),
        pct(sa / g - 1.0),
    )
}

/// Figure 10 — g-APL normalized to Global.
pub fn run_fig10() -> String {
    let l = lineup();
    let mut header = vec!["algo".to_string()];
    header.extend(l.configs.iter().map(|c| c.config.name().to_string()));
    header.push("avg".to_string());
    let mut t = MarkdownTable::new(header);
    for algo in ALGOS {
        let mut row = vec![algo.to_string()];
        let mut sum = 0.0;
        for c in &l.configs {
            let norm = c.algo(algo).report.g_apl / c.algo("Global").report.g_apl;
            sum += norm;
            row.push(format!("{norm:.3}"));
        }
        row.push(format!("{:.3}", sum / l.configs.len() as f64));
        t.row(row);
    }
    let sss_avg: f64 = l
        .configs
        .iter()
        .map(|c| c.algo("SSS").report.g_apl / c.algo("Global").report.g_apl)
        .sum::<f64>()
        / l.configs.len() as f64;
    format!(
        "## Figure 10 — normalized g-APL (Global = 1.0)\n\n{}\n\
         SSS overall-latency overhead vs Global: {} (paper: < +3.82%; SA +4.82%, MC +5.35%).\n",
        t.render(),
        pct(sss_avg - 1.0),
    )
}

/// Figure 11 — dynamic NoC power normalized to Global.
pub fn run_fig11() -> String {
    let l = lineup();
    let mut header = vec!["algo".to_string()];
    header.extend(l.configs.iter().map(|c| c.config.name().to_string()));
    header.push("avg".to_string());
    let mut t = MarkdownTable::new(header);
    for algo in ALGOS {
        let mut row = vec![algo.to_string()];
        let mut sum = 0.0;
        for c in &l.configs {
            let norm = c.algo(algo).dynamic_power_mw / c.algo("Global").dynamic_power_mw;
            sum += norm;
            row.push(format!("{norm:.3}"));
        }
        row.push(format!("{:.3}", sum / l.configs.len() as f64));
        t.row(row);
    }
    let sss_avg: f64 = l
        .configs
        .iter()
        .map(|c| c.algo("SSS").dynamic_power_mw / c.algo("Global").dynamic_power_mw)
        .sum::<f64>()
        / l.configs.len() as f64;
    format!(
        "## Figure 11 — normalized dynamic NoC power (Global = 1.0)\n\n{}\n\
         SSS power overhead vs Global: {} (paper: < +2.7%).\n",
        t.render(),
        pct(sss_avg - 1.0),
    )
}
