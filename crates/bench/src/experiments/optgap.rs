//! **Optimality gap** (extension) — how far from the true optimum is
//! sort-select-swap? The branch-and-bound solver proves exact optima on
//! 4×4-mesh instances (16 threads — far beyond brute force), giving an
//! empirical answer the paper could not provide.

use crate::table::{f, MarkdownTable};
use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use obm_core::algorithms::{
    BalancedGreedy, BranchAndBound, Mapper, SimulatedAnnealing, SortSelectSwap,
};
use obm_core::{evaluate, ObmInstance};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64, apps: usize) -> ObmInstance {
    let mesh = Mesh::square(4);
    let mcs = MemoryControllers::corners(&mesh);
    let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = 16;
    let mut c = Vec::with_capacity(n);
    let mut bounds = vec![0];
    for a in 1..=apps {
        let scale = 2.5f64.powi(a as i32 - 1);
        while c.len() < a * n / apps {
            c.push(scale * rng.gen_range(0.3..3.0));
        }
        bounds.push(c.len());
    }
    let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
    ObmInstance::new(tl, bounds, c, m)
}

pub fn run(fast: bool) -> String {
    let trials = if fast { 5 } else { 20 };
    let solver = BranchAndBound::default();
    let mut t = MarkdownTable::new(vec!["algorithm", "mean gap", "max gap", "optimal in"]);
    let heuristics: Vec<(&str, Box<dyn Mapper>)> = vec![
        ("SSS", Box::new(SortSelectSwap::default())),
        (
            "SA (20k iters)",
            Box::new(SimulatedAnnealing::with_iterations(20_000)),
        ),
        ("Greedy", Box::new(BalancedGreedy)),
    ];
    let mut proven = 0usize;
    let mut optima = Vec::new();
    let mut instances = Vec::new();
    for seed in 0..trials {
        let inst = random_instance(seed as u64, 4);
        let r = solver.solve_budgeted(&inst, &obm_core::CancelToken::never(), None);
        if r.proven_optimal {
            proven += 1;
            optima.push(r.objective);
            instances.push(inst);
        }
    }
    for (name, mapper) in &heuristics {
        let mut gaps = Vec::new();
        let mut hits = 0usize;
        for (inst, &opt) in instances.iter().zip(&optima) {
            let val = evaluate(inst, &mapper.map(inst, 1)).max_apl;
            let gap = (val - opt) / opt;
            if gap < 1e-6 {
                hits += 1;
            }
            gaps.push(gap);
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        t.row(vec![
            name.to_string(),
            format!("{:.3}%", mean * 100.0),
            format!("{:.3}%", max * 100.0),
            format!("{hits}/{}", instances.len()),
        ]);
    }
    format!(
        "## Optimality gap (extension) — heuristics vs proven optima (4×4 mesh, 4 apps)\n\n\
         Branch-and-bound proved the optimum on {proven}/{trials} random instances \
         (mean optimum {} cycles).\n\n{}",
        f(optima.iter().sum::<f64>() / optima.len().max(1) as f64),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn optgap_runs() {
        let out = super::run(true);
        assert!(out.contains("Optimality gap"));
        assert!(out.contains("SSS"));
    }
}
