//! Shared work-stealing worker pool for the sweep layer.
//!
//! Every simulation-backed experiment fans a grid of independent seeded
//! runs (portfolio × sweep point × replication) out to threads. The old
//! scheme spawned one scoped thread per grid item, which oversubscribes
//! small hosts on big grids and leaves big hosts idle on small grids
//! once the longest item becomes the critical path. [`run_indexed`]
//! instead spawns `min(workers, items)` threads that *steal* the next
//! unclaimed index from a shared atomic counter, so a slow item (e.g.
//! the saturated end of a load curve) never strands the rest of the
//! grid behind it.
//!
//! Results are written into their item's slot, so the output order — and
//! therefore every rendered table — is identical to the serial order
//! whatever the worker count or steal interleaving. The closure receives
//! only the item index; experiments index into their own point lists,
//! which keeps borrows trivially `Sync`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread budget: `OBM_WORKERS` if set to a positive integer,
/// otherwise the detected core count. The experiment surfaces print the
/// effective value so sweep logs record what actually ran.
pub fn effective_workers() -> usize {
    std::env::var("OBM_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(detected_cores)
}

/// Core count the host reports (1 if detection fails).
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(0..n)` across the shared pool and return the results in index
/// order. Blocks until the whole grid is done; a panicking item
/// propagates out of the enclosing scope after the other workers finish
/// their current items.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(effective_workers(), n, f)
}

/// [`run_indexed`] with an explicit worker budget (clamped to the grid
/// size; `0` is treated as `1`).
pub fn run_indexed_with<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    let mut slots: Vec<Mutex<Option<T>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let next = AtomicUsize::new(0);
    let (f, slots_ref, next_ref) = (&f, &slots, &next);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                if let Ok(mut slot) = slots_ref[i].lock() {
                    *slot = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .ok()
                .flatten()
                .expect("every grid index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_indexed_with(workers, 37, |i| i * i);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_grid_returns_empty() {
        let got: Vec<usize> = run_indexed_with(4, 0, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn stealing_covers_every_index_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let got = run_indexed_with(3, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn env_override_is_ignored_when_invalid() {
        // `effective_workers` falls back to the detected core count for
        // unset/invalid values; both paths must return at least 1.
        assert!(effective_workers() >= 1);
        assert!(detected_cores() >= 1);
    }
}
