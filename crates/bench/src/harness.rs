//! Shared experiment plumbing: paper instances, the standard algorithm
//! line-up, and timing helpers.

use noc_model::{Mesh, TileLatencies};
use obm_core::algorithms::{Global, Mapper, MonteCarlo, SimulatedAnnealing, SortSelectSwap};
use obm_core::ObmInstance;
use std::time::{Duration, Instant};
use workload::{PaperConfig, TraceSet, Workload, WorkloadBuilder};

/// Everything derived from one paper configuration.
pub struct PaperInstance {
    pub config: PaperConfig,
    pub workload: Workload,
    pub traces: TraceSet,
    pub instance: ObmInstance,
}

/// Build the OBM instance for a paper configuration on the 8×8 mesh with
/// Table 2 latency parameters.
pub fn paper_instance(cfg: PaperConfig) -> PaperInstance {
    let (workload, traces) = WorkloadBuilder::paper(cfg).build();
    let instance = instance_from_workload(&workload);
    PaperInstance {
        config: cfg,
        workload,
        traces,
        instance,
    }
}

/// OBM instance from any workload on the paper's 8×8 platform.
pub fn instance_from_workload(w: &Workload) -> ObmInstance {
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = w.rate_vectors();
    ObmInstance::new(tiles, w.boundaries(), c, m)
}

/// All eight paper instances.
pub fn all_paper_instances() -> Vec<PaperInstance> {
    PaperConfig::ALL
        .iter()
        .map(|&c| paper_instance(c))
        .collect()
}

/// The paper's four compared algorithms with their §V.A parameters
/// (MC: 10⁴ samples; SA: iteration budget set for runtime comparable to
/// SSS via [`sa_matching_sss`]).
pub fn standard_mappers(sa_iterations: usize) -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(Global),
        Box::new(MonteCarlo {
            samples: 10_000,
            workers: 4,
        }),
        Box::new(SimulatedAnnealing::with_iterations(sa_iterations)),
        Box::new(SortSelectSwap::default()),
    ]
}

/// Wall-clock one mapper run.
pub fn time_mapper(mapper: &dyn Mapper, inst: &ObmInstance, seed: u64) -> Duration {
    let t0 = Instant::now();
    let m = mapper.map(inst, seed);
    let dt = t0.elapsed();
    std::hint::black_box(m);
    dt
}

/// Median-of-`reps` wall-clock for a mapper.
pub fn median_runtime(mapper: &dyn Mapper, inst: &ObmInstance, reps: usize) -> Duration {
    assert!(reps > 0);
    let mut times: Vec<Duration> = (0..reps as u64)
        .map(|s| time_mapper(mapper, inst, s))
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// SA iteration budget whose wall-clock roughly matches one SSS run on the
/// given instance ("SA is allowed to have similar runtime as SSS",
/// paper §V.B.5).
pub fn sa_matching_sss(inst: &ObmInstance) -> usize {
    let sss_time = median_runtime(&SortSelectSwap::default(), inst, 3);
    sa_iterations_for(inst, sss_time)
}

/// SA iteration budget that fills approximately `budget` of wall-clock.
pub fn sa_iterations_for(inst: &ObmInstance, budget: Duration) -> usize {
    // Probe SA throughput with a short run.
    const PROBE: usize = 20_000;
    let t = time_mapper(&SimulatedAnnealing::with_iterations(PROBE), inst, 0);
    let per_iter = t.as_secs_f64() / PROBE as f64;
    ((budget.as_secs_f64() / per_iter) as usize).max(100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_dimensions() {
        let pi = paper_instance(PaperConfig::C1);
        assert_eq!(pi.instance.num_tiles(), 64);
        assert_eq!(pi.instance.num_threads(), 64);
        assert_eq!(pi.instance.num_apps(), 4);
    }

    #[test]
    fn standard_lineup_names() {
        let mappers = standard_mappers(1000);
        let names: Vec<&str> = mappers.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Global", "MC", "SA", "SSS"]);
    }

    #[test]
    fn sa_budget_is_positive() {
        let pi = paper_instance(PaperConfig::C2);
        let iters = sa_iterations_for(&pi.instance, Duration::from_millis(5));
        assert!(iters >= 100);
    }
}
