//! Bridge between the mapping layer and the cycle-level simulator:
//! turn (instance, mapping, traces) into per-tile traffic sources and run
//! the network.

use crate::harness::PaperInstance;
use noc_model::Mesh;
use noc_sim::{Network, Schedule, SimConfig, SimReport, SourceSpec};
use obm_core::Mapping;

/// Build the per-tile sources that a mapping induces: thread `j` of
/// application `i` injects from tile `π(j)` at its average rates.
pub fn sources_from_mapping(pi: &PaperInstance, mapping: &Mapping) -> Vec<SourceSpec> {
    let inst = &pi.instance;
    (0..inst.num_threads())
        .map(|j| SourceSpec {
            tile: mapping.tile_of(j),
            group: inst.app_of_thread(j),
            cache: Schedule::per_kilocycle(inst.cache_rate(j)),
            mem: Schedule::per_kilocycle(inst.mem_rate(j)),
        })
        .collect()
}

/// Trace-replay variant: each thread's epoch trace drives a piecewise
/// injection schedule instead of its mean rate.
pub fn trace_sources_from_mapping(pi: &PaperInstance, mapping: &Mapping) -> Vec<SourceSpec> {
    let inst = &pi.instance;
    (0..inst.num_threads())
        .map(|j| {
            let tr = &pi.traces.traces[j];
            SourceSpec {
                tile: mapping.tile_of(j),
                group: inst.app_of_thread(j),
                cache: Schedule::trace_per_kilocycle(pi.traces.epoch_cycles, &tr.cache),
                mem: Schedule::trace_per_kilocycle(pi.traces.epoch_cycles, &tr.mem),
            }
        })
        .collect()
}

/// Run the cycle-level simulation of a mapping with the paper's Table 2
/// network, measuring `measure_cycles` cycles after a proportional warm-up.
pub fn simulate_mapping(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
) -> SimReport {
    let mesh = Mesh::square(8);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = (measure_cycles / 10).max(1_000);
    cfg.measure_cycles = measure_cycles;
    cfg.seed = seed;
    let sources = sources_from_mapping(pi, mapping);
    Network::new(cfg, sources, pi.instance.num_apps()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_instance;
    use obm_core::algorithms::{Mapper, SortSelectSwap};
    use workload::PaperConfig;

    #[test]
    fn sources_cover_all_threads_once() {
        let pi = paper_instance(PaperConfig::C2);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let sources = sources_from_mapping(&pi, &mapping);
        assert_eq!(sources.len(), 64);
        let mut tiles: Vec<usize> = sources.iter().map(|s| s.tile.index()).collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), 64);
    }

    #[test]
    fn short_simulation_roundtrip() {
        let pi = paper_instance(PaperConfig::C2);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let report = simulate_mapping(&pi, &mapping, 20_000, 1);
        assert!(report.fully_drained, "{}", report.summary());
        assert!(report.delivered > 0);
        // Measured g-APL must be in the ballpark of the analytic model.
        let analytic = obm_core::evaluate(&pi.instance, &mapping).g_apl;
        let measured = report.g_apl();
        assert!(
            (measured - analytic).abs() / analytic < 0.25,
            "analytic {analytic} vs simulated {measured}"
        );
    }
}
