//! Bridge between the mapping layer and the cycle-level simulator:
//! turn (instance, mapping, traces) into a [`TrafficSpec`] and run the
//! network.
//!
//! The mean-rate glue lives in [`obm_core::traffic_spec`]; this module
//! adds the trace-replay variant (epoch traces are a bench-harness
//! concept) and the seeded run helpers the experiments share.

use crate::harness::PaperInstance;
use noc_model::Mesh;
use noc_sim::telemetry::{FlowSummary, HeatmapRecord, Probe, RingSink};
use noc_sim::{InjectionProcess, Network, Schedule, SimConfig, SimReport, SourceSpec, TrafficSpec};
use obm_core::Mapping;

/// The traffic a mapping induces at mean rates: thread `j` of application
/// `i` injects from tile `π(j)` at its average rates.
pub fn traffic_from_mapping(pi: &PaperInstance, mapping: &Mapping) -> TrafficSpec {
    obm_core::traffic_spec(&pi.instance, mapping)
}

/// Trace-replay variant: each thread's epoch trace drives a piecewise
/// injection schedule instead of its mean rate.
pub fn trace_traffic_from_mapping(pi: &PaperInstance, mapping: &Mapping) -> TrafficSpec {
    let inst = &pi.instance;
    let sources: Vec<SourceSpec> = (0..inst.num_threads())
        .map(|j| {
            let tr = &pi.traces.traces[j];
            SourceSpec {
                tile: mapping.tile_of(j),
                group: inst.app_of_thread(j),
                cache: Schedule::trace_per_kilocycle(pi.traces.epoch_cycles, &tr.cache),
                mem: Schedule::trace_per_kilocycle(pi.traces.epoch_cycles, &tr.mem),
            }
        })
        .collect();
    TrafficSpec::new(sources, inst.num_apps()).expect("valid mapping induces valid traffic")
}

/// The paper's Table 2 simulation config for a mapped instance, measuring
/// `measure_cycles` cycles after a proportional warm-up.
///
/// Honors `OBM_SIM_SHARDS` ([`noc_sim::env_shards`]): sharding is
/// bit-identical to the serial engine (`tests/shard_determinism.rs`), so
/// every experiment built on these helpers can be sharded from the
/// environment without perturbing its pinned goldens.
fn paper_sim_config(measure_cycles: u64, seed: u64, injection: InjectionProcess) -> SimConfig {
    let mesh = Mesh::square(8);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = (measure_cycles / 10).max(1_000);
    cfg.measure_cycles = measure_cycles;
    cfg.seed = seed;
    cfg.injection = injection;
    cfg.shards = noc_sim::env_shards().unwrap_or(1);
    cfg
}

/// Run the cycle-level simulation of a mapping with the paper's Table 2
/// network, measuring `measure_cycles` cycles after a proportional warm-up.
///
/// Uses the default Bernoulli-per-cycle injection so seeded runs stay
/// bit-identical with the PR 1 goldens; sweeps that only need the arrival
/// *distribution* pick the geometric fast path via
/// [`simulate_mapping_with`].
pub fn simulate_mapping(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
) -> SimReport {
    simulate_mapping_with(
        pi,
        mapping,
        measure_cycles,
        seed,
        InjectionProcess::BernoulliPerCycle,
    )
}

/// [`simulate_mapping`] with a metrics registry attached (DESIGN.md
/// §17). The report is bit-identical to the plain run — the registry is
/// a write-only observer; the criterion twin of this helper prices the
/// enabled-path overhead (`metrics_delta_pct/enabled`).
pub fn simulate_mapping_metered(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
    metrics: noc_metrics::MetricsHandle,
) -> SimReport {
    let cfg = paper_sim_config(measure_cycles, seed, InjectionProcess::BernoulliPerCycle);
    Network::new(cfg, traffic_from_mapping(pi, mapping))
        .expect("paper scenario is valid")
        .with_metrics(metrics)
        .run()
}

/// [`simulate_mapping`] with an explicit shard count for the row-band
/// parallel engine, overriding `OBM_SIM_SHARDS`. Bit-identical to the
/// serial run for any count — the knob only trades wall-clock.
pub fn simulate_mapping_sharded(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
    shards: usize,
) -> SimReport {
    let mut cfg = paper_sim_config(measure_cycles, seed, InjectionProcess::BernoulliPerCycle);
    cfg.shards = shards;
    Network::new(cfg, traffic_from_mapping(pi, mapping))
        .expect("paper scenario is valid")
        .run()
}

/// [`simulate_mapping`] with an explicit injection process.
pub fn simulate_mapping_with(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
    injection: InjectionProcess,
) -> SimReport {
    let cfg = paper_sim_config(measure_cycles, seed, injection);
    Network::new(cfg, traffic_from_mapping(pi, mapping))
        .expect("paper scenario is valid")
        .run()
}

/// [`simulate_mapping`], additionally streaming windowed telemetry to
/// `probe`. Bit-identical to the unprobed run for any probe.
pub fn simulate_mapping_probed(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
    probe: &mut dyn Probe,
) -> SimReport {
    simulate_mapping_probed_with(
        pi,
        mapping,
        measure_cycles,
        seed,
        InjectionProcess::BernoulliPerCycle,
        probe,
    )
}

/// [`simulate_mapping_probed`] with an explicit injection process.
pub fn simulate_mapping_probed_with(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
    injection: InjectionProcess,
    probe: &mut dyn Probe,
) -> SimReport {
    let cfg = paper_sim_config(measure_cycles, seed, injection);
    Network::new(cfg, traffic_from_mapping(pi, mapping))
        .expect("paper scenario is valid")
        .run_probed(probe)
}

/// A probed run bundled with its end-of-run observability records: the
/// exact latency histograms with the DESIGN.md §12 decomposition
/// ([`FlowSummary`]) and the spatial link/VC/stall heatmap
/// ([`HeatmapRecord`]). Semantically identical to the unprobed
/// [`SimReport`] for the same seed.
pub struct ObservedRun {
    pub report: SimReport,
    pub flow: FlowSummary,
    pub heatmap: HeatmapRecord,
}

/// [`simulate_mapping_with`], additionally capturing the flow summary and
/// heatmap the probed run emits at end of run.
pub fn simulate_mapping_observed(
    pi: &PaperInstance,
    mapping: &Mapping,
    measure_cycles: u64,
    seed: u64,
    injection: InjectionProcess,
) -> ObservedRun {
    let mut sink = RingSink::new(2);
    let report = simulate_mapping_probed_with(pi, mapping, measure_cycles, seed, injection, {
        // Windows are streamed but evicted by the tiny ring; the flow and
        // heatmap records arrive last, so both survive.
        &mut sink
    });
    let flow = sink
        .flow_summaries()
        .next()
        .cloned()
        .expect("probed run emits a flow summary");
    let heatmap = sink
        .heatmaps()
        .next()
        .cloned()
        .expect("probed run emits a heatmap");
    ObservedRun {
        report,
        flow,
        heatmap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::paper_instance;
    use noc_sim::telemetry::RingSink;
    use obm_core::algorithms::{Mapper, SortSelectSwap};
    use workload::PaperConfig;

    #[test]
    fn sources_cover_all_threads_once() {
        let pi = paper_instance(PaperConfig::C2);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let traffic = traffic_from_mapping(&pi, &mapping);
        assert_eq!(traffic.sources().len(), 64);
        assert_eq!(traffic.num_groups(), 4);
        let mut tiles: Vec<usize> = traffic.sources().iter().map(|s| s.tile.index()).collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), 64);
    }

    #[test]
    fn short_simulation_roundtrip() {
        let pi = paper_instance(PaperConfig::C2);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let report = simulate_mapping(&pi, &mapping, 20_000, 1);
        assert!(report.fully_drained, "{}", report.summary());
        assert!(report.delivered > 0);
        // Measured g-APL must be in the ballpark of the analytic model.
        let analytic = obm_core::evaluate(&pi.instance, &mapping).g_apl;
        let measured = report.g_apl();
        assert!(
            (measured - analytic).abs() / analytic < 0.25,
            "analytic {analytic} vs simulated {measured}"
        );
    }

    /// Mode equivalence on the paper's C1 8×8 workload: geometric
    /// inter-arrival sampling must reproduce the Bernoulli process's
    /// arrival *distribution*, so mean latency and injected volume agree
    /// within statistical tolerance (the RNG streams differ, so the runs
    /// are not bit-identical — only distributionally equivalent).
    #[test]
    fn geometric_matches_bernoulli_on_c1() {
        let pi = paper_instance(PaperConfig::C1);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let cycles = 40_000;
        let bern = simulate_mapping(&pi, &mapping, cycles, 9);
        let geom = simulate_mapping_with(&pi, &mapping, cycles, 9, InjectionProcess::Geometric);
        assert!(bern.fully_drained && geom.fully_drained);
        // Same offered load ⇒ injected volumes within 5% of each other.
        let inj_ratio = geom.injected as f64 / bern.injected as f64;
        assert!(
            (inj_ratio - 1.0).abs() < 0.05,
            "injected: bernoulli {} vs geometric {}",
            bern.injected,
            geom.injected
        );
        // Same network, same distribution ⇒ mean latencies statistically
        // indistinguishable (hop-count dominated at C1 loads).
        let apl_err = (geom.g_apl() - bern.g_apl()).abs() / bern.g_apl();
        assert!(
            apl_err < 0.02,
            "g-APL: bernoulli {} vs geometric {}",
            bern.g_apl(),
            geom.g_apl()
        );
        // The two modes consume the RNG differently: Bernoulli never draws
        // arrivals from the heap sampler, geometric draws one per packet.
        assert_eq!(bern.network.arrival_draws, 0);
        assert!(geom.network.arrival_draws >= geom.injected);
    }

    #[test]
    fn observed_run_reconciles_with_report() {
        let pi = paper_instance(PaperConfig::C1);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let obs =
            simulate_mapping_observed(&pi, &mapping, 5_000, 3, InjectionProcess::BernoulliPerCycle);
        // Flow summary covers exactly the measured packets...
        assert_eq!(obs.flow.total_packets(), obs.report.delivered);
        // ...and the heatmap's link counts conserve all flit traversals.
        assert_eq!(
            obs.heatmap.total_link_flits(),
            obs.report.network.flit_hops()
        );
        // Exact quantiles are monotone and bounded by the histogram max.
        let h = &obs.flow.merged().histogram;
        let (p50, p99, max) = (
            h.quantile(0.5).unwrap(),
            h.quantile(0.99).unwrap(),
            h.max().unwrap(),
        );
        assert!(p50 <= p99 && p99 <= max);
    }

    #[test]
    fn sharded_simulation_is_bit_identical() {
        let pi = paper_instance(PaperConfig::C1);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let serial = simulate_mapping(&pi, &mapping, 5_000, 3);
        let sharded = simulate_mapping_sharded(&pi, &mapping, 5_000, 3, 4);
        assert!(serial.semantic_eq(&sharded), "sharding perturbed the run");
    }

    #[test]
    fn probed_simulation_is_bit_identical() {
        let pi = paper_instance(PaperConfig::C1);
        let mapping = SortSelectSwap::default().map(&pi.instance, 0);
        let plain = simulate_mapping(&pi, &mapping, 5_000, 3);
        let mut sink = RingSink::new(1024);
        let probed = simulate_mapping_probed(&pi, &mapping, 5_000, 3, &mut sink);
        assert!(plain.semantic_eq(&probed), "probe perturbed the run");
        assert!(sink.windows().count() > 0);
    }
}
