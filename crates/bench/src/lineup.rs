//! The shared "four algorithms × eight configurations" sweep behind
//! Table 4 and Figures 9–11: run Global, MC, SA and SSS on C1–C8 once and
//! let each experiment format its own view of the results.
//!
//! The per-configuration runs are independent, so they are work-stolen
//! across the shared sweep pool ([`crate::pool`]).

use crate::harness::{paper_instance, sa_matching_sss, standard_mappers, PaperInstance};
use crate::pool;
use noc_model::Mesh;
use noc_power::{analytic_power, PlacedLoad, PowerParams};
use obm_core::{evaluate, AplReport, Mapping};
use workload::PaperConfig;

/// Result of one algorithm on one configuration.
pub struct AlgoResult {
    pub algo: &'static str,
    pub mapping: Mapping,
    pub report: AplReport,
    /// Analytic dynamic NoC power in mW.
    pub dynamic_power_mw: f64,
}

/// One configuration's full line-up.
pub struct ConfigResults {
    pub config: PaperConfig,
    pub instance: PaperInstance,
    pub algos: Vec<AlgoResult>,
}

impl ConfigResults {
    /// Result of a named algorithm.
    pub fn algo(&self, name: &str) -> &AlgoResult {
        self.algos
            .iter()
            .find(|a| a.algo == name)
            .unwrap_or_else(|| panic!("unknown algorithm {name}"))
    }
}

/// The whole sweep.
pub struct Lineup {
    pub configs: Vec<ConfigResults>,
}

/// Mean flits per packet for the paper's even request/reply mix.
pub const MEAN_FLITS_PER_PACKET: f64 = 3.0;

fn run_config(cfg: PaperConfig, seed: u64) -> ConfigResults {
    let pi = paper_instance(cfg);
    let sa_iters = sa_matching_sss(&pi.instance);
    let mesh = Mesh::square(8);
    let power_params = PowerParams::dsent_45nm();
    let algos = standard_mappers(sa_iters)
        .iter()
        .map(|mapper| {
            let mapping = mapper.map(&pi.instance, seed);
            let report = evaluate(&pi.instance, &mapping);
            let loads: Vec<PlacedLoad> = (0..pi.instance.num_threads())
                .map(|j| PlacedLoad {
                    tile: mapping.tile_of(j),
                    cache_rate: pi.instance.cache_rate(j) / 1000.0,
                    mem_rate: pi.instance.mem_rate(j) / 1000.0,
                })
                .collect();
            let power = analytic_power(
                &power_params,
                &mesh,
                pi.instance.tiles(),
                &loads,
                MEAN_FLITS_PER_PACKET,
            );
            AlgoResult {
                algo: match mapper.name() {
                    "Global" => "Global",
                    "MC" => "MC",
                    "SA" => "SA",
                    "SSS" => "SSS",
                    other => panic!("unexpected mapper {other}"),
                },
                mapping,
                report,
                dynamic_power_mw: power.dynamic_mw,
            }
        })
        .collect();
    ConfigResults {
        config: cfg,
        instance: pi,
        algos,
    }
}

/// Run the full sweep (work-stolen across the shared pool, one grid item
/// per configuration).
pub fn run_lineup(seed: u64) -> Lineup {
    let configs = pool::run_indexed(PaperConfig::ALL.len(), |i| {
        run_config(PaperConfig::ALL[i], seed)
    });
    Lineup { configs }
}

/// Geometric-mean-free average of a per-config metric for one algorithm.
pub fn mean_over_configs(lineup: &Lineup, algo: &str, metric: impl Fn(&AlgoResult) -> f64) -> f64 {
    let vals: Vec<f64> = lineup
        .configs
        .iter()
        .map(|c| metric(c.algo(algo)))
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_config_lineup_shapes() {
        let cr = run_config(PaperConfig::C7, 0);
        assert_eq!(cr.algos.len(), 4);
        // Core paper claims on this configuration:
        let global = cr.algo("Global");
        let sss = cr.algo("SSS");
        assert!(sss.report.max_apl <= global.report.max_apl + 1e-9);
        assert!(sss.report.dev_apl < global.report.dev_apl);
        assert!(sss.report.g_apl <= global.report.g_apl * 1.06);
    }
}
