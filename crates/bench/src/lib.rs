//! Experiment harness for the IPDPS'14 OBM reproduction: regenerates every
//! table and figure of the paper's evaluation (run
//! `cargo run --release -p obm-bench --bin experiments -- all`) and hosts
//! the criterion benchmarks.

pub mod experiments;
pub mod harness;
pub mod lineup;
pub mod pool;
pub mod sim_bridge;
pub mod table;
