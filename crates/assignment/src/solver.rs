//! Shortest-augmenting-path Hungarian solver with dual potentials.
//!
//! Classic `O(rows² · cols)` formulation (Jonker–Volgenant / e-maxx): rows
//! are inserted one at a time; for each row a Dijkstra-like search over
//! reduced costs finds the shortest augmenting path, and the dual potentials
//! `u` (rows) / `v` (columns) are updated to keep all reduced costs
//! non-negative. Exact for `f64` inputs up to floating-point accumulation.

use crate::matrix::CostMatrix;

/// An optimal assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// `row_to_col[r]` is the column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// Total cost of the assignment (sum of selected entries).
    pub cost: f64,
}

/// Solve the minimum-cost assignment problem for `costs`.
pub(crate) fn solve(costs: &CostMatrix) -> Solution {
    let n = costs.rows();
    let m = costs.cols();
    debug_assert!(n <= m);
    for r in 0..n {
        for c in 0..m {
            assert!(costs.get(r, c).is_finite(), "non-finite cost at ({r}, {c})");
        }
    }

    // 1-based arrays with a dummy 0 column/row, as in the classic
    // presentation. p[j] = row matched to column j (0 = free).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            let row = costs.row(i0 - 1);
            for j in 1..=m {
                if !used[j] {
                    let cur = row[j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            debug_assert!(delta.is_finite(), "augmenting path search stuck");
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(row_to_col.iter().all(|&c| c != usize::MAX));
    let cost = row_to_col
        .iter()
        .enumerate()
        .map(|(r, &c)| costs.get(r, c))
        .sum();
    Solution { row_to_col, cost }
}
