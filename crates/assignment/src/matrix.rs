//! Dense row-major cost matrix.

use crate::solver::{solve, Solution};

/// A dense `rows × cols` matrix of `f64` assignment costs.
///
/// Row `r` is a "worker" (thread), column `c` a "job" (tile); `get(r, c)`
/// is the cost of assigning `r` to `c`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// A matrix of zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero or `rows > cols` (the solver
    /// assigns every row, so it needs at least as many columns).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert!(
            rows <= cols,
            "need rows <= cols ({rows} > {cols}); transpose the problem"
        );
        CostMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics on ragged input, empty input, or `rows > cols`.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].as_ref().len();
        let mut m = CostMatrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(row.len(), cols, "ragged row {r}");
            m.data[r * cols..(r + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Build by evaluating `f(row, col)` at every entry — the natural way
    /// to produce the paper's Eq. (13) cost matrix
    /// `cost_jk = c_j · TC(k) + m_j · TM(k)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = CostMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows (workers).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (jobs).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics out of range (debug and release: slice indexing).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Solve the minimum-cost assignment for this matrix.
    ///
    /// # Panics
    /// Panics if any entry is non-finite.
    pub fn solve(&self) -> Solution {
        solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_matches_manual() {
        let m = CostMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn more_rows_than_cols_panics() {
        let _ = CostMatrix::zeros(3, 2);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }
}
