//! Linear assignment problem (LAP) solver.
//!
//! Implements the `O(n³)` Hungarian method in the shortest-augmenting-path
//! formulation with dual potentials (Jonker–Volgenant style) over dense
//! `f64` cost matrices. This is the subroutine the paper's Algorithm 1
//! ("Hungarian-based SAM solution") relies on: the single-application
//! mapping problem is an instance of LAP because each thread's latency
//! contribution depends only on its own tile (Section IV.A).
//!
//! Rectangular matrices with `rows ≤ cols` are supported (every row is
//! assigned to a distinct column; extra columns stay free), which is what
//! mapping `N_a` threads onto a candidate set of `≥ N_a` tiles needs.
//!
//! ```
//! use assignment::CostMatrix;
//! let costs = CostMatrix::from_rows(&[
//!     vec![4.0, 1.0, 3.0],
//!     vec![2.0, 0.0, 5.0],
//!     vec![3.0, 2.0, 2.0],
//! ]);
//! let sol = costs.solve();
//! assert_eq!(sol.row_to_col, vec![1, 0, 2]); // total cost 1 + 2 + 2
//! assert!((sol.cost - 5.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod matrix;
mod solver;

pub use matrix::CostMatrix;
pub use solver::Solution;

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force minimum over all permutations (rows ≤ 8).
    pub(crate) fn brute_force(costs: &CostMatrix) -> f64 {
        fn recurse(costs: &CostMatrix, row: usize, used: &mut [bool], acc: f64, best: &mut f64) {
            if row == costs.rows() {
                if acc < *best {
                    *best = acc;
                }
                return;
            }
            for col in 0..costs.cols() {
                if !used[col] {
                    used[col] = true;
                    recurse(costs, row + 1, used, acc + costs.get(row, col), best);
                    used[col] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        let mut used = vec![false; costs.cols()];
        recurse(costs, 0, &mut used, 0.0, &mut best);
        best
    }

    #[test]
    fn doc_example() {
        let costs = CostMatrix::from_rows(&[
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ]);
        let sol = costs.solve();
        assert_eq!(sol.row_to_col, vec![1, 0, 2]);
        assert!((sol.cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_zeros() {
        let n = 6;
        let mut m = CostMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                m.set(
                    r,
                    c,
                    if r == c {
                        0.0
                    } else {
                        10.0 + (r * n + c) as f64
                    },
                );
            }
        }
        let sol = m.solve();
        assert_eq!(sol.row_to_col, (0..n).collect::<Vec<_>>());
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        let instances = [
            vec![
                vec![7.0, 5.0, 11.0],
                vec![5.0, 4.0, 1.0],
                vec![9.0, 3.0, 2.0],
            ],
            vec![
                vec![1.0, 2.0, 3.0, 4.0],
                vec![2.0, 4.0, 6.0, 8.0],
                vec![3.0, 6.0, 9.0, 12.0],
                vec![4.0, 8.0, 12.0, 16.0],
            ],
            // negatives allowed
            vec![
                vec![-1.0, -2.0, 0.5],
                vec![3.0, -4.5, 2.0],
                vec![0.0, 0.0, -0.25],
            ],
        ];
        for rows in &instances {
            let m = CostMatrix::from_rows(rows);
            let sol = m.solve();
            let bf = brute_force(&m);
            assert!((sol.cost - bf).abs() < 1e-9, "{} != {}", sol.cost, bf);
        }
    }

    #[test]
    fn random_instances_match_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for trial in 0..200 {
            let n = rng.gen_range(1..=7);
            let mcols = n + rng.gen_range(0..=2);
            let mut m = CostMatrix::zeros(n, mcols);
            for r in 0..n {
                for c in 0..mcols {
                    m.set(r, c, rng.gen_range(-50.0..50.0));
                }
            }
            let sol = m.solve();
            let bf = brute_force(&m);
            assert!(
                (sol.cost - bf).abs() < 1e-7,
                "trial {trial}: {} != {}",
                sol.cost,
                bf
            );
            // assignment must be a valid partial permutation
            let mut seen = vec![false; mcols];
            for &c in &sol.row_to_col {
                assert!(!seen[c]);
                seen[c] = true;
            }
            // reported cost must equal the cost of the returned assignment
            let recomputed: f64 = sol
                .row_to_col
                .iter()
                .enumerate()
                .map(|(r, &c)| m.get(r, c))
                .sum();
            assert!((sol.cost - recomputed).abs() < 1e-7);
        }
    }

    #[test]
    fn one_by_one() {
        let m = CostMatrix::from_rows(&[vec![3.5]]);
        let sol = m.solve();
        assert_eq!(sol.row_to_col, vec![0]);
        assert!((sol.cost - 3.5).abs() < 1e-12);
    }

    #[test]
    fn rectangular_picks_cheap_columns() {
        // 2 rows, 4 cols; the cheap columns are 3 and 1.
        let m = CostMatrix::from_rows(&[vec![9.0, 2.0, 9.0, 1.0], vec![9.0, 1.0, 9.0, 2.0]]);
        let sol = m.solve();
        assert!((sol.cost - 2.0).abs() < 1e-9);
        let mut cols = sol.row_to_col.clone();
        cols.sort_unstable();
        assert_eq!(cols, vec![1, 3]);
    }

    #[test]
    fn ties_still_valid() {
        let m = CostMatrix::zeros(5, 5);
        let sol = m.solve();
        assert_eq!(sol.cost, 0.0);
        let mut cols = sol.row_to_col.clone();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn large_instance_runs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let n = 256;
        let mut m = CostMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, rng.gen_range(0.0..1000.0));
            }
        }
        let sol = m.solve();
        assert!(sol.cost.is_finite());
        assert_eq!(sol.row_to_col.len(), n);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The solver's optimum is never worse than any fixed permutation.
        #[test]
        fn never_worse_than_fixed_permutations(
            vals in proptest::collection::vec(-100.0f64..100.0, 36),
        ) {
            let n = 6;
            let mut m = CostMatrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, vals[r * n + c]);
                }
            }
            let sol = m.solve();
            let ident: f64 = (0..n).map(|i| m.get(i, i)).sum();
            let rev: f64 = (0..n).map(|i| m.get(i, n - 1 - i)).sum();
            prop_assert!(sol.cost <= ident + 1e-9);
            prop_assert!(sol.cost <= rev + 1e-9);
        }

        /// Exact optimality vs brute force for tiny matrices.
        #[test]
        fn optimal_vs_brute_force(
            vals in proptest::collection::vec(-10.0f64..10.0, 25),
        ) {
            let n = 5;
            let mut m = CostMatrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, vals[r * n + c]);
                }
            }
            let sol = m.solve();
            let bf = super::tests::brute_force(&m);
            prop_assert!((sol.cost - bf).abs() < 1e-7);
        }

        /// Adding a constant to every entry of a row shifts the optimum by
        /// exactly that constant.
        #[test]
        fn row_shift_invariance(
            vals in proptest::collection::vec(0.0f64..10.0, 16),
            shift in -5.0f64..5.0,
        ) {
            let n = 4;
            let mut m = CostMatrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, vals[r * n + c]);
                }
            }
            let base = m.solve().cost;
            for c in 0..n {
                let v = m.get(0, c);
                m.set(0, c, v + shift);
            }
            let shifted = m.solve().cost;
            prop_assert!((shifted - (base + shift)).abs() < 1e-7);
        }
    }
}
