//! NoC power model — the workspace's substitute for DSENT (DESIGN.md §4.3).
//!
//! The paper evaluates mapping algorithms' power impact with DSENT at a
//! 45 nm / 1 V technology point and notes that, for a fixed router design,
//! *static power is the same across mappings* while *dynamic power depends
//! on the number of packets injected per unit time and the average hops per
//! packet*. This crate implements exactly that decomposition:
//!
//! * dynamic energy = flits × (router traversals × `E_router` + link
//!   traversals × `E_link`), where a packet over `H` hops traverses `H+1`
//!   routers and `H` links;
//! * static power = `P_static` per router.
//!
//! The per-flit energy constants are representative 45 nm values for a
//! 128-bit-flit 5-port wormhole router (DSENT-class numbers, documented on
//! [`PowerParams::dsent_45nm`]); since Figure 11 only makes *relative*
//! claims between mapping algorithms, only the router:link energy ratio
//! materially matters.

#![warn(missing_docs)]

use noc_model::{Mesh, TileId, TileLatencies};
use serde::{Deserialize, Serialize};

/// Technology/energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Energy per flit per router traversal, in picojoules.
    pub router_energy_pj: f64,
    /// Energy per flit per link traversal, in picojoules.
    pub link_energy_pj: f64,
    /// Static (leakage + clock) power per router, in milliwatts.
    pub static_power_mw_per_router: f64,
    /// Clock frequency in GHz (Table 2: 2 GHz).
    pub frequency_ghz: f64,
}

impl PowerParams {
    /// Representative 45 nm, 1 V, 2 GHz values for a 128-bit-flit 5-port
    /// 3-stage wormhole router with 6 VCs: ~5.2 pJ/flit through the router
    /// (buffer write/read + crossbar + arbitration), ~2.1 pJ/flit per 1 mm
    /// link, ~9 mW static per router+link group. DSENT-class magnitudes;
    /// the relative comparisons of Figure 11 are insensitive to the
    /// absolute values.
    pub fn dsent_45nm() -> Self {
        PowerParams {
            router_energy_pj: 5.2,
            link_energy_pj: 2.1,
            static_power_mw_per_router: 9.0,
            frequency_ghz: 2.0,
        }
    }

    /// Dynamic energy of one flit travelling `hops` links (and `hops + 1`
    /// routers), in picojoules. A zero-hop "packet" never enters the
    /// network and consumes nothing.
    pub fn flit_energy_pj(&self, hops: f64) -> f64 {
        if hops <= 0.0 {
            0.0
        } else {
            (hops + 1.0) * self.router_energy_pj + hops * self.link_energy_pj
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::dsent_45nm()
    }
}

/// A power estimate for one mapping / simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Dynamic NoC power in milliwatts.
    pub dynamic_mw: f64,
    /// Static NoC power in milliwatts (mapping-independent).
    pub static_mw: f64,
}

impl PowerReport {
    /// Total power.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }
}

/// Dynamic + static power from *measured* simulation output: total
/// flit-hops and total flits over a measurement window of `cycles`.
///
/// Uses the identity `flits·(H+1)·E_r + flits·H·E_l =
/// flit_hops·(E_r + E_l) + flits·E_r` summed over packets.
pub fn power_from_counts(
    params: &PowerParams,
    mesh: &Mesh,
    flit_hops: u64,
    routed_flits: u64,
    cycles: u64,
) -> PowerReport {
    assert!(cycles > 0);
    let energy_pj = flit_hops as f64 * (params.router_energy_pj + params.link_energy_pj)
        + routed_flits as f64 * params.router_energy_pj;
    let seconds = cycles as f64 / (params.frequency_ghz * 1e9);
    PowerReport {
        dynamic_mw: energy_pj * 1e-12 / seconds * 1e3,
        static_mw: params.static_power_mw_per_router * mesh.num_tiles() as f64,
    }
}

/// One placed traffic source for the analytic estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedLoad {
    /// Tile the thread is mapped to.
    pub tile: TileId,
    /// Cache request rate in packets per cycle.
    pub cache_rate: f64,
    /// Memory request rate in packets per cycle.
    pub mem_rate: f64,
}

/// Analytic dynamic power of a mapping: expected flit-hops per cycle from
/// the closed-form hop averages (`H̄C`, `H̄M`) of the latency model, with
/// `flits_per_packet` the mean packet length (3.0 for the paper's even
/// request/reply mix).
///
/// Mirrors what the paper's Figure 11 computes: dynamic power ∝ injection
/// rate × mean hops, so mapping heavy threads to central tiles (low `H̄C`)
/// lowers cache-traffic power while corner placement lowers memory-traffic
/// power.
pub fn analytic_power(
    params: &PowerParams,
    mesh: &Mesh,
    latencies: &TileLatencies,
    loads: &[PlacedLoad],
    flits_per_packet: f64,
) -> PowerReport {
    let mut energy_pj_per_cycle = 0.0;
    let n = mesh.num_tiles() as f64;
    for l in loads {
        let hc = latencies.cache_hops(l.tile);
        // A fraction 1/N of cache packets stay on-tile (0 routers, 0
        // links); the rest traverse hops+1 routers on average. Express the
        // expectation directly: E[routers] = hc + (N-1)/N, E[links] = hc.
        let cache_routers = hc + (n - 1.0) / n;
        energy_pj_per_cycle += l.cache_rate
            * flits_per_packet
            * (cache_routers * params.router_energy_pj + hc * params.link_energy_pj);
        let hm = latencies.mem_hops(l.tile);
        let mem_routers = if hm > 0.0 { hm + 1.0 } else { 0.0 };
        energy_pj_per_cycle += l.mem_rate
            * flits_per_packet
            * (mem_routers * params.router_energy_pj + hm * params.link_energy_pj);
    }
    let cycle_seconds = 1.0 / (params.frequency_ghz * 1e9);
    PowerReport {
        dynamic_mw: energy_pj_per_cycle * 1e-12 / cycle_seconds * 1e3,
        static_mw: params.static_power_mw_per_router * mesh.num_tiles() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers};

    #[test]
    fn flit_energy_scales_with_hops() {
        let p = PowerParams::dsent_45nm();
        assert_eq!(p.flit_energy_pj(0.0), 0.0);
        let e1 = p.flit_energy_pj(1.0);
        let e2 = p.flit_energy_pj(2.0);
        assert!((e1 - (2.0 * 5.2 + 2.1)).abs() < 1e-9);
        assert!((e2 - e1 - (5.2 + 2.1)).abs() < 1e-9);
    }

    #[test]
    fn counts_and_identity_agree() {
        // 10 packets × 5 flits × 3 hops: flit_hops = 150, flits = 50.
        let p = PowerParams::dsent_45nm();
        let mesh = Mesh::square(4);
        let r = power_from_counts(&p, &mesh, 150, 50, 1000);
        let direct_pj = 50.0 * p.flit_energy_pj(3.0);
        let seconds = 1000.0 / 2e9;
        assert!((r.dynamic_mw - direct_pj * 1e-12 / seconds * 1e3).abs() < 1e-9);
        assert!((r.static_mw - 9.0 * 16.0).abs() < 1e-9);
    }

    #[test]
    fn central_placement_cheaper_for_cache_traffic() {
        let mesh = Mesh::square(8);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let p = PowerParams::dsent_45nm();
        let center = PlacedLoad {
            tile: mesh.tile(noc_model::Coord::new(3, 3)),
            cache_rate: 0.01,
            mem_rate: 0.0,
        };
        let corner = PlacedLoad {
            tile: mesh.tile(noc_model::Coord::new(0, 0)),
            cache_rate: 0.01,
            mem_rate: 0.0,
        };
        let pc = analytic_power(&p, &mesh, &tl, &[center], 3.0);
        let pk = analytic_power(&p, &mesh, &tl, &[corner], 3.0);
        assert!(pc.dynamic_mw < pk.dynamic_mw);
        assert_eq!(pc.static_mw, pk.static_mw);
    }

    #[test]
    fn corner_placement_cheaper_for_memory_traffic() {
        let mesh = Mesh::square(8);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let p = PowerParams::dsent_45nm();
        let mk = |row, col| PlacedLoad {
            tile: mesh.tile(noc_model::Coord::new(row, col)),
            cache_rate: 0.0,
            mem_rate: 0.01,
        };
        let pc = analytic_power(&p, &mesh, &tl, &[mk(3, 3)], 3.0);
        let pk = analytic_power(&p, &mesh, &tl, &[mk(0, 0)], 3.0);
        assert!(pk.dynamic_mw < pc.dynamic_mw);
        assert_eq!(pk.dynamic_mw, 0.0, "controller tile pays nothing");
    }

    #[test]
    fn power_is_additive_over_loads() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let p = PowerParams::dsent_45nm();
        let a = PlacedLoad {
            tile: TileId(1),
            cache_rate: 0.004,
            mem_rate: 0.001,
        };
        let b = PlacedLoad {
            tile: TileId(10),
            cache_rate: 0.002,
            mem_rate: 0.0005,
        };
        let ab = analytic_power(&p, &mesh, &tl, &[a, b], 3.0);
        let pa = analytic_power(&p, &mesh, &tl, &[a], 3.0);
        let pb = analytic_power(&p, &mesh, &tl, &[b], 3.0);
        assert!((ab.dynamic_mw - pa.dynamic_mw - pb.dynamic_mw).abs() < 1e-12);
    }
}
