//! Dump every observable field of a seeded `SimReport` for pinned
//! scenarios. Used to capture golden baselines across optimization PRs:
//! run before and after a simulator change and diff the output — any
//! difference means simulated semantics changed.
//!
//! ```text
//! cargo run --release -p noc-sim --example report_dump
//! ```

use noc_model::{MemoryControllers, Mesh, TileId};
use noc_sim::{
    InjectionProcess, LatencyAccum, Network, Schedule, SimConfig, SimReport, SourceSpec,
    TrafficSpec,
};

fn dump_accum(label: &str, a: &LatencyAccum) {
    println!(
        "{label}: packets={} total_latency={:.6} total_hops={} total_flits={} \
         flit_hops={} apl={:.9} td_q={:.9} mean_hops={:.9} p50={} p95={} p99={}",
        a.packets,
        a.total_latency,
        a.total_hops,
        a.total_flits,
        a.flit_hops,
        a.apl(),
        a.mean_td_q(),
        a.mean_hops(),
        a.percentile(0.5),
        a.percentile(0.95),
        a.percentile(0.99),
    );
}

fn dump(name: &str, report: &SimReport) {
    println!("=== {name} ===");
    println!(
        "injected={} delivered={} fully_drained={} measured_cycles={}",
        report.injected, report.delivered, report.fully_drained, report.measured_cycles
    );
    println!(
        "network: link_flit_traversals={} peak_buffered_flits={} cycles_run={} num_links={} util={:.9}",
        report.network.link_flit_traversals,
        report.network.peak_buffered_flits,
        report.network.cycles_run,
        report.network.num_links,
        report.network.mean_link_utilization(),
    );
    println!(
        "front-end: arrival_draws={} skipped_cycles={}",
        report.network.arrival_draws, report.network.skipped_cycles,
    );
    dump_accum("cache", &report.cache);
    dump_accum("memory", &report.memory);
    for (i, g) in report.groups.iter().enumerate() {
        dump_accum(&format!("group[{i}]"), g);
    }
    let live: Vec<usize> = (0..report.per_source.len())
        .filter(|&i| report.per_source[i].packets > 0)
        .collect();
    println!("per_source live tiles: {live:?}");
    for &i in live.iter().take(4) {
        dump_accum(&format!("per_source[{i}]"), &report.per_source[i]);
    }
    println!(
        "g_apl={:.9} max_apl={:.9} mean_td_q={:.9}",
        report.g_apl(),
        report.max_apl(),
        report.mean_td_q()
    );
}

/// Pinned scenario A: 4×4 mesh, single far controller, mixed classes,
/// moderate contention, seed 42.
fn scenario_small() -> SimReport {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 3_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 42;
    let sources: Vec<SourceSpec> = mesh
        .tiles()
        .map(|t| SourceSpec {
            tile: t,
            group: t.index() % 2,
            cache: Schedule::per_kilocycle(20.0),
            mem: Schedule::per_kilocycle(4.0),
        })
        .collect();
    let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
    Network::new(cfg, traffic).expect("valid config").run()
}

/// Pinned scenario B: 8×8 mesh at the paper's C1-scale load, seed 7.
fn scenario_paper() -> SimReport {
    let mesh = Mesh::square(8);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.warmup_cycles = 1_000;
    cfg.measure_cycles = 20_000;
    cfg.max_drain_cycles = 50_000;
    cfg.seed = 7;
    let sources: Vec<SourceSpec> = mesh
        .tiles()
        .map(|t| SourceSpec {
            tile: t,
            group: t.index() % 4,
            cache: Schedule::per_kilocycle(8.0),
            mem: Schedule::per_kilocycle(1.2),
        })
        .collect();
    let traffic = TrafficSpec::new(sources, 4).expect("valid traffic");
    Network::new(cfg, traffic).expect("valid config").run()
}

/// Pinned scenario C: scenario A's mesh and seed under geometric
/// injection at a near-idle load — the event-horizon fast-forward should
/// skip most cycles, and this dump pins that the statistics stay sane.
fn scenario_geometric() -> SimReport {
    let mesh = Mesh::square(4);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 3_000;
    cfg.max_drain_cycles = 20_000;
    cfg.seed = 42;
    cfg.injection = InjectionProcess::Geometric;
    let sources: Vec<SourceSpec> = mesh
        .tiles()
        .map(|t| SourceSpec {
            tile: t,
            group: t.index() % 2,
            cache: Schedule::per_kilocycle(1.0),
            mem: Schedule::per_kilocycle(0.2),
        })
        .collect();
    let traffic = TrafficSpec::new(sources, 2).expect("valid traffic");
    Network::new(cfg, traffic).expect("valid config").run()
}

fn main() {
    dump("small_4x4_seed42", &scenario_small());
    dump("paper_8x8_c1_seed7", &scenario_paper());
    dump("geometric_4x4_seed42_near_idle", &scenario_geometric());
}
