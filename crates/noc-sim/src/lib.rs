//! Cycle-level NoC simulator — the workspace's substitute for Garnet
//! (DESIGN.md §4.2).
//!
//! Simulates the paper's Table 2 network: an `n×n` mesh of canonical
//! 3-stage credit-based wormhole routers with class-partitioned virtual
//! channels (3 per protocol class), 5-flit input buffers, 128-bit links
//! (1- and 5-flit packets), XY routing, and per-tile network interfaces.
//! Traffic is generated per tile from Bernoulli processes or replayed
//! epoch traces ([`Schedule`]), with cache packets hashed uniformly over
//! all tiles and memory packets forwarded to the nearest corner
//! controller — exactly the traffic semantics behind the analytic `TC`/`TM`
//! arrays in `noc-model`.
//!
//! Two things the paper needs from the network are validated here:
//!
//! 1. the uncontended latency equals Eq. (2) cycle-for-cycle (unit tests in
//!    [`network`]);
//! 2. queueing `td_q` stays in the 0–1 cycle band at the evaluated loads,
//!    so the analytic model the mapping algorithms optimize against is
//!    faithful ([`SimReport::mean_td_q`]).
//!
//! ```no_run
//! use noc_model::Mesh;
//! use noc_sim::{Network, Schedule, SimConfig, SourceSpec};
//!
//! let mesh = Mesh::square(8);
//! let cfg = SimConfig::paper_defaults(mesh);
//! let sources: Vec<SourceSpec> = mesh
//!     .tiles()
//!     .map(|t| SourceSpec {
//!         tile: t,
//!         group: 0,
//!         cache: Schedule::per_kilocycle(7.0),
//!         mem: Schedule::per_kilocycle(0.9),
//!     })
//!     .collect();
//! let report = Network::new(cfg, sources, 1).run();
//! println!("{}", report.summary());
//! ```

pub mod config;
pub mod network;
pub mod packet;
pub mod stats;
pub mod traffic;

pub use config::SimConfig;
pub use network::Network;
pub use stats::{LatencyAccum, SimReport};
pub use traffic::{Schedule, SourceSpec};
