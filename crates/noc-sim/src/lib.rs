//! Cycle-level NoC simulator — the workspace's substitute for Garnet
//! (DESIGN.md §4.2).
//!
//! Simulates the paper's Table 2 network: an `n×n` mesh of canonical
//! 3-stage credit-based wormhole routers with class-partitioned virtual
//! channels (3 per protocol class), 5-flit input buffers, 128-bit links
//! (1- and 5-flit packets), XY routing, and per-tile network interfaces.
//! Traffic is generated per tile from Bernoulli processes or replayed
//! epoch traces ([`Schedule`]), with cache packets hashed uniformly over
//! all tiles and memory packets forwarded to the nearest corner
//! controller — exactly the traffic semantics behind the analytic `TC`/`TM`
//! arrays in `noc-model`.
//!
//! Two things the paper needs from the network are validated here:
//!
//! 1. the uncontended latency equals Eq. (2) cycle-for-cycle (unit tests in
//!    [`network`]);
//! 2. queueing `td_q` stays in the 0–1 cycle band at the evaluated loads,
//!    so the analytic model the mapping algorithms optimize against is
//!    faithful ([`SimReport::mean_td_q`]).
//!
//! # Performance model
//!
//! The simulator is the inner loop of every sweep in `obm-bench`, so the
//! hot path is engineered to be allocation-free and activity-proportional
//! in steady state. Cost per simulated cycle is
//! `O(active routers × occupied VC slots + active NIs)`, **not**
//! `O(mesh size × ports × VCs)`:
//!
//! - **Activity worklists.** [`network::Network`] keeps bitsets of routers
//!   with at least one buffered flit and NIs with pending traffic; idle
//!   tiles cost nothing. Invariant: a router's bit is set *iff*
//!   `buffered > 0`, maintained at every flit push/pop (see
//!   `buffer_flit_at` and the pop sites in `step_router`).
//! - **Occupancy masks.** Each router carries a `u64` bitmask with one bit
//!   per `(input port, VC)` arbitration slot, set *iff* that input VC has
//!   a buffered flit. Switch allocation iterates set bits in round-robin
//!   order instead of scanning all `ports × VCs` slots — the single
//!   biggest win (~6× on the paper workload). Requires
//!   `ports × total VCs ≤ 64` (validated by `Network::new`, which
//!   returns [`ConfigError::VcOverflow`] otherwise).
//! - **Zero steady-state allocation.** The per-cycle delivery/credit
//!   staging vectors are scratch buffers owned by the `Network` and reused
//!   every cycle; packet metadata lives in a slab whose slots are recycled
//!   through a free list when the tail flit ejects.
//! - **Incremental telemetry.** `total_buffered` (and its peak) is a
//!   counter maintained at push/pop, replacing a per-cycle `O(routers)`
//!   scan. It is sampled at the same point in the cycle as the old scan,
//!   so `peak_buffered_flits` is unchanged.
//! - **Geometric injection + event-horizon fast-forward** (opt-in via
//!   [`InjectionProcess::Geometric`]). Instead of two Bernoulli trials per
//!   source per cycle, each `(source, class)` pair draws its next arrival
//!   cycle directly from the geometric inter-arrival distribution (one
//!   uniform per packet, exact by memorylessness; piecewise epochs
//!   resample at their boundaries) into a min-heap of pending events.
//!   When the network is fully quiescent the main loop jumps straight to
//!   the next event, clamped at telemetry window boundaries so probed
//!   window spans stay exact. At the paper's low loads this turns the
//!   traffic front-end from O(cycles × sources) into O(packets) and the
//!   idle stretches into heap pops — see `SimReport.network`'s
//!   `arrival_draws` / `skipped_cycles` counters and DESIGN.md §11.
//!
//! None of this changes simulated semantics: routers are still stepped in
//! ascending index order (bitset iteration is ordered, which keeps `f64`
//! latency accumulation bit-exact) and the traffic generator consumes RNG
//! draws in the exact same tile order, so a fixed seed produces
//! bit-identical [`SimReport`]s before and after the optimization
//! (regression-tested in `tests/sim_determinism.rs` at the workspace
//! root). Wall-clock throughput is reported per run via
//! [`stats::NetworkStats::cycles_per_sec`] and
//! [`stats::NetworkStats::flit_hops_per_sec`]; benchmark with
//! `cargo bench -p obm-bench`.
//!
//! # Construction and telemetry
//!
//! Configuration is validated at the boundary: [`SimConfig::builder`]
//! (or a hand-mutated [`SimConfig`]) plus a [`TrafficSpec`] go into
//! [`Network::new`], which returns a typed [`ConfigError`] instead of
//! panicking on bad parameters. [`Network::run_probed`] streams windowed
//! telemetry (`noc-telemetry` [`WindowRecord`]s) to any probe without
//! perturbing the simulation; [`Network::run`] is the telemetry-off path.
//!
//! ```no_run
//! use noc_model::Mesh;
//! use noc_sim::{Network, Schedule, SimConfig, TrafficSpec};
//!
//! let mesh = Mesh::square(8);
//! let cfg = SimConfig::paper_defaults(mesh);
//! let traffic = TrafficSpec::uniform(
//!     &mesh,
//!     Schedule::per_kilocycle(7.0),
//!     Schedule::per_kilocycle(0.9),
//! );
//! let report = Network::new(cfg, traffic).expect("valid scenario").run();
//! println!("{}", report.summary());
//! ```
//!
//! [`WindowRecord`]: noc_telemetry::WindowRecord

pub mod config;
pub mod network;
pub mod packet;
mod shard;
pub mod stats;
pub mod traffic;

/// The telemetry crate, re-exported so simulator users reach probes and
/// sinks without naming a second dependency.
pub use noc_telemetry as telemetry;

pub use config::{
    env_shards, ConfigError, InjectionProcess, RoutingKind, SimConfig, SimConfigBuilder,
};
pub use network::{Network, SourceCounters, SwapController};
pub use stats::{LatencyAccum, SimReport};
pub use traffic::{Schedule, SourceSpec, TrafficSpec};
