//! Simulator configuration (paper Table 2 defaults): the [`SimConfig`]
//! struct, the [`SimConfigBuilder`], and the [`ConfigError`] type every
//! constructor-path validation reports through.
//!
//! Configurations are plain data with public fields (tests and sweeps
//! mutate them freely); validity is checked *at the boundary* — by
//! [`SimConfig::validate`], called from [`SimConfigBuilder::build`] and
//! [`Network::new`](crate::network::Network::new) — and reported as typed
//! [`ConfigError`]s instead of panics, so callers (CLI, sweeps, property
//! tests) can surface bad parameters without crashing.

use noc_model::{ChipLayout, MemoryControllers, Mesh, Topology};
use std::fmt;

/// Maximum arbitration slots (`ports × total VCs`) supported by the
/// router's u64 occupancy bitmask.
pub(crate) const MAX_ARBITRATION_SLOTS: usize = 64;

/// Ports per router (4 mesh neighbours + local).
pub(crate) const NUM_PORTS: usize = 5;

/// Dimension-order routing variant used by the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// X first, then Y (the paper's choice).
    Xy,
    /// Y first, then X (ablation).
    Yx,
}

/// How traffic sources turn their [`Schedule`](crate::traffic::Schedule)
/// rates into packet arrival cycles.
///
/// Both processes produce the same arrival *distribution* — independent
/// per-cycle arrivals with probability `rate_at(cycle)` — but consume the
/// RNG differently, so their streams are not bit-identical (each mode pins
/// its own goldens in `tests/sim_determinism.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectionProcess {
    /// One Bernoulli trial per source, class and cycle. The historical
    /// default; kept so existing seeded runs stay bit-identical.
    #[default]
    BernoulliPerCycle,
    /// Geometric inter-arrival sampling: one uniform draw per *packet*
    /// (inverse CDF of the inter-arrival gap), with a min-heap of pending
    /// arrivals and an event-horizon fast-forward that jumps the main loop
    /// over fully quiescent stretches. Exact for constant-rate epochs by
    /// memorylessness; `Schedule::Piecewise` boundaries resample. Orders of
    /// magnitude faster at the paper's low loads.
    Geometric,
}

impl std::str::FromStr for InjectionProcess {
    type Err = String;

    /// Parse a CLI spelling: `bernoulli` or `geometric`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bernoulli" => Ok(InjectionProcess::BernoulliPerCycle),
            "geometric" => Ok(InjectionProcess::Geometric),
            other => Err(format!(
                "unknown injection process '{other}' (expected bernoulli or geometric)"
            )),
        }
    }
}

/// A rejected simulator configuration or traffic description.
///
/// Returned by [`SimConfig::validate`], [`SimConfigBuilder::build`],
/// [`TrafficSpec::new`](crate::traffic::TrafficSpec::new) and
/// [`Network::new`](crate::network::Network::new); these paths never
/// panic on bad input.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `ports × total VCs` exceeds the 64-slot arbitration bitmask.
    VcOverflow { ports: usize, total_vcs: usize },
    /// `vcs_per_class` is zero (each class needs at least one VC).
    ZeroVcs,
    /// `buffer_depth` is zero (credit-based flow control needs a buffer).
    ZeroBufferDepth,
    /// `long_flits` is zero (a packet has at least a head flit).
    ZeroLongFlits,
    /// `long_fraction` is not a probability in `[0, 1]`.
    BadLongFraction(f64),
    /// `telemetry_window` is zero.
    BadWindow,
    /// `measure_cycles` is zero (nothing would be measured).
    ZeroMeasureCycles,
    /// A traffic source references a tile outside the mesh.
    SourceTileOutOfRange { tile: usize, num_tiles: usize },
    /// Two traffic sources share a tile.
    DuplicateSourceTile(usize),
    /// A traffic source's group id is not below the group count.
    GroupOutOfRange { group: usize, num_groups: usize },
    /// The traffic declares zero groups.
    NoGroups,
    /// A schedule rate is negative or NaN (not a probability density).
    BadRate(f64),
    /// A piecewise schedule with zero-length epochs.
    ZeroEpochCycles,
    /// A piecewise schedule with no epochs at all.
    EmptyTrace,
    /// A mid-run retarget vector whose length does not match the number
    /// of traffic sources (see
    /// [`SwapController`](crate::network::SwapController)).
    RetargetLength {
        /// Tiles in the rejected retarget vector.
        got: usize,
        /// Traffic sources the network actually has.
        expected: usize,
    },
    /// [`SimConfig::for_layout`] was given a [`ChipLayout`] with failed
    /// links. The cycle-level router only implements dimension-order
    /// routing, which cannot detour around a dead link; failed-link
    /// layouts are an analytic-model-only feature.
    FailedLinksUnsupported {
        /// Number of failed links in the rejected layout.
        num_links: usize,
    },
    /// `shards` is zero (the simulator needs at least one shard; the
    /// effective count is clamped to the mesh's row count at run time).
    ZeroShards,
    /// The mesh has more tiles than a flit's 16-bit destination field can
    /// address.
    MeshTooLarge {
        /// Tiles in the rejected mesh.
        num_tiles: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::VcOverflow { ports, total_vcs } => write!(
                f,
                "{ports} ports x {total_vcs} total VCs exceeds the \
                 {MAX_ARBITRATION_SLOTS}-slot arbitration mask \
                 (reduce vcs_per_class)"
            ),
            ConfigError::ZeroVcs => write!(f, "vcs_per_class must be at least 1"),
            ConfigError::ZeroBufferDepth => write!(f, "buffer_depth must be at least 1 flit"),
            ConfigError::ZeroLongFlits => write!(f, "long_flits must be at least 1"),
            ConfigError::BadLongFraction(p) => {
                write!(f, "long_fraction {p} is not a probability in [0, 1]")
            }
            ConfigError::BadWindow => write!(f, "telemetry_window must be at least 1 cycle"),
            ConfigError::ZeroMeasureCycles => write!(f, "measure_cycles must be at least 1"),
            ConfigError::SourceTileOutOfRange { tile, num_tiles } => {
                write!(
                    f,
                    "source tile {tile} out of range (mesh has {num_tiles} tiles)"
                )
            }
            ConfigError::DuplicateSourceTile(tile) => {
                write!(f, "two traffic sources share tile {tile}")
            }
            ConfigError::GroupOutOfRange { group, num_groups } => {
                write!(
                    f,
                    "source group {group} out of range ({num_groups} groups declared)"
                )
            }
            ConfigError::NoGroups => write!(f, "traffic must declare at least one group"),
            ConfigError::BadRate(r) => {
                write!(
                    f,
                    "schedule rate {r} is not a non-negative finite probability"
                )
            }
            ConfigError::ZeroEpochCycles => {
                write!(f, "piecewise schedule epochs must be at least 1 cycle")
            }
            ConfigError::EmptyTrace => {
                write!(f, "piecewise schedule needs at least one epoch rate")
            }
            ConfigError::RetargetLength { got, expected } => {
                write!(
                    f,
                    "retarget vector has {got} tiles but the network has {expected} sources"
                )
            }
            ConfigError::FailedLinksUnsupported { num_links } => {
                write!(
                    f,
                    "layout has {num_links} failed link(s); the cycle-level simulator \
                     only routes on healthy chips (failed links are analytic-only)"
                )
            }
            ConfigError::ZeroShards => write!(f, "shards must be at least 1"),
            ConfigError::MeshTooLarge { num_tiles } => {
                write!(
                    f,
                    "mesh has {num_tiles} tiles, more than the 65536 a flit's \
                     16-bit destination field can address"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the cycle-level simulation.
///
/// Fields are public — sweeps and tests mutate them directly — but the
/// simulator validates on construction
/// ([`Network::new`](crate::network::Network::new)); prefer
/// [`SimConfig::builder`] for the fluent, validate-on-build path.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The mesh to simulate.
    pub mesh: Mesh,
    /// Network topology: plain mesh (paper default) or torus with
    /// wraparound links. Torus runs use the shortest-direction
    /// dimension-order router, which is only deadlock-free at the low
    /// loads used for validation (see `noc_model::routing::route_xy_torus`).
    pub topology: Topology,
    /// Memory-controller placement (Table 2: one per corner).
    pub controllers: MemoryControllers,
    /// Router pipeline depth in cycles (Table 2: 3-stage).
    pub router_stages: u64,
    /// Link traversal latency in cycles (1).
    pub link_cycles: u64,
    /// Virtual channels per traffic class (Table 2: 3 VCs per class).
    pub vcs_per_class: usize,
    /// Input buffer depth per VC in flits (Table 2: 5).
    pub buffer_depth: usize,
    /// Flits in a long (data) packet (Table 2: 5 = head + 64B/128b).
    pub long_flits: u16,
    /// Fraction of generated packets that are long data packets
    /// (request/reply mix; 0.5 by default).
    pub long_fraction: f64,
    /// Warm-up cycles excluded from measurement.
    pub warmup_cycles: u64,
    /// Measured cycles after warm-up.
    pub measure_cycles: u64,
    /// Drain: after measurement, keep simulating (no new injections) until
    /// all measured packets arrive, up to this many extra cycles.
    pub max_drain_cycles: u64,
    /// RNG seed for traffic generation.
    pub seed: u64,
    /// How sources turn schedule rates into arrival cycles (default:
    /// [`InjectionProcess::BernoulliPerCycle`], which preserves the
    /// historical RNG stream bit-for-bit; sweeps use
    /// [`InjectionProcess::Geometric`] for the event-horizon fast path).
    pub injection: InjectionProcess,
    /// Dimension-order routing variant (paper: XY).
    pub routing: RoutingKind,
    /// Enforce the physical crossbar's one-flit-per-input-port limit in
    /// switch allocation (true = canonical router; false models an
    /// idealized input-speedup-∞ switch for ablation).
    pub crossbar_input_limit: bool,
    /// Telemetry window width in cycles (only read when a run is probed;
    /// see `Network::run_probed`).
    pub telemetry_window: u64,
    /// Worker shards the mesh is row-band-partitioned across (default 1 =
    /// single-threaded). Any value produces a bit-identical run — the
    /// sharded engine exchanges boundary flits in a fixed (shard, link)
    /// order at each cycle barrier — so the count is a pure throughput
    /// knob. The effective count is clamped to the mesh's row count (each
    /// shard owns at least one full row); see
    /// [`effective_shards`](Self::effective_shards).
    pub shards: usize,
}

impl SimConfig {
    /// Paper Table 2 defaults on the given mesh.
    pub fn paper_defaults(mesh: Mesh) -> Self {
        let controllers = MemoryControllers::corners(&mesh);
        SimConfig {
            mesh,
            topology: Topology::Mesh,
            controllers,
            router_stages: 3,
            link_cycles: 1,
            vcs_per_class: 3,
            buffer_depth: 5,
            long_flits: 5,
            long_fraction: 0.5,
            warmup_cycles: 10_000,
            measure_cycles: 100_000,
            max_drain_cycles: 50_000,
            seed: 1,
            injection: InjectionProcess::BernoulliPerCycle,
            routing: RoutingKind::Xy,
            crossbar_input_limit: true,
            telemetry_window: 1_000,
            shards: 1,
        }
    }

    /// A builder starting from [`paper_defaults`](Self::paper_defaults).
    pub fn builder(mesh: Mesh) -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::paper_defaults(mesh),
        }
    }

    /// Paper defaults specialized to a [`ChipLayout`]: the layout's mesh,
    /// topology and controller placement become the simulated chip, so a
    /// latency table built with `TileLatencies::for_layout` can be
    /// cross-validated by simulation on the *same* layout.
    ///
    /// Layouts with failed links are rejected
    /// ([`ConfigError::FailedLinksUnsupported`]): the dimension-order
    /// router cannot detour, so rerouted-distance layouts stay an
    /// analytic-model-only feature.
    pub fn for_layout(layout: &ChipLayout) -> Result<Self, ConfigError> {
        if !layout.failed_links().is_empty() {
            return Err(ConfigError::FailedLinksUnsupported {
                num_links: layout.failed_links().len(),
            });
        }
        let mut cfg = SimConfig::paper_defaults(*layout.mesh());
        cfg.topology = layout.topology();
        cfg.controllers = layout.controllers().clone();
        Ok(cfg)
    }

    /// Total VCs per input port (2 traffic classes).
    pub fn total_vcs(&self) -> usize {
        2 * self.vcs_per_class
    }

    /// Uncontended per-hop latency (router pipeline + link).
    pub fn per_hop_cycles(&self) -> u64 {
        self.router_stages + self.link_cycles
    }

    /// Worker shards the run will actually use: `shards` clamped to the
    /// mesh's row count (row-band partitioning needs at least one row per
    /// shard). A zero-stage router pipeline also forces one shard — the
    /// sharded engine's barrier placement relies on freshly injected flits
    /// not being switch-ready in the same cycle, which holds whenever
    /// `router_stages ≥ 1`.
    pub fn effective_shards(&self) -> usize {
        if self.router_stages == 0 {
            return 1;
        }
        self.shards.clamp(1, self.mesh.rows())
    }

    /// Check every structural invariant the simulator relies on.
    ///
    /// Called by [`SimConfigBuilder::build`] and
    /// [`Network::new`](crate::network::Network::new); the error names the
    /// first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vcs_per_class == 0 {
            return Err(ConfigError::ZeroVcs);
        }
        if NUM_PORTS * self.total_vcs() > MAX_ARBITRATION_SLOTS {
            return Err(ConfigError::VcOverflow {
                ports: NUM_PORTS,
                total_vcs: self.total_vcs(),
            });
        }
        if self.buffer_depth == 0 {
            return Err(ConfigError::ZeroBufferDepth);
        }
        if self.long_flits == 0 {
            return Err(ConfigError::ZeroLongFlits);
        }
        if !(0.0..=1.0).contains(&self.long_fraction) || self.long_fraction.is_nan() {
            return Err(ConfigError::BadLongFraction(self.long_fraction));
        }
        if self.measure_cycles == 0 {
            return Err(ConfigError::ZeroMeasureCycles);
        }
        if self.telemetry_window == 0 {
            return Err(ConfigError::BadWindow);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.mesh.num_tiles() > u16::MAX as usize + 1 {
            return Err(ConfigError::MeshTooLarge {
                num_tiles: self.mesh.num_tiles(),
            });
        }
        Ok(())
    }
}

/// Shard count requested through the `OBM_SIM_SHARDS` environment
/// variable, if set to a positive integer. The CLI and experiment
/// surfaces consult this as their default so sweeps can be sharded
/// without threading a flag through every entry point; an explicit
/// `--shards` flag wins over the environment.
pub fn env_shards() -> Option<usize> {
    std::env::var("OBM_SIM_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Fluent construction of a [`SimConfig`], validated at
/// [`build`](SimConfigBuilder::build).
///
/// ```
/// use noc_model::Mesh;
/// use noc_sim::SimConfig;
///
/// let cfg = SimConfig::builder(Mesh::square(8))
///     .warmup_cycles(1_000)
///     .measure_cycles(10_000)
///     .seed(7)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.cfg.$name = $name;
            self
        }
    };
}

impl SimConfigBuilder {
    setter!(
        /// Network topology (default: mesh).
        topology: Topology
    );
    setter!(
        /// Memory-controller placement (default: one per corner).
        controllers: MemoryControllers
    );
    setter!(
        /// Router pipeline depth in cycles.
        router_stages: u64
    );
    setter!(
        /// Link traversal latency in cycles.
        link_cycles: u64
    );
    setter!(
        /// Virtual channels per traffic class.
        vcs_per_class: usize
    );
    setter!(
        /// Input buffer depth per VC in flits.
        buffer_depth: usize
    );
    setter!(
        /// Flits in a long (data) packet.
        long_flits: u16
    );
    setter!(
        /// Fraction of generated packets that are long.
        long_fraction: f64
    );
    setter!(
        /// Warm-up cycles excluded from measurement.
        warmup_cycles: u64
    );
    setter!(
        /// Measured cycles after warm-up.
        measure_cycles: u64
    );
    setter!(
        /// Maximum extra drain cycles after measurement.
        max_drain_cycles: u64
    );
    setter!(
        /// RNG seed for traffic generation.
        seed: u64
    );
    setter!(
        /// Injection process (Bernoulli per cycle vs geometric sampling).
        injection: InjectionProcess
    );
    setter!(
        /// Dimension-order routing variant.
        routing: RoutingKind
    );
    setter!(
        /// Enforce the crossbar's one-flit-per-input-port limit.
        crossbar_input_limit: bool
    );
    setter!(
        /// Telemetry window width in cycles.
        telemetry_window: u64
    );
    setter!(
        /// Worker shards for the row-band-partitioned engine (bit-identical
        /// for any count; clamped to the mesh's row count at run time).
        shards: usize
    );

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let cfg = SimConfig::paper_defaults(Mesh::square(8));
        assert_eq!(cfg.topology, Topology::Mesh);
        assert_eq!(cfg.router_stages, 3);
        assert_eq!(cfg.link_cycles, 1);
        assert_eq!(cfg.vcs_per_class, 3);
        assert_eq!(cfg.buffer_depth, 5);
        assert_eq!(cfg.long_flits, 5);
        assert_eq!(cfg.total_vcs(), 6);
        assert_eq!(cfg.per_hop_cycles(), 4);
        assert_eq!(cfg.controllers.tiles().len(), 4);
        assert_eq!(cfg.routing, RoutingKind::Xy);
        assert_eq!(cfg.injection, InjectionProcess::BernoulliPerCycle);
        assert_eq!(cfg.injection, InjectionProcess::default());
        assert!(cfg.crossbar_input_limit);
        assert_eq!(cfg.telemetry_window, 1_000);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn builder_round_trips_every_field() {
        let mesh = Mesh::square(4);
        let cfg = SimConfig::builder(mesh)
            .controllers(MemoryControllers::corners(&mesh))
            .router_stages(2)
            .link_cycles(2)
            .vcs_per_class(2)
            .buffer_depth(3)
            .long_flits(4)
            .long_fraction(0.25)
            .warmup_cycles(100)
            .measure_cycles(1_000)
            .max_drain_cycles(10_000)
            .seed(99)
            .injection(InjectionProcess::Geometric)
            .routing(RoutingKind::Yx)
            .crossbar_input_limit(false)
            .telemetry_window(250)
            .build()
            .expect("valid");
        assert_eq!(cfg.router_stages, 2);
        assert_eq!(cfg.link_cycles, 2);
        assert_eq!(cfg.vcs_per_class, 2);
        assert_eq!(cfg.buffer_depth, 3);
        assert_eq!(cfg.long_flits, 4);
        assert!((cfg.long_fraction - 0.25).abs() < 1e-12);
        assert_eq!(cfg.warmup_cycles, 100);
        assert_eq!(cfg.measure_cycles, 1_000);
        assert_eq!(cfg.max_drain_cycles, 10_000);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.injection, InjectionProcess::Geometric);
        assert_eq!(cfg.routing, RoutingKind::Yx);
        assert!(!cfg.crossbar_input_limit);
        assert_eq!(cfg.telemetry_window, 250);
    }

    #[test]
    fn for_layout_adopts_topology_and_controllers() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::try_custom(&mesh, vec![noc_model::TileId(5)]).expect("valid");
        let layout = ChipLayout::try_new(mesh, Topology::Torus, mcs.clone(), Vec::new())
            .expect("valid layout");
        let cfg = SimConfig::for_layout(&layout).expect("healthy layout");
        assert_eq!(cfg.topology, Topology::Torus);
        assert_eq!(cfg.controllers, mcs);
        // Everything else stays at paper defaults.
        assert_eq!(cfg.router_stages, 3);
        assert_eq!(cfg.seed, 1);
    }

    #[test]
    fn for_layout_rejects_failed_links() {
        let mesh = Mesh::square(4);
        let layout = ChipLayout::try_new(
            mesh,
            Topology::Mesh,
            MemoryControllers::corners(&mesh),
            vec![(noc_model::TileId(0), noc_model::TileId(1))],
        )
        .expect("valid layout");
        let err = SimConfig::for_layout(&layout).unwrap_err();
        assert_eq!(err, ConfigError::FailedLinksUnsupported { num_links: 1 });
        assert!(err.to_string().contains("analytic-only"));
    }

    #[test]
    fn injection_process_parses_cli_spellings() {
        assert_eq!(
            "bernoulli".parse::<InjectionProcess>(),
            Ok(InjectionProcess::BernoulliPerCycle)
        );
        assert_eq!(
            "geometric".parse::<InjectionProcess>(),
            Ok(InjectionProcess::Geometric)
        );
        assert!("poisson".parse::<InjectionProcess>().is_err());
    }

    #[test]
    fn vc_overflow_is_a_typed_error() {
        // 5 ports × 2·7 VCs = 70 slots > 64.
        let err = SimConfig::builder(Mesh::square(4))
            .vcs_per_class(7)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::VcOverflow {
                ports: 5,
                total_vcs: 14
            }
        );
        assert!(err.to_string().contains("arbitration mask"));
    }

    #[test]
    fn zero_parameters_are_rejected() {
        let mesh = Mesh::square(4);
        let b = || SimConfig::builder(mesh);
        assert_eq!(
            b().vcs_per_class(0).build().unwrap_err(),
            ConfigError::ZeroVcs
        );
        assert_eq!(
            b().buffer_depth(0).build().unwrap_err(),
            ConfigError::ZeroBufferDepth
        );
        assert_eq!(
            b().long_flits(0).build().unwrap_err(),
            ConfigError::ZeroLongFlits
        );
        assert_eq!(
            b().measure_cycles(0).build().unwrap_err(),
            ConfigError::ZeroMeasureCycles
        );
        assert_eq!(
            b().telemetry_window(0).build().unwrap_err(),
            ConfigError::BadWindow
        );
        assert_eq!(b().shards(0).build().unwrap_err(), ConfigError::ZeroShards);
    }

    #[test]
    fn shards_default_and_clamp() {
        let cfg = SimConfig::paper_defaults(Mesh::square(8));
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.effective_shards(), 1);
        let cfg = SimConfig::builder(Mesh::square(4))
            .shards(16)
            .build()
            .expect("valid");
        // Row-band partitioning: at most one shard per row.
        assert_eq!(cfg.effective_shards(), 4);
        // A zero-stage pipeline forces the serial engine.
        let mut cfg = SimConfig::paper_defaults(Mesh::square(4));
        cfg.shards = 4;
        cfg.router_stages = 0;
        assert_eq!(cfg.effective_shards(), 1);
    }

    #[test]
    fn bad_long_fraction_is_rejected() {
        let mesh = Mesh::square(4);
        assert_eq!(
            SimConfig::builder(mesh)
                .long_fraction(1.5)
                .build()
                .unwrap_err(),
            ConfigError::BadLongFraction(1.5)
        );
        assert!(SimConfig::builder(mesh)
            .long_fraction(f64::NAN)
            .build()
            .is_err());
    }
}
