//! Simulator configuration (paper Table 2 defaults).

use noc_model::{MemoryControllers, Mesh};

/// Dimension-order routing variant used by the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// X first, then Y (the paper's choice).
    Xy,
    /// Y first, then X (ablation).
    Yx,
}

/// Configuration of the cycle-level simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The mesh to simulate.
    pub mesh: Mesh,
    /// Memory-controller placement (Table 2: one per corner).
    pub controllers: MemoryControllers,
    /// Router pipeline depth in cycles (Table 2: 3-stage).
    pub router_stages: u64,
    /// Link traversal latency in cycles (1).
    pub link_cycles: u64,
    /// Virtual channels per traffic class (Table 2: 3 VCs per class).
    pub vcs_per_class: usize,
    /// Input buffer depth per VC in flits (Table 2: 5).
    pub buffer_depth: usize,
    /// Flits in a long (data) packet (Table 2: 5 = head + 64B/128b).
    pub long_flits: u16,
    /// Fraction of generated packets that are long data packets
    /// (request/reply mix; 0.5 by default).
    pub long_fraction: f64,
    /// Warm-up cycles excluded from measurement.
    pub warmup_cycles: u64,
    /// Measured cycles after warm-up.
    pub measure_cycles: u64,
    /// Drain: after measurement, keep simulating (no new injections) until
    /// all measured packets arrive, up to this many extra cycles.
    pub max_drain_cycles: u64,
    /// RNG seed for traffic generation.
    pub seed: u64,
    /// Dimension-order routing variant (paper: XY).
    pub routing: RoutingKind,
    /// Enforce the physical crossbar's one-flit-per-input-port limit in
    /// switch allocation (true = canonical router; false models an
    /// idealized input-speedup-∞ switch for ablation).
    pub crossbar_input_limit: bool,
}

impl SimConfig {
    /// Paper Table 2 defaults on the given mesh.
    pub fn paper_defaults(mesh: Mesh) -> Self {
        let controllers = MemoryControllers::corners(&mesh);
        SimConfig {
            mesh,
            controllers,
            router_stages: 3,
            link_cycles: 1,
            vcs_per_class: 3,
            buffer_depth: 5,
            long_flits: 5,
            long_fraction: 0.5,
            warmup_cycles: 10_000,
            measure_cycles: 100_000,
            max_drain_cycles: 50_000,
            seed: 1,
            routing: RoutingKind::Xy,
            crossbar_input_limit: true,
        }
    }

    /// Total VCs per input port (2 traffic classes).
    pub fn total_vcs(&self) -> usize {
        2 * self.vcs_per_class
    }

    /// Uncontended per-hop latency (router pipeline + link).
    pub fn per_hop_cycles(&self) -> u64 {
        self.router_stages + self.link_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let cfg = SimConfig::paper_defaults(Mesh::square(8));
        assert_eq!(cfg.router_stages, 3);
        assert_eq!(cfg.link_cycles, 1);
        assert_eq!(cfg.vcs_per_class, 3);
        assert_eq!(cfg.buffer_depth, 5);
        assert_eq!(cfg.long_flits, 5);
        assert_eq!(cfg.total_vcs(), 6);
        assert_eq!(cfg.per_hop_cycles(), 4);
        assert_eq!(cfg.controllers.tiles().len(), 4);
        assert_eq!(cfg.routing, RoutingKind::Xy);
        assert!(cfg.crossbar_input_limit);
    }
}
