//! The cycle-level network: 3-stage credit-based wormhole routers with
//! virtual channels on a 2-D mesh, XY routing, and per-tile network
//! interfaces (NIs).
//!
//! Timing model (matching the paper's Eq. (2) in the uncontended case):
//! every flit is charged `router_stages` cycles of pipeline delay at each
//! router that *forwards* it and `link_cycles` per link; ejection at the
//! destination is free. An uncontended packet of `L` flits over `H` hops
//! therefore takes exactly `H·(router_stages + link_cycles) + L` cycles —
//! the analytic model with `td_q = 0`. Any additional cycles observed in
//! simulation are queueing (`td_q`), which the paper reports as 0–1 cycles
//! at the evaluated loads.
//!
//! Flow control: credit-based wormhole with class-partitioned virtual
//! channels and non-atomic VC reuse (a VC FIFO may hold flits of
//! consecutive packets; per-packet routing state applies to the packet at
//! the front, which preserves wormhole contiguity because upstream senders
//! never interleave flits of different packets on one VC).

use crate::config::{ConfigError, InjectionProcess, RoutingKind, SimConfig, NUM_PORTS};
use crate::packet::{Flit, PacketId, PacketInfo, PacketStamps};
use crate::stats::SimReport;
use crate::traffic::{SourceSpec, TrafficSpec};
use noc_model::{
    route_xy, route_xy_torus, route_yx, route_yx_torus, Mesh, PacketClass, RouteDir, TileId,
    Topology,
};
use noc_telemetry::{
    FlowSummary, HeatmapRecord, LatencyAccum, NoopSink, PacketRecord, Probe, ProfileRecord,
    WindowRecord, Windower,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

const P_NORTH: usize = 0;
const P_SOUTH: usize = 1;
const P_WEST: usize = 2;
const P_EAST: usize = 3;
const P_LOCAL: usize = 4;

fn port_of(dir: RouteDir) -> usize {
    match dir {
        RouteDir::North => P_NORTH,
        RouteDir::South => P_SOUTH,
        RouteDir::West => P_WEST,
        RouteDir::East => P_EAST,
        RouteDir::Local => P_LOCAL,
    }
}

/// Input port at the neighbour that an output port feeds into.
fn opposite(port: usize) -> usize {
    match port {
        P_NORTH => P_SOUTH,
        P_SOUTH => P_NORTH,
        P_WEST => P_EAST,
        P_EAST => P_WEST,
        _ => unreachable!("local port has no opposite"),
    }
}

/// Neighbour tile in the direction of `port`, if it exists. On a torus
/// every direction exists — off-edge moves wrap around.
fn neighbor(mesh: &Mesh, topology: Topology, tile: TileId, port: usize) -> Option<TileId> {
    let c = mesh.coord(tile);
    let (dr, dc): (isize, isize) = match port {
        P_NORTH => (-1, 0),
        P_SOUTH => (1, 0),
        P_WEST => (0, -1),
        P_EAST => (0, 1),
        _ => return None,
    };
    let nr = c.row as isize + dr;
    let nc = c.col as isize + dc;
    if nr < 0 || nc < 0 || nr as usize >= mesh.rows() || nc as usize >= mesh.cols() {
        match topology {
            Topology::Mesh => None,
            Topology::Torus => {
                let wr = (nr + mesh.rows() as isize) as usize % mesh.rows();
                let wc = (nc + mesh.cols() as isize) as usize % mesh.cols();
                Some(mesh.tile(noc_model::Coord::new(wr, wc)))
            }
        }
    } else {
        Some(mesh.tile(noc_model::Coord::new(nr as usize, nc as usize)))
    }
}

#[derive(Debug, Clone)]
struct TimedFlit {
    flit: Flit,
    /// Earliest cycle this flit may leave the buffer (router pipeline
    /// charge is folded into this timestamp).
    ready: u64,
}

#[derive(Debug, Clone, Default)]
struct InputVc {
    buf: VecDeque<TimedFlit>,
    /// Output port of the packet currently at the front.
    route: Option<usize>,
    /// Downstream VC allocated to the front packet.
    out_vc: Option<usize>,
}

#[derive(Debug, Clone)]
struct OutVc {
    /// Allocated to a packet currently streaming through.
    busy: bool,
    /// Free slots in the downstream input VC buffer.
    credits: usize,
}

#[derive(Debug)]
struct Router {
    inputs: Vec<Vec<InputVc>>,
    outputs: Vec<Vec<OutVc>>,
    /// Round-robin arbitration pointer per output port.
    rr: [usize; NUM_PORTS],
    /// Total buffered flits (fast-path skip for idle routers).
    buffered: usize,
    /// Occupancy bitmask over arbitration slots (`in_port * total_vcs +
    /// vc`): bit set iff that input VC has a buffered flit. Lets switch
    /// allocation iterate only occupied slots instead of scanning all
    /// `NUM_PORTS × total_vcs` of them; requires that product ≤ 64
    /// (validated in `Network::new` as `ConfigError::VcOverflow`).
    occ: u64,
}

impl Router {
    fn new(vcs: usize, depth: usize) -> Self {
        Router {
            inputs: (0..NUM_PORTS)
                .map(|_| (0..vcs).map(|_| InputVc::default()).collect())
                .collect(),
            outputs: (0..NUM_PORTS)
                .map(|_| {
                    (0..vcs)
                        .map(|_| OutVc {
                            busy: false,
                            credits: depth,
                        })
                        .collect()
                })
                .collect(),
            rr: [0; NUM_PORTS],
            buffered: 0,
            occ: 0,
        }
    }
}

/// Per-tile network interface: source queues feeding the router's local
/// input port, one flit per cycle.
#[derive(Debug)]
struct Ni {
    /// Per-class queues of waiting packets.
    queues: [VecDeque<PacketId>; 2],
    /// Packet currently being injected: (id, next flit index, vc).
    current: Option<(PacketId, u16, usize)>,
    /// Credits for the router's local input VCs.
    credits: Vec<usize>,
    /// Class round-robin pointer.
    rr_class: usize,
}

impl Ni {
    fn new(vcs: usize, depth: usize) -> Self {
        Ni {
            queues: [VecDeque::new(), VecDeque::new()],
            current: None,
            credits: vec![depth; vcs],
            rr_class: 0,
        }
    }

    fn pending(&self) -> bool {
        self.current.is_some() || !self.queues[0].is_empty() || !self.queues[1].is_empty()
    }
}

fn class_index(class: PacketClass) -> usize {
    match class {
        PacketClass::Cache => 0,
        PacketClass::Memory => 1,
    }
}

/// Dense index set over tiles, iterated in ascending order.
///
/// Activity-tracking invariant: a router's bit is set iff `buffered > 0`
/// (an NI's bit iff `pending()`), so the per-cycle loops visit only tiles
/// with work. Ascending iteration order is load-bearing: the report's f64
/// accumulators are summed in delivery order, so visiting routers in any
/// other order would change low bits of the totals and break bit-exact
/// reproducibility against the pre-optimization simulator.
#[derive(Debug, Clone)]
struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    fn new(n: usize) -> Self {
        ActiveSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }
}

/// A flit crossing a link this cycle, to be buffered at the downstream
/// router once the per-router pass completes.
struct Delivery {
    router: usize,
    port: usize,
    vc: usize,
    flit: Flit,
    ready: u64,
}

/// Flow-level spatial observability state, allocated only when a probe is
/// attached (the `Option<Windower>` pattern): packet lifecycle stamps,
/// the per-class/per-group latency decomposition, and the spatial
/// heatmap. Pure observer — nothing in here is ever read back by the
/// simulation, so the probed run stays bit-identical to the plain one.
struct FlowState {
    /// Lifecycle stamps parallel to the packet slab (slots recycled the
    /// same way).
    stamps: Vec<PacketStamps>,
    /// Measured-packet latency decomposition, delivered as the end-of-run
    /// flow summary.
    summary: FlowSummary,
    /// Per-link / per-VC / per-router spatial counters (all phases).
    heatmap: HeatmapRecord,
    /// Whether the probe asked for per-packet records.
    wants_packets: bool,
    /// Packets delivered this cycle, flushed to `Probe::on_packet` after
    /// the router pass (only filled when `wants_packets`).
    pending: Vec<PacketRecord>,
}

/// Wall-clock lap helper for the self-profiling hook: nanoseconds since
/// `mark`, resetting the mark.
fn lap(mark: &mut Instant) -> u64 {
    let now = Instant::now();
    let nanos = now.duration_since(*mark).as_nanos() as u64;
    *mark = now;
    nanos
}

/// A credit returned upstream once the per-router pass completes.
enum Credit {
    Router {
        router: usize,
        port: usize,
        vc: usize,
    },
    Ni {
        tile: usize,
        vc: usize,
    },
}

/// The simulator.
pub struct Network {
    cfg: SimConfig,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    /// Packet metadata slab: slots are recycled through `free_packet_ids`
    /// when a packet's tail flit ejects, so memory stays proportional to
    /// the number of *in-flight* packets rather than total injections.
    packets: Vec<PacketInfo>,
    /// Recycled slab slots available for the next spawned packet.
    free_packet_ids: Vec<PacketId>,
    /// Current / peak number of live slab entries (memory telemetry).
    live_packets: usize,
    peak_live_packets: usize,
    sources: Vec<SourceSpec>,
    /// Cumulative per-source, per-class measured-delivery accumulators
    /// for the [`SwapController`] ([`SourceCounters`]). Empty unless the
    /// run was started through [`run_controlled`](Network::run_controlled),
    /// so the plain path pays one never-taken branch per delivery.
    source_accum: Vec<SourceCounters>,
    /// Nearest memory controller per tile, precomputed.
    nearest_mc: Vec<TileId>,
    rng: SmallRng,
    report: SimReport,
    /// Measured packets still in flight (for the drain phase).
    inflight_measured: u64,
    /// All packets still in flight (measured or not).
    inflight_total: u64,
    /// Flits forwarded over inter-router links (all phases).
    link_flit_traversals: u64,
    /// Total flits buffered anywhere in the network right now
    /// (incrementally maintained; replaces the per-cycle O(routers) scan).
    total_buffered: usize,
    /// Peak total buffered flits across the network, sampled at the end of
    /// every cycle (same sampling point as the original scan).
    peak_buffered: usize,
    /// Cycles actually simulated.
    cycles_run: u64,
    /// Routers with at least one buffered flit.
    active_routers: ActiveSet,
    /// NIs with a queued or mid-injection packet.
    active_nis: ActiveSet,
    /// Reusable per-cycle scratch (cleared, never dropped, so the steady
    /// state allocates nothing).
    scratch_deliveries: Vec<Delivery>,
    scratch_credits: Vec<Credit>,
    /// Windowed telemetry accumulator. `None` unless the run was started
    /// through [`run_probed`](Network::run_probed) with an enabled probe,
    /// so the plain [`run`](Network::run) path pays one never-taken branch
    /// per hook and stays bit-identical to the uninstrumented simulator.
    windower: Option<Windower>,
    /// Spatial/flow observability state. Same contract as
    /// [`windower`](Self::windower): `None` on the plain path, so every
    /// hook costs one never-taken branch when telemetry is off.
    flow: Option<Box<FlowState>>,
    /// Accumulating wall-clock phase profile for the current telemetry
    /// window. Populated only when the probe opts in via
    /// `Probe::wants_profile` — the timings are nondeterministic and are
    /// never fed back into simulation state.
    profile: Option<Box<ProfileRecord>>,
    /// Pending `(cycle, source, class)` arrival events under
    /// [`InjectionProcess::Geometric`]; empty under Bernoulli. Ties pop in
    /// `(source, class)` order — the same order the per-cycle Bernoulli
    /// scan visits sources, so spawn order (and with it every downstream
    /// RNG draw) is well defined.
    arrivals: BinaryHeap<Reverse<(u64, u32, u8)>>,
    /// Uniform draws spent on geometric inter-arrival sampling.
    arrival_draws: u64,
    /// Cycles the event-horizon fast-forward jumped over.
    skipped_cycles: u64,
}

/// Class tag stored in arrival events (heap tuples order by it).
const CLASS_CACHE: u8 = 0;
const CLASS_MEM: u8 = 1;

/// Cumulative per-source, per-class delivery accumulators fed to a
/// [`SwapController`] (measured packets only). Indexed by *source*,
/// which stays stable across mid-run retargets — unlike
/// [`SimReport::per_source`], which is indexed by spawn-time tile — so
/// diffing consecutive controller calls recovers each workload thread's
/// cache and memory request rates no matter where it currently sits.
#[derive(Debug, Clone, Default)]
pub struct SourceCounters {
    /// Cache-class deliveries of this source.
    pub cache: LatencyAccum,
    /// Memory-class deliveries of this source.
    pub mem: LatencyAccum,
}

impl SourceCounters {
    /// Delivered packets across both classes.
    pub fn packets(&self) -> u64 {
        self.cache.packets + self.mem.packets
    }
}

/// Mid-run mapping-swap hook driven by [`Network::run_controlled`]
/// (DESIGN.md §14.2).
///
/// The controller is invoked once per **flushed** telemetry window, at
/// the cycle boundary where the window closed, with the completed
/// [`WindowRecord`] and the cumulative per-source, per-class
/// [`SourceCounters`] of the run so far (measured packets only, indexed
/// by source — diff consecutive calls to recover per-source rates
/// within the window).
///
/// Returning `Some(tiles)` retargets source `j` to `tiles[j]` starting
/// with the next cycle: future packets of source `j` spawn from (and,
/// for memory traffic, address the controller nearest to) the new tile,
/// while packets already queued or in flight complete under their
/// spawn-time source/destination — the drain-free in-flight-packet rule.
/// The swap perturbs no RNG draws: Bernoulli generation scans sources in
/// index order regardless of tile, and geometric arrival events are
/// keyed by `(cycle, source, class)` with per-*source* rates, so
/// pre-drawn arrival times stay valid. A fixed seed therefore produces a
/// bit-identical run for a given controller decision sequence.
///
/// The vector must hold exactly one tile per source, each in range and
/// all distinct; anything else aborts the run with the corresponding
/// [`ConfigError`].
pub trait SwapController {
    /// Observe a flushed window; optionally request a source retarget.
    fn on_window(
        &mut self,
        record: &WindowRecord,
        per_source: &[SourceCounters],
    ) -> Option<Vec<noc_model::TileId>>;
}

/// Probe adapter for the controlled run: forwards every window to the
/// real probe while keeping a copy of the last flushed record so the
/// [`SwapController`] can observe it.
struct WindowCapture<'a> {
    inner: &'a mut dyn Probe,
    last: Option<WindowRecord>,
}

impl Probe for WindowCapture<'_> {
    fn is_enabled(&self) -> bool {
        true
    }

    fn on_window(&mut self, record: &WindowRecord) {
        self.inner.on_window(record);
        self.last = Some(record.clone());
    }
}

impl Network {
    /// Build a simulator for `cfg` driven by the validated traffic spec
    /// (tiles without a source stay silent).
    ///
    /// [`TrafficSpec::new`] already rejected duplicate tiles and bad
    /// group ids; this re-checks the config invariants and the source
    /// tiles against `cfg.mesh`, so the constructor path is panic-free.
    pub fn new(cfg: SimConfig, traffic: TrafficSpec) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = cfg.mesh.num_tiles();
        traffic.check_tiles(n)?;
        traffic.check_schedules()?;
        let (sources, num_groups) = traffic.into_parts();
        let vcs = cfg.total_vcs();
        let depth = cfg.buffer_depth;
        let nearest_mc = cfg
            .mesh
            .tiles()
            .map(|t| match cfg.topology {
                Topology::Mesh => cfg.controllers.nearest(&cfg.mesh, t),
                Topology::Torus => cfg.controllers.nearest_torus(&cfg.mesh, t),
            })
            .collect();
        Ok(Network {
            routers: (0..n).map(|_| Router::new(vcs, depth)).collect(),
            nis: (0..n).map(|_| Ni::new(vcs, depth)).collect(),
            packets: Vec::new(),
            free_packet_ids: Vec::new(),
            live_packets: 0,
            peak_live_packets: 0,
            sources,
            source_accum: Vec::new(),
            nearest_mc,
            rng: SmallRng::seed_from_u64(cfg.seed),
            report: {
                let mut r = SimReport::new(num_groups);
                r.per_source = vec![crate::stats::LatencyAccum::default(); n];
                r
            },
            inflight_measured: 0,
            inflight_total: 0,
            link_flit_traversals: 0,
            total_buffered: 0,
            peak_buffered: 0,
            cycles_run: 0,
            active_routers: ActiveSet::new(n),
            active_nis: ActiveSet::new(n),
            scratch_deliveries: Vec::new(),
            scratch_credits: Vec::new(),
            windower: None,
            flow: None,
            profile: None,
            arrivals: BinaryHeap::new(),
            arrival_draws: 0,
            skipped_cycles: 0,
            cfg,
        })
    }

    /// Run the configured warm-up + measurement + drain, returning the
    /// report. Telemetry stays off (the [`NoopSink`] path).
    pub fn run(self) -> SimReport {
        self.run_probed(&mut NoopSink)
    }

    /// Run with windowed telemetry delivered to `probe`.
    ///
    /// When `probe.is_enabled()`, a [`WindowRecord`] is flushed to
    /// [`Probe::on_window`] for every `cfg.telemetry_window`-cycle window
    /// (truncated at phase boundaries and at the end of the run — see
    /// `noc-telemetry`), and the run additionally produces the DESIGN.md
    /// §12 observability records: a [`FlowSummary`] (per-class/per-group
    /// latency decomposition over measured packets) and a finalized
    /// [`HeatmapRecord`] (per-link/per-VC/per-router spatial counters over
    /// all phases), each delivered once at end of run. Probes that opt in
    /// via [`Probe::wants_packets`] also receive one [`PacketRecord`] per
    /// delivered packet, and [`Probe::wants_profile`] adds per-window
    /// wall-clock phase profiles ([`ProfileRecord`], nondeterministic).
    /// The probe observes the simulation but never influences it: a fixed
    /// seed produces a bit-identical [`SimReport`] whatever the probe
    /// (pinned by `tests/sim_determinism.rs`).
    ///
    /// [`WindowRecord`]: noc_telemetry::WindowRecord
    pub fn run_probed(self, probe: &mut dyn Probe) -> SimReport {
        match self.run_inner(probe, None) {
            Ok(report) => report,
            // The only fallible step of a run is applying a controller's
            // retarget vector; without a controller this arm cannot be
            // reached, and the empty report keeps the path panic-free.
            Err(_) => SimReport::new(0),
        }
    }

    /// [`run_probed`](Self::run_probed) plus a [`SwapController`]
    /// observing every flushed telemetry window and optionally
    /// retargeting the traffic sources at that boundary — the
    /// deterministic mid-run mapping swap (DESIGN.md §14.2).
    ///
    /// Windowed telemetry is collected even when the probe is disabled
    /// (the controller needs it); the probe still receives records only
    /// according to its own contract. Returns an error if the controller
    /// produces an invalid retarget vector (wrong length, out-of-range
    /// or duplicate tiles); the run is abandoned at that point.
    ///
    /// With a controller that never retargets, the report is
    /// [semantically identical](SimReport::semantic_eq) to the unprobed
    /// run: the extra windowing only changes how far the event-horizon
    /// fast-forward may jump (`skipped_cycles`), never what is computed.
    pub fn run_controlled(
        self,
        probe: &mut dyn Probe,
        controller: &mut dyn SwapController,
    ) -> Result<SimReport, ConfigError> {
        self.run_inner(probe, Some(controller))
    }

    fn run_inner(
        mut self,
        probe: &mut dyn Probe,
        mut controller: Option<&mut dyn SwapController>,
    ) -> Result<SimReport, ConfigError> {
        let wall_start = Instant::now();
        if controller.is_some() {
            self.source_accum = vec![SourceCounters::default(); self.sources.len()];
        }
        if probe.is_enabled() || controller.is_some() {
            self.windower = Some(Windower::new(
                self.cfg.telemetry_window,
                self.report.groups.len(),
                self.cfg.warmup_cycles,
                self.cfg.measure_cycles,
            ));
        }
        if probe.is_enabled() {
            self.flow = Some(Box::new(FlowState {
                stamps: Vec::new(),
                summary: FlowSummary::new(self.report.groups.len()),
                heatmap: HeatmapRecord::new(
                    self.cfg.mesh.rows(),
                    self.cfg.mesh.cols(),
                    self.cfg.total_vcs(),
                ),
                wants_packets: probe.wants_packets(),
                pending: Vec::new(),
            }));
            if probe.wants_profile() {
                self.profile = Some(Box::new(ProfileRecord::default()));
            }
        }
        let inject_end = self.cfg.warmup_cycles + self.cfg.measure_cycles;
        let drain_end = inject_end + self.cfg.max_drain_cycles;
        let geometric = self.cfg.injection == InjectionProcess::Geometric;
        if geometric {
            self.seed_arrivals(inject_end);
        }
        // Self-profiling lap mark, advanced after every timed section.
        // `None` unless the probe opted into profiles, so the plain path
        // takes no timestamps beyond the existing `wall_start`.
        let mut mark: Option<Instant> = self.profile.as_ref().map(|_| Instant::now());
        let mut cycle = 0u64;
        while cycle < inject_end || (self.inflight_total > 0 && cycle < drain_end) {
            if cycle < inject_end {
                if geometric {
                    self.generate_geometric(cycle, inject_end);
                } else {
                    self.generate(cycle);
                }
            }
            if let Some(m) = mark.as_mut() {
                let nanos = lap(m);
                if let Some(p) = self.profile.as_mut() {
                    p.generate_nanos += nanos;
                }
            }
            self.inject(cycle);
            if let Some(m) = mark.as_mut() {
                let nanos = lap(m);
                if let Some(p) = self.profile.as_mut() {
                    p.inject_nanos += nanos;
                }
            }
            self.step_routers(cycle);
            // Route/traverse spans are timed inside `step_routers`; reset
            // the mark so the telemetry lap below excludes them.
            if let Some(m) = mark.as_mut() {
                *m = Instant::now();
            }
            // `total_buffered` is maintained incrementally; sampling it here
            // (after deliveries are applied) matches the original
            // end-of-cycle scan point exactly.
            self.peak_buffered = self.peak_buffered.max(self.total_buffered);
            // Flush this cycle's delivered-packet records (empty unless the
            // probe asked for per-packet streams) before the window closes,
            // so packet records always precede the window covering them.
            if let Some(fl) = self.flow.as_mut() {
                for rec in fl.pending.drain(..) {
                    probe.on_packet(&rec);
                }
            }
            let mut flushed_window_end = None;
            let mut retarget = None;
            if let Some(w) = self.windower.as_mut() {
                // The current window's (truncation-aware) end, captured
                // before `end_cycle` may flush it and move on.
                let wend = w.current_window_end();
                match controller.as_deref_mut() {
                    Some(ctrl) => {
                        // Tee the flush through a capture so the
                        // controller sees the completed record too.
                        let mut cap = WindowCapture {
                            inner: probe,
                            last: None,
                        };
                        w.end_cycle(cycle, self.total_buffered, self.live_packets, &mut cap);
                        if let Some(rec) = cap.last {
                            retarget = ctrl.on_window(&rec, &self.source_accum);
                        }
                    }
                    None => w.end_cycle(cycle, self.total_buffered, self.live_packets, probe),
                }
                if cycle + 1 == wend {
                    flushed_window_end = Some(wend);
                }
            }
            // Apply a requested mapping swap exactly at the window
            // boundary: packets spawned from the next cycle on use the
            // new source tiles; everything already in flight keeps its
            // spawn-time source and destination.
            if let Some(tiles) = retarget {
                self.retarget_sources(&tiles)?;
            }
            if let Some(m) = mark.as_mut() {
                let nanos = lap(m);
                if let Some(p) = self.profile.as_mut() {
                    p.telemetry_nanos += nanos;
                }
            }
            // A window just flushed: emit its phase profile and start the
            // next one on the same boundary.
            if let Some(wend) = flushed_window_end {
                if let Some(p) = self.profile.as_mut() {
                    let mut rec = **p;
                    rec.end_cycle = wend;
                    **p = ProfileRecord {
                        window_index: rec.window_index + 1,
                        start_cycle: wend,
                        ..ProfileRecord::default()
                    };
                    probe.on_profile(&rec);
                }
            }
            cycle += 1;
            // Event-horizon fast-forward: with nothing in flight (no queued
            // packet, no NI mid-injection, no buffered flit — all implied by
            // `inflight_total == 0`) every cycle until the next arrival is a
            // no-op, so jump straight to it. Clamped to the current
            // telemetry window's final cycle so that cycle executes normally
            // and the window flushes with an exact span; phase boundaries
            // need no extra clamp (windows already truncate at them, and the
            // `measured` flag is evaluated per arrival). Skipping is unsound
            // only during injection with work in flight or during drain —
            // the drain loop exits the moment `inflight_total` hits 0.
            if geometric && self.inflight_total == 0 && cycle < inject_end {
                let mut target = match self.arrivals.peek() {
                    Some(&Reverse((c, _, _))) => c,
                    None => inject_end,
                };
                if let Some(w) = self.windower.as_ref() {
                    target = target.min(w.current_window_end() - 1);
                }
                if target > cycle {
                    self.skipped_cycles += target - cycle;
                    cycle = target;
                }
            }
        }
        if let Some(w) = self.windower.take() {
            w.finish(cycle, self.total_buffered, self.live_packets, probe);
        }
        // Final partial profile window (skipped when the last cycle closed
        // a window exactly, leaving an empty accumulator behind).
        if let Some(p) = self.profile.take() {
            if p.start_cycle < cycle {
                let mut rec = *p;
                rec.end_cycle = cycle;
                probe.on_profile(&rec);
            }
        }
        // End-of-run observability delivery: close the occupancy ledgers,
        // then flow summary before heatmap (documented order).
        if let Some(mut fl) = self.flow.take() {
            fl.heatmap.finalize(cycle);
            probe.on_flow(&fl.summary);
            probe.on_heatmap(&fl.heatmap);
        }
        self.cycles_run = cycle;
        self.report.measured_cycles = self.cfg.measure_cycles;
        self.report.fully_drained = self.inflight_measured == 0;
        self.report.network = crate::stats::NetworkStats {
            link_flit_traversals: self.link_flit_traversals,
            peak_buffered_flits: self.peak_buffered,
            cycles_run: self.cycles_run,
            num_links: 2
                * (self.cfg.mesh.rows() * (self.cfg.mesh.cols() - 1)
                    + self.cfg.mesh.cols() * (self.cfg.mesh.rows() - 1)),
            peak_live_packets: self.peak_live_packets,
            packet_slab_slots: self.packets.len(),
            arrival_draws: self.arrival_draws,
            skipped_cycles: self.skipped_cycles,
            wall_nanos: wall_start.elapsed().as_nanos() as u64,
        };
        Ok(self.report)
    }

    /// Retarget source `j` to `tiles[j]` for all future spawns, after
    /// validating the vector (one tile per source, in range, all
    /// distinct). Schedules, groups and pre-drawn arrival events are
    /// untouched — the workload follows its thread to the new tile.
    fn retarget_sources(&mut self, tiles: &[TileId]) -> Result<(), ConfigError> {
        if tiles.len() != self.sources.len() {
            return Err(ConfigError::RetargetLength {
                got: tiles.len(),
                expected: self.sources.len(),
            });
        }
        let n = self.cfg.mesh.num_tiles();
        let mut seen = vec![false; n];
        for &t in tiles {
            if t.index() >= n {
                return Err(ConfigError::SourceTileOutOfRange {
                    tile: t.index(),
                    num_tiles: n,
                });
            }
            if seen[t.index()] {
                return Err(ConfigError::DuplicateSourceTile(t.index()));
            }
            seen[t.index()] = true;
        }
        for (s, &t) in self.sources.iter_mut().zip(tiles) {
            s.tile = t;
        }
        Ok(())
    }

    /// Seed the arrival heap for [`InjectionProcess::Geometric`]: one
    /// pending event per `(source, class)` whose schedule produces an
    /// arrival before `inject_end`. Sources are sampled in ascending index
    /// order, cache class before memory — the same order the Bernoulli
    /// scan consumes the RNG, so same-cycle events pop identically.
    fn seed_arrivals(&mut self, inject_end: u64) {
        for si in 0..self.sources.len() {
            if let Some(c) = self.sources[si].cache.next_arrival(
                0,
                inject_end,
                &mut self.rng,
                &mut self.arrival_draws,
            ) {
                self.arrivals.push(Reverse((c, si as u32, CLASS_CACHE)));
            }
            if let Some(c) = self.sources[si].mem.next_arrival(
                0,
                inject_end,
                &mut self.rng,
                &mut self.arrival_draws,
            ) {
                self.arrivals.push(Reverse((c, si as u32, CLASS_MEM)));
            }
        }
    }

    /// Geometric packet generation: pop every arrival event due this
    /// cycle, spawn its packet, and resample that `(source, class)` pair's
    /// next arrival. Equivalent in distribution to [`generate`]
    /// (`Network::generate`) but O(arrivals) instead of O(sources) per
    /// cycle.
    fn generate_geometric(&mut self, cycle: u64, inject_end: u64) {
        let measured = cycle >= self.cfg.warmup_cycles;
        let n = self.cfg.mesh.num_tiles();
        while let Some(&Reverse((c, si, class))) = self.arrivals.peek() {
            if c > cycle {
                break;
            }
            self.arrivals.pop();
            let si = si as usize;
            if class == CLASS_CACHE {
                let dst = TileId(self.rng.gen_range(0..n));
                self.spawn_packet(si, PacketClass::Cache, dst, cycle, measured);
            } else {
                let dst = self.nearest_mc[self.sources[si].tile.index()];
                self.spawn_packet(si, PacketClass::Memory, dst, cycle, measured);
            }
            let sched = if class == CLASS_CACHE {
                &self.sources[si].cache
            } else {
                &self.sources[si].mem
            };
            if let Some(next) = sched.next_arrival(
                cycle + 1,
                inject_end,
                &mut self.rng,
                &mut self.arrival_draws,
            ) {
                self.arrivals.push(Reverse((next, si as u32, class)));
            }
        }
    }

    /// Bernoulli packet generation at every source.
    fn generate(&mut self, cycle: u64) {
        let measured = cycle >= self.cfg.warmup_cycles;
        let n = self.cfg.mesh.num_tiles();
        for si in 0..self.sources.len() {
            // cache class
            let rate = self.sources[si].cache.rate_at(cycle);
            if rate > 0.0 && self.rng.gen_bool(rate.min(1.0)) {
                let dst = TileId(self.rng.gen_range(0..n));
                self.spawn_packet(si, PacketClass::Cache, dst, cycle, measured);
            }
            // memory class
            let rate = self.sources[si].mem.rate_at(cycle);
            if rate > 0.0 && self.rng.gen_bool(rate.min(1.0)) {
                let dst = self.nearest_mc[self.sources[si].tile.index()];
                self.spawn_packet(si, PacketClass::Memory, dst, cycle, measured);
            }
        }
    }

    fn spawn_packet(
        &mut self,
        source_idx: usize,
        class: PacketClass,
        dst: TileId,
        cycle: u64,
        measured: bool,
    ) {
        let src = self.sources[source_idx].tile;
        let group = self.sources[source_idx].group;
        let len = if self.rng.gen_bool(self.cfg.long_fraction) {
            self.cfg.long_flits
        } else {
            1
        };
        let hops = self.cfg.topology.hops(&self.cfg.mesh, src, dst) as u32;
        if measured {
            self.report.injected += 1;
        }
        if let Some(w) = self.windower.as_mut() {
            w.on_inject(len as u64);
        }
        if src == dst {
            // Local bank / local controller: no network traversal, zero
            // latency (the Eq. (2) exception).
            if measured {
                self.report.record(group, src.index(), class, 0, 0, len, 0);
                if !self.source_accum.is_empty() {
                    let acc = &mut self.source_accum[source_idx];
                    match class {
                        PacketClass::Cache => acc.cache.record(0, 0, len, 0),
                        PacketClass::Memory => acc.mem.record(0, 0, len, 0),
                    }
                }
            }
            if let Some(w) = self.windower.as_mut() {
                w.on_eject(class == PacketClass::Cache, group, 0, 0, len, 0);
            }
            if let Some(fl) = self.flow.as_mut() {
                // All four lifecycle stamps coincide: the decomposition is
                // all-zero, matching the recorded zero latency.
                let rec = PacketRecord {
                    src: src.index(),
                    dst: dst.index(),
                    cache: class == PacketClass::Cache,
                    group,
                    flits: len,
                    hops: 0,
                    enqueue_cycle: cycle,
                    inject_cycle: cycle,
                    head_eject_cycle: cycle,
                    tail_eject_cycle: cycle,
                    measured,
                };
                if measured {
                    fl.summary.record(&rec);
                }
                if fl.wants_packets {
                    fl.pending.push(rec);
                }
            }
            return;
        }
        let info = PacketInfo {
            src,
            dst,
            source: source_idx as u32,
            class,
            group,
            len,
            inject_cycle: cycle,
            hops,
            measured,
        };
        // Slab allocation: reuse a slot freed by a delivered packet if one
        // exists. Packet ids carry no ordering semantics anywhere in the
        // router pipeline, so recycling them cannot change behaviour.
        let id = match self.free_packet_ids.pop() {
            Some(id) => {
                self.packets[id as usize] = info;
                id
            }
            None => {
                let id = self.packets.len() as PacketId;
                self.packets.push(info);
                id
            }
        };
        if let Some(fl) = self.flow.as_mut() {
            // Keep the stamp slab parallel to the packet slab and reset the
            // recycled slot.
            if fl.stamps.len() <= id as usize {
                fl.stamps.resize(id as usize + 1, PacketStamps::default());
            }
            fl.stamps[id as usize] = PacketStamps::default();
        }
        self.live_packets += 1;
        self.peak_live_packets = self.peak_live_packets.max(self.live_packets);
        self.nis[src.index()].queues[class_index(class)].push_back(id);
        self.active_nis.insert(src.index());
        self.inflight_total += 1;
        if measured {
            self.inflight_measured += 1;
        }
    }

    /// NI injection: one flit per cycle per tile into the router's local
    /// input port, credit-gated.
    fn inject(&mut self, cycle: u64) {
        let stages = self.cfg.router_stages;
        let vpc = self.cfg.vcs_per_class;
        // Visit only NIs with queued or mid-injection packets, in ascending
        // tile order (same order as the original full scan). The word is
        // snapshotted because the only in-pass mutation is clearing the
        // current tile's own bit.
        for w in 0..self.active_nis.words.len() {
            let mut bits = self.active_nis.words[w];
            while bits != 0 {
                let t = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.inject_tile(t, cycle, stages, vpc);
                if !self.nis[t].pending() {
                    self.active_nis.remove(t);
                }
            }
        }
    }

    /// One NI's injection step: select a packet if idle, then push one flit
    /// into the router's local input port, credit-gated.
    fn inject_tile(&mut self, t: usize, cycle: u64, stages: u64, vpc: usize) {
        // Select a packet if none is mid-injection.
        if self.nis[t].current.is_none() {
            let rr = self.nis[t].rr_class;
            let mut selected = None;
            for off in 0..2 {
                let class = (rr + off) % 2;
                if self.nis[t].queues[class].is_empty() {
                    continue;
                }
                // Pick the class VC with the most credits.
                let range = class * vpc..(class + 1) * vpc;
                if let Some(vc) = range
                    .clone()
                    .filter(|&v| self.nis[t].credits[v] > 0)
                    .max_by_key(|&v| self.nis[t].credits[v])
                {
                    let pid = self.nis[t].queues[class].pop_front().expect("non-empty");
                    selected = Some((pid, 0u16, vc));
                    self.nis[t].rr_class = (class + 1) % 2;
                    break;
                }
            }
            self.nis[t].current = selected;
        }
        // Push one flit of the current packet if credit allows.
        if let Some((pid, idx, vc)) = self.nis[t].current {
            if self.nis[t].credits[vc] == 0 {
                return;
            }
            let len = self.packets[pid as usize].len;
            let flit = Flit {
                packet: pid,
                is_head: idx == 0,
                is_tail: idx + 1 == len,
            };
            self.nis[t].credits[vc] -= 1;
            self.routers[t].inputs[P_LOCAL][vc]
                .buf
                .push_back(TimedFlit {
                    flit,
                    ready: cycle + stages,
                });
            self.buffer_flit_at(t, P_LOCAL, vc, cycle);
            if let Some(fl) = self.flow.as_mut() {
                if idx == 0 {
                    fl.stamps[pid as usize].head_inject = cycle;
                }
            }
            self.nis[t].current = if idx + 1 == len {
                None
            } else {
                Some((pid, idx + 1, vc))
            };
        }
    }

    /// Bookkeeping for a flit entering router `r`'s input VC `(port, vc)`:
    /// per-router and global counters, the occupancy mask, and the activity
    /// worklist. `cycle` feeds the observability occupancy ledger only.
    #[inline]
    fn buffer_flit_at(&mut self, r: usize, port: usize, vc: usize, cycle: u64) {
        let router = &mut self.routers[r];
        router.buffered += 1;
        router.occ |= 1 << (port * self.cfg.total_vcs() + vc);
        self.total_buffered += 1;
        self.active_routers.insert(r);
        if let Some(fl) = self.flow.as_mut() {
            fl.heatmap.on_buffer(r, vc, cycle);
        }
    }

    /// One cycle of router operation: routing, VC allocation, switch
    /// allocation, traversal, credit return.
    fn step_routers(&mut self, cycle: u64) {
        // External effects collected during the per-router pass and applied
        // afterwards: deliveries to neighbour buffers and credits returned
        // to upstream routers / NIs. The buffers are owned by `Network` and
        // reused every cycle so the steady state allocates nothing; they are
        // taken out here to keep the borrow checker happy while the pass
        // also borrows `self`.
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        let mut credits = std::mem::take(&mut self.scratch_credits);
        debug_assert!(deliveries.is_empty() && credits.is_empty());
        let mesh = self.cfg.mesh;
        let stages = self.cfg.router_stages;
        let link = self.cfg.link_cycles;
        let per_hop = self.cfg.per_hop_cycles();
        let vpc = self.cfg.vcs_per_class;
        let total_vcs = self.cfg.total_vcs();
        // Phase-profile marks: the per-router pass is the route/arbitrate
        // span, applying deliveries and credits the traverse span.
        let route_start = self.profile.as_ref().map(|_| Instant::now());

        // Visit only routers on the activity worklist, in ascending index
        // order (a requirement for bit-identical reports: f64 latency sums
        // are accumulated in visit order). The per-word snapshot is safe
        // because the pass only *clears* bits; deliveries re-insert below.
        for w in 0..self.active_routers.words.len() {
            let mut bits = self.active_routers.words[w];
            while bits != 0 {
                let r = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.routers[r].buffered == 0 {
                    self.active_routers.remove(r);
                    continue;
                }
                self.step_router(
                    r,
                    cycle,
                    mesh,
                    stages,
                    link,
                    per_hop,
                    vpc,
                    total_vcs,
                    &mut deliveries,
                    &mut credits,
                );
                if self.routers[r].buffered == 0 {
                    self.active_routers.remove(r);
                }
            }
        }

        let traverse_start = route_start.map(|_| Instant::now());

        for d in deliveries.drain(..) {
            self.routers[d.router].inputs[d.port][d.vc]
                .buf
                .push_back(TimedFlit {
                    flit: d.flit,
                    ready: d.ready,
                });
            self.buffer_flit_at(d.router, d.port, d.vc, cycle);
        }
        for c in credits.drain(..) {
            match c {
                Credit::Router { router, port, vc } => {
                    self.routers[router].outputs[port][vc].credits += 1;
                }
                Credit::Ni { tile, vc } => {
                    self.nis[tile].credits[vc] += 1;
                }
            }
        }
        self.scratch_deliveries = deliveries;
        self.scratch_credits = credits;
        if let (Some(rs), Some(ts)) = (route_start, traverse_start) {
            if let Some(p) = self.profile.as_mut() {
                p.route_nanos += ts.duration_since(rs).as_nanos() as u64;
                p.traverse_nanos += ts.elapsed().as_nanos() as u64;
            }
        }
    }

    /// One cycle of a single router `r`: routing, VC allocation, switch
    /// allocation, traversal, credit return.
    #[allow(clippy::too_many_arguments)]
    fn step_router(
        &mut self,
        r: usize,
        cycle: u64,
        mesh: Mesh,
        stages: u64,
        link: u64,
        per_hop: u64,
        vpc: usize,
        total_vcs: usize,
        deliveries: &mut Vec<Delivery>,
        credits: &mut Vec<Credit>,
    ) {
        {
            let here = TileId(r);
            let topo = self.cfg.topology;
            // One crossbar input per port and cycle (switch allocation's
            // physical constraint), unless disabled for ablation.
            let mut input_used = [false; NUM_PORTS];
            // Per output port: route/VC-allocate eligible inputs, then pick
            // one winner round-robin.
            for out_port in 0..NUM_PORTS {
                let mut winner: Option<(usize, usize)> = None; // (in_port, vc)
                let rr_start = self.routers[r].rr[out_port];
                let slots = NUM_PORTS * total_vcs;
                // Visit only occupied slots (the original loop scanned all
                // `slots` and skipped empty buffers via `front() == None`),
                // in identical round-robin order: ascending from `rr_start`,
                // then the wrap-around below it.
                let occ = self.routers[r].occ;
                let parts = [occ & (u64::MAX << rr_start), occ & !(u64::MAX << rr_start)];
                'scan: for mut part in parts {
                    while part != 0 {
                        let slot = part.trailing_zeros() as usize;
                        part &= part - 1;
                        let (in_port, vc) = (slot / total_vcs, slot % total_vcs);
                        if self.cfg.crossbar_input_limit && input_used[in_port] {
                            // Arbitration-pressure proxy: the slot may not
                            // even want this output port (routing is checked
                            // later) or may not be switch-ready yet, so this
                            // counter is an upper bound (see HeatmapRecord).
                            if let Some(fl) = self.flow.as_mut() {
                                fl.heatmap.on_switch_stall(r);
                            }
                            continue;
                        }
                        // Routing + VC allocation for the front flit.
                        let front = match self.routers[r].inputs[in_port][vc].buf.front() {
                            Some(tf) if tf.ready <= cycle => tf.flit,
                            _ => continue,
                        };
                        let info = &self.packets[front.packet as usize];
                        if self.routers[r].inputs[in_port][vc].route.is_none() {
                            debug_assert!(front.is_head, "routing state lost mid-packet");
                            let dir = match (self.cfg.topology, self.cfg.routing) {
                                (Topology::Mesh, RoutingKind::Xy) => {
                                    route_xy(&mesh, here, info.dst)
                                }
                                (Topology::Mesh, RoutingKind::Yx) => {
                                    route_yx(&mesh, here, info.dst)
                                }
                                (Topology::Torus, RoutingKind::Xy) => {
                                    route_xy_torus(&mesh, here, info.dst)
                                }
                                (Topology::Torus, RoutingKind::Yx) => {
                                    route_yx_torus(&mesh, here, info.dst)
                                }
                            };
                            self.routers[r].inputs[in_port][vc].route = Some(port_of(dir));
                        }
                        if self.routers[r].inputs[in_port][vc].route != Some(out_port) {
                            continue;
                        }
                        if out_port != P_LOCAL
                            && self.routers[r].inputs[in_port][vc].out_vc.is_none()
                        {
                            let class = class_index(info.class);
                            let range = class * vpc..(class + 1) * vpc;
                            let free = range
                                .clone()
                                .find(|&v| !self.routers[r].outputs[out_port][v].busy);
                            if let Some(v) = free {
                                self.routers[r].outputs[out_port][v].busy = true;
                                self.routers[r].inputs[in_port][vc].out_vc = Some(v);
                            } else {
                                if let Some(fl) = self.flow.as_mut() {
                                    fl.heatmap.on_vc_stall(r);
                                }
                                continue; // no VC available this cycle
                            }
                        }
                        if out_port != P_LOCAL {
                            let ovc = self.routers[r].inputs[in_port][vc]
                                .out_vc
                                .expect("allocated");
                            if self.routers[r].outputs[out_port][ovc].credits == 0 {
                                if let Some(fl) = self.flow.as_mut() {
                                    fl.heatmap.on_credit_stall(r);
                                }
                                continue; // downstream buffer full
                            }
                        }
                        winner = Some((in_port, vc));
                        self.routers[r].rr[out_port] = (slot + 1) % slots;
                        break 'scan;
                    }
                }
                let Some((in_port, vc)) = winner else {
                    continue;
                };
                input_used[in_port] = true;
                // ---- Traversal: pop and move the flit.
                let tf = self.routers[r].inputs[in_port][vc]
                    .buf
                    .pop_front()
                    .expect("winner has a flit");
                if self.routers[r].inputs[in_port][vc].buf.is_empty() {
                    self.routers[r].occ &= !(1 << (in_port * total_vcs + vc));
                }
                self.routers[r].buffered -= 1;
                self.total_buffered -= 1;
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_pop(r, vc, cycle);
                }
                let flit = tf.flit;
                let info = &self.packets[flit.packet as usize];
                // Credit back to whoever feeds this input VC.
                if in_port == P_LOCAL {
                    credits.push(Credit::Ni { tile: r, vc });
                } else if let Some(up) = neighbor(&mesh, topo, here, in_port) {
                    credits.push(Credit::Router {
                        router: up.index(),
                        port: opposite(in_port),
                        vc,
                    });
                }
                if out_port == P_LOCAL {
                    // Ejection.
                    if flit.is_head {
                        if let Some(fl) = self.flow.as_mut() {
                            fl.stamps[flit.packet as usize].head_eject = cycle;
                        }
                    }
                    if flit.is_tail {
                        let latency = cycle - info.inject_cycle + 1;
                        let ideal = info.hops as u64 * per_hop + info.len as u64;
                        if let Some(fl) = self.flow.as_mut() {
                            let stamps = fl.stamps[flit.packet as usize];
                            let rec = PacketRecord {
                                src: info.src.index(),
                                dst: info.dst.index(),
                                cache: info.class == PacketClass::Cache,
                                group: info.group,
                                flits: info.len,
                                hops: info.hops,
                                enqueue_cycle: info.inject_cycle,
                                inject_cycle: stamps.head_inject,
                                head_eject_cycle: stamps.head_eject,
                                tail_eject_cycle: cycle,
                                measured: info.measured,
                            };
                            // The flow summary reconciles with the report,
                            // so it covers measured packets only; opted-in
                            // per-packet streams carry every delivery.
                            if info.measured {
                                fl.summary.record(&rec);
                            }
                            if fl.wants_packets {
                                fl.pending.push(rec);
                            }
                        }
                        if info.measured {
                            self.report.record(
                                info.group,
                                info.src.index(),
                                info.class,
                                latency,
                                info.hops,
                                info.len,
                                ideal,
                            );
                            if !self.source_accum.is_empty() {
                                let acc = &mut self.source_accum[info.source as usize];
                                match info.class {
                                    PacketClass::Cache => {
                                        acc.cache.record(latency, info.hops, info.len, ideal)
                                    }
                                    PacketClass::Memory => {
                                        acc.mem.record(latency, info.hops, info.len, ideal)
                                    }
                                }
                            }
                            self.inflight_measured -= 1;
                        }
                        if let Some(w) = self.windower.as_mut() {
                            w.on_eject(
                                info.class == PacketClass::Cache,
                                info.group,
                                latency,
                                info.hops,
                                info.len,
                                ideal,
                            );
                        }
                        self.inflight_total -= 1;
                        // The tail leaving the network means no live flit
                        // references this id any more: recycle the slab slot.
                        self.free_packet_ids.push(flit.packet);
                        self.live_packets -= 1;
                    }
                } else {
                    let ovc = self.routers[r].inputs[in_port][vc]
                        .out_vc
                        .expect("allocated");
                    self.routers[r].outputs[out_port][ovc].credits -= 1;
                    self.link_flit_traversals += 1;
                    if let Some(fl) = self.flow.as_mut() {
                        fl.heatmap.on_link_traversal(r, out_port);
                    }
                    let next = neighbor(&mesh, topo, here, out_port).expect("route stays on chip");
                    // Charge the downstream pipeline unless the flit will
                    // eject there.
                    let extra = if next == info.dst { 0 } else { stages };
                    deliveries.push(Delivery {
                        router: next.index(),
                        port: opposite(out_port),
                        vc: ovc,
                        flit,
                        ready: cycle + link + extra,
                    });
                    if flit.is_tail {
                        self.routers[r].outputs[out_port][ovc].busy = false;
                    }
                }
                if flit.is_tail {
                    self.routers[r].inputs[in_port][vc].route = None;
                    self.routers[r].inputs[in_port][vc].out_vc = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::Schedule;
    use noc_model::MemoryControllers;

    fn quiet_config(mesh: Mesh) -> SimConfig {
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 2_000;
        cfg.max_drain_cycles = 5_000;
        cfg
    }

    /// Test shorthand for the validated construction path.
    fn net(cfg: SimConfig, sources: Vec<SourceSpec>, groups: usize) -> Network {
        Network::new(cfg, TrafficSpec::new(sources, groups).expect("traffic")).expect("config")
    }

    /// One source, one deterministic destination (memory traffic to a
    /// single controller) — uncontended latency must match Eq. (2) exactly.
    #[test]
    fn uncontended_latency_matches_eq2() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        // single controller far from the source: src (0,0), mc (3,3) → 6 hops
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 0.0; // all single-flit
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01), // sparse: no self-contention
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.fully_drained);
        assert!(report.memory.packets > 0, "no packets generated");
        // H=6, per-hop 4, 1 flit → latency 25, td_q = 0.
        assert!(
            (report.memory.apl() - 25.0).abs() < 1e-9,
            "APL {}",
            report.memory.apl()
        );
        assert!(report.mean_td_q().abs() < 1e-9);
    }

    /// Same setup on a torus: the wraparound links shorten (0,0)→(3,3)
    /// from 6 mesh hops to 2 torus hops, and the simulated uncontended
    /// latency must follow Eq. (2) with the torus hop count.
    #[test]
    fn torus_uncontended_latency_matches_eq2() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.topology = Topology::Torus;
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 0.0;
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01),
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.fully_drained);
        assert!(report.memory.packets > 0, "no packets generated");
        // H = torus_hops((0,0),(3,3)) = 2, per-hop 4, 1 flit → latency 9.
        assert!(
            (report.memory.apl() - 9.0).abs() < 1e-9,
            "APL {}",
            report.memory.apl()
        );
        assert!(report.mean_td_q().abs() < 1e-9);
    }

    /// A torus run at the paper's low loads must deliver every measured
    /// packet (the shortest-direction router is deadlock-free in practice
    /// at validation loads) under both routing variants.
    #[test]
    fn torus_delivers_everything_at_low_load() {
        for routing in [RoutingKind::Xy, RoutingKind::Yx] {
            let mesh = Mesh::square(4);
            let mut cfg = quiet_config(mesh);
            cfg.topology = Topology::Torus;
            cfg.routing = routing;
            cfg.measure_cycles = 3_000;
            let sources: Vec<SourceSpec> = mesh
                .tiles()
                .map(|t| SourceSpec {
                    tile: t,
                    group: 0,
                    cache: Schedule::Constant(0.02),
                    mem: Schedule::Constant(0.01),
                })
                .collect();
            let report = net(cfg, sources, 1).run();
            assert!(report.fully_drained, "torus {routing:?} failed to drain");
            assert_eq!(report.injected, report.delivered);
        }
    }

    #[test]
    fn long_packets_add_serialization() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 1.0; // all 5-flit
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01),
        };
        let report = net(cfg, vec![src], 1).run();
        // H=6: 6·4 + 5 = 29 cycles. Back-to-back 5-flit injections can
        // occasionally overlap at the NI, so allow a sub-cycle of queueing.
        assert!(
            (report.memory.apl() - 29.0).abs() < 0.5,
            "APL {}",
            report.memory.apl()
        );
        // No packet can beat the ideal.
        assert!(report.memory.apl() >= 29.0 - 1e-9);
    }

    #[test]
    fn flit_conservation_under_load() {
        // Every measured packet injected must be delivered after drain.
        let mesh = Mesh::square(4);
        let cfg = quiet_config(mesh);
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(0.01),
                mem: Schedule::Constant(0.002),
            })
            .collect();
        let report = net(cfg, sources, 2).run();
        assert!(report.fully_drained, "drain failed");
        assert_eq!(report.injected, report.delivered);
        assert!(report.injected > 0);
    }

    #[test]
    fn low_load_tdq_below_one_cycle() {
        // The paper's observation: td_q ≈ 0–1 cycles at evaluated loads.
        let mesh = Mesh::square(8);
        let mut cfg = quiet_config(mesh);
        cfg.warmup_cycles = 1_000;
        cfg.measure_cycles = 10_000;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::per_kilocycle(8.0), // Table 3 scale
                mem: Schedule::per_kilocycle(1.2),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.fully_drained);
        let tdq = report.mean_td_q();
        assert!((0.0..1.0).contains(&tdq), "td_q {tdq} out of paper range");
    }

    #[test]
    fn self_packets_count_as_zero_latency() {
        // A corner tile sending memory traffic to its own controller.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.measure_cycles = 300;
        let src = SourceSpec {
            tile: TileId(0), // corner = controller tile
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.05),
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.memory.packets > 0);
        assert_eq!(report.memory.apl(), 0.0);
        assert_eq!(report.injected, report.delivered);
    }

    #[test]
    fn cache_destinations_cover_the_mesh() {
        // With uniform hashing, mean cache hop count from a corner must be
        // close to the analytic H̄C (Eq. 3).
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.warmup_cycles = 0;
        // ~3000 packets: the sample std of mean hops is ≈0.03, so the 0.15
        // tolerance is ~5σ and the test is robust to the RNG stream (the
        // original 60k-cycle/0.01-rate version sampled only ~580 packets
        // and sat within 3σ of failure).
        cfg.measure_cycles = 150_000;
        cfg.seed = 3;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.02),
            mem: Schedule::Constant(0.0),
        };
        let report = net(cfg, vec![src], 1).run();
        // analytic mean hops from corner of 4×4 = 3.0 (over all dst incl self)
        let measured = report.cache.total_hops as f64 / report.cache.packets as f64;
        assert!((measured - 3.0).abs() < 0.15, "mean hops {measured} vs 3.0");
    }

    #[test]
    fn deterministic_contention_creates_queueing() {
        // Two heavy sources in the same row share the path to a single
        // far-away controller: the shared links must show td_q > 0.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(3)]).expect("valid placement");
        cfg.long_fraction = 1.0;
        cfg.measure_cycles = 5_000;
        cfg.max_drain_cycles = 50_000;
        let mk = |t: usize| SourceSpec {
            tile: TileId(t),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.15), // 0.75 flits/cycle each: contended
        };
        let report = net(cfg, vec![mk(0), mk(1)], 1).run();
        assert!(report.fully_drained, "{}", report.summary());
        assert!(
            report.mean_td_q() > 0.1,
            "expected queueing under contention, td_q {}",
            report.mean_td_q()
        );
    }

    #[test]
    fn stress_tiny_buffers_still_conserves() {
        // Worst-case resources: 1-flit buffers, 1 VC per class. Wormhole +
        // XY must stay deadlock-free and deliver everything.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.buffer_depth = 1;
        cfg.vcs_per_class = 1;
        cfg.measure_cycles = 4_000;
        cfg.max_drain_cycles = 100_000;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.05),
                mem: Schedule::Constant(0.01),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.fully_drained, "{}", report.summary());
        assert_eq!(report.injected, report.delivered);
    }

    #[test]
    fn congested_memory_does_not_stop_cache_traffic() {
        // Class-partitioned VCs: saturating the memory class must not
        // prevent cache packets from draining.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.measure_cycles = 4_000;
        cfg.max_drain_cycles = 400_000;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.02),
                mem: Schedule::Constant(0.2), // memory class saturated
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.cache.packets > 0);
        // Cache latency inflates a little (shared switches/links) but must
        // stay far below the collapsed memory-class latency.
        assert!(
            report.cache.apl() < report.memory.apl(),
            "cache {} vs memory {}",
            report.cache.apl(),
            report.memory.apl()
        );
    }

    #[test]
    fn undrained_runs_are_reported() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.measure_cycles = 2_000;
        cfg.max_drain_cycles = 0; // no drain allowed
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.05),
                mem: Schedule::Constant(0.01),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(!report.fully_drained);
        assert!(report.delivered < report.injected);
    }

    #[test]
    fn yx_routing_delivers_everything() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.routing = crate::config::RoutingKind::Yx;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.02),
                mem: Schedule::Constant(0.004),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.fully_drained);
        assert_eq!(report.injected, report.delivered);
    }

    #[test]
    fn link_utilization_reported() {
        let mesh = Mesh::square(4);
        let cfg = quiet_config(mesh);
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.02),
                mem: Schedule::Constant(0.004),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        let util = report.network.mean_link_utilization();
        assert!(util > 0.0 && util < 1.0, "utilization {util}");
        assert!(report.network.peak_buffered_flits > 0);
        assert_eq!(report.network.num_links, 2 * (4 * 3 + 4 * 3));
    }

    #[test]
    fn idealized_switch_is_never_slower() {
        let mesh = Mesh::square(4);
        let run = |limit: bool| {
            let mut cfg = quiet_config(mesh);
            cfg.crossbar_input_limit = limit;
            cfg.measure_cycles = 8_000;
            let sources: Vec<SourceSpec> = mesh
                .tiles()
                .map(|t| SourceSpec {
                    tile: t,
                    group: 0,
                    cache: Schedule::Constant(0.05),
                    mem: Schedule::Constant(0.01),
                })
                .collect();
            net(cfg, sources, 1).run()
        };
        let physical = run(true);
        let ideal = run(false);
        assert!(physical.fully_drained && ideal.fully_drained);
        // Identical traffic (same seed): the idealized switch can only
        // reduce queueing.
        assert!(
            ideal.g_apl() <= physical.g_apl() + 1e-9,
            "ideal {} vs physical {}",
            ideal.g_apl(),
            physical.g_apl()
        );
    }

    #[test]
    fn duplicate_sources_rejected() {
        let s = SourceSpec::idle(TileId(0));
        assert_eq!(
            TrafficSpec::new(vec![s.clone(), s], 1).unwrap_err(),
            ConfigError::DuplicateSourceTile(0)
        );
    }

    #[test]
    fn out_of_range_tile_rejected_by_network() {
        let mesh = Mesh::square(2);
        let cfg = quiet_config(mesh);
        let spec = TrafficSpec::new(vec![SourceSpec::idle(TileId(9))], 1).expect("shape ok");
        assert_eq!(
            Network::new(cfg, spec).err(),
            Some(ConfigError::SourceTileOutOfRange {
                tile: 9,
                num_tiles: 4
            })
        );
    }

    #[test]
    fn invalid_config_rejected_by_network() {
        let mesh = Mesh::square(2);
        let mut cfg = quiet_config(mesh);
        cfg.vcs_per_class = 8; // 5 ports × 16 VCs = 80 slots > 64
        let spec = TrafficSpec::new(vec![SourceSpec::idle(TileId(0))], 1).expect("shape ok");
        assert_eq!(
            Network::new(cfg, spec).err(),
            Some(ConfigError::VcOverflow {
                ports: 5,
                total_vcs: 16
            })
        );
    }

    /// Geometric sampling + fast-forward must preserve the Eq. (2)
    /// uncontended-latency invariant exactly: every measured packet takes
    /// `H·(stages+link) + L` cycles, td_q = 0.
    #[test]
    fn geometric_uncontended_latency_matches_eq2() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.injection = crate::config::InjectionProcess::Geometric;
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 0.0; // all single-flit
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01), // sparse: no self-contention
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.fully_drained);
        assert!(report.memory.packets > 0, "no packets generated");
        // H=6, per-hop 4, 1 flit → latency 25, td_q = 0 — and APL equality
        // (not just proximity) proves *every* packet hit the ideal.
        assert!(
            (report.memory.apl() - 25.0).abs() < 1e-9,
            "APL {}",
            report.memory.apl()
        );
        assert!(report.mean_td_q().abs() < 1e-9);
        // The fast path actually engaged: one draw per packet (plus any
        // discarded cross-epoch draws — none for a constant schedule) and
        // long quiescent stretches skipped.
        assert!(report.network.arrival_draws > 0);
        assert!(
            report.network.skipped_cycles > report.network.cycles_run / 2,
            "skipped {} of {} cycles",
            report.network.skipped_cycles,
            report.network.cycles_run
        );
    }

    #[test]
    fn geometric_conserves_flits_under_load() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.injection = crate::config::InjectionProcess::Geometric;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(0.01),
                mem: Schedule::Constant(0.002),
            })
            .collect();
        let report = net(cfg, sources, 2).run();
        assert!(report.fully_drained, "drain failed");
        assert_eq!(report.injected, report.delivered);
        assert!(report.injected > 0);
    }

    /// Same scenario, both injection processes: the arrival *distribution*
    /// is identical, so mean rates must agree (streams differ — this is a
    /// statistical check, pinned exactly by `tests/sim_determinism.rs`).
    #[test]
    fn geometric_mean_injection_rate_matches_bernoulli() {
        let mesh = Mesh::square(4);
        let run = |inj: crate::config::InjectionProcess| {
            let mut cfg = quiet_config(mesh);
            cfg.injection = inj;
            cfg.measure_cycles = 60_000;
            let spec =
                TrafficSpec::uniform(&mesh, Schedule::Constant(0.008), Schedule::Constant(0.002));
            Network::new(cfg, spec).expect("config").run()
        };
        let b = run(crate::config::InjectionProcess::BernoulliPerCycle);
        let g = run(crate::config::InjectionProcess::Geometric);
        assert_eq!(b.network.arrival_draws, 0);
        assert!(g.network.arrival_draws > 0);
        // 16 tiles × 0.01 pkt/cycle × 60k cycles ≈ 9600 expected packets;
        // σ ≈ √9600 ≈ 98, so 5% is a ~5σ band for the ratio.
        let ratio = g.injected as f64 / b.injected as f64;
        assert!((ratio - 1.0).abs() < 0.05, "injection ratio {ratio}");
    }

    /// The probe observes but must not perturb — under Geometric too, even
    /// though window-boundary clamping changes which cycles get skipped.
    #[test]
    fn geometric_probed_run_is_semantically_identical() {
        use noc_telemetry::{Phase, RingSink};
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.injection = crate::config::InjectionProcess::Geometric;
        cfg.warmup_cycles = 300;
        cfg.telemetry_window = 250;
        let spec =
            TrafficSpec::uniform(&mesh, Schedule::Constant(0.002), Schedule::Constant(0.0004));
        let plain = Network::new(cfg.clone(), spec.clone())
            .expect("config")
            .run();
        let mut ring = RingSink::new(4096);
        let probed = Network::new(cfg.clone(), spec)
            .expect("config")
            .run_probed(&mut ring);
        assert!(plain.semantic_eq(&probed), "probe perturbed the simulation");
        // Clamping at window boundaries may reduce the probed run's skip
        // tally, but never below zero or above the plain run's.
        assert!(probed.network.skipped_cycles <= plain.network.skipped_cycles);
        assert!(ring.dropped() == 0);
        let windows: Vec<_> = ring.windows().collect();
        assert!(!windows.is_empty());
        // Window spans must tile the run exactly despite skipped regions.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
        }
        assert_eq!(
            windows.last().expect("nonempty").end_cycle,
            probed.network.cycles_run
        );
        let measured: u64 = windows
            .iter()
            .filter(|w| w.phase == Phase::Measure)
            .map(|w| w.width())
            .sum();
        assert_eq!(measured, cfg.measure_cycles);
    }

    /// The probe observes but must not perturb: a probed run's report is
    /// bit-identical to the unprobed run, and its measure-phase windows
    /// tile the measurement exactly.
    #[test]
    fn probed_run_is_bit_identical_and_windows_tile() {
        use noc_telemetry::{Phase, RingSink};
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.warmup_cycles = 300;
        cfg.telemetry_window = 250;
        let spec = TrafficSpec::uniform(&mesh, Schedule::Constant(0.02), Schedule::Constant(0.004));
        let plain = Network::new(cfg.clone(), spec.clone())
            .expect("config")
            .run();
        let mut ring = RingSink::new(4096);
        let probed = Network::new(cfg.clone(), spec)
            .expect("config")
            .run_probed(&mut ring);
        assert!(plain.semantic_eq(&probed), "probe perturbed the simulation");
        assert!(ring.dropped() == 0);
        let windows: Vec<_> = ring.windows().collect();
        assert!(!windows.is_empty());
        let measured: u64 = windows
            .iter()
            .filter(|w| w.phase == Phase::Measure)
            .map(|w| w.width())
            .sum();
        assert_eq!(measured, cfg.measure_cycles);
        let injected: u64 = windows.iter().map(|w| w.injected_packets).sum();
        let ejected: u64 = windows.iter().map(|w| w.ejected_packets).sum();
        // Windows count *all* packets (warm-up included), so they can only
        // exceed the measured-only report counters; after a full drain
        // every injected packet ejected.
        assert!(injected >= probed.injected);
        assert_eq!(injected, ejected);
        // Consecutive windows tile the run without gaps.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
        }
        assert_eq!(
            windows.last().expect("nonempty").end_cycle,
            probed.network.cycles_run
        );
    }
}
