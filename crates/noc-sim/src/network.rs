//! The cycle-level network: 3-stage credit-based wormhole routers with
//! virtual channels on a 2-D mesh, XY routing, and per-tile network
//! interfaces (NIs).
//!
//! Timing model (matching the paper's Eq. (2) in the uncontended case):
//! every flit is charged `router_stages` cycles of pipeline delay at each
//! router that *forwards* it and `link_cycles` per link; ejection at the
//! destination is free. An uncontended packet of `L` flits over `H` hops
//! therefore takes exactly `H·(router_stages + link_cycles) + L` cycles —
//! the analytic model with `td_q = 0`. Any additional cycles observed in
//! simulation are queueing (`td_q`), which the paper reports as 0–1 cycles
//! at the evaluated loads.
//!
//! Flow control: credit-based wormhole with class-partitioned virtual
//! channels and non-atomic VC reuse (a VC FIFO may hold flits of
//! consecutive packets; per-packet routing state applies to the packet at
//! the front, which preserves wormhole contiguity because upstream senders
//! never interleave flits of different packets on one VC).

use crate::config::{
    ConfigError, InjectionProcess, RoutingKind, SimConfig, MAX_ARBITRATION_SLOTS, NUM_PORTS,
};
use crate::packet::{Flit, PacketId, PacketInfo, PacketStamps, FLIT_HEAD, FLIT_MEM, FLIT_TAIL};
use crate::stats::SimReport;
use crate::traffic::{SourceSpec, TrafficSpec};
use noc_metrics::MetricsHandle;
use noc_model::{
    route_xy, route_xy_torus, route_yx, route_yx_torus, Mesh, PacketClass, RouteDir, TileId,
    Topology,
};
use noc_telemetry::{
    FlowSummary, HeatmapRecord, LatencyAccum, NoopSink, PacketRecord, Probe, ProfileRecord,
    WindowRecord, Windower,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

const P_NORTH: usize = 0;
const P_SOUTH: usize = 1;
const P_WEST: usize = 2;
const P_EAST: usize = 3;
const P_LOCAL: usize = 4;

fn port_of(dir: RouteDir) -> usize {
    match dir {
        RouteDir::North => P_NORTH,
        RouteDir::South => P_SOUTH,
        RouteDir::West => P_WEST,
        RouteDir::East => P_EAST,
        RouteDir::Local => P_LOCAL,
    }
}

/// Input port at the neighbour that an output port feeds into.
fn opposite(port: usize) -> usize {
    match port {
        P_NORTH => P_SOUTH,
        P_SOUTH => P_NORTH,
        P_WEST => P_EAST,
        P_EAST => P_WEST,
        _ => unreachable!("local port has no opposite"),
    }
}

/// Neighbour tile in the direction of `port`, if it exists. On a torus
/// every direction exists — off-edge moves wrap around.
fn neighbor(mesh: &Mesh, topology: Topology, tile: TileId, port: usize) -> Option<TileId> {
    let c = mesh.coord(tile);
    let (dr, dc): (isize, isize) = match port {
        P_NORTH => (-1, 0),
        P_SOUTH => (1, 0),
        P_WEST => (0, -1),
        P_EAST => (0, 1),
        _ => return None,
    };
    let nr = c.row as isize + dr;
    let nc = c.col as isize + dc;
    if nr < 0 || nc < 0 || nr as usize >= mesh.rows() || nc as usize >= mesh.cols() {
        match topology {
            Topology::Mesh => None,
            Topology::Torus => {
                let wr = (nr + mesh.rows() as isize) as usize % mesh.rows();
                let wc = (nc + mesh.cols() as isize) as usize % mesh.cols();
                Some(mesh.tile(noc_model::Coord::new(wr, wc)))
            }
        }
    } else {
        Some(mesh.tile(noc_model::Coord::new(nr as usize, nc as usize)))
    }
}

#[derive(Debug, Clone)]
struct TimedFlit {
    flit: Flit,
    /// Earliest cycle this flit may leave the buffer (router pipeline
    /// charge is folded into this timestamp).
    ready: u64,
}

#[derive(Debug, Clone, Default)]
struct InputVc {
    buf: VecDeque<TimedFlit>,
    /// Output port of the packet currently at the front.
    route: Option<usize>,
    /// Downstream VC allocated to the front packet.
    out_vc: Option<usize>,
}

#[derive(Debug, Clone)]
struct OutVc {
    /// Allocated to a packet currently streaming through.
    busy: bool,
    /// Free slots in the downstream input VC buffer.
    credits: usize,
}

#[derive(Debug)]
pub(crate) struct Router {
    /// Input VCs, indexed by arbitration slot (`in_port * total_vcs + vc`)
    /// — one flat array, so the hot scan does a single indexed load per
    /// visited slot instead of chasing two nested `Vec`s.
    inputs: Vec<InputVc>,
    /// Output VCs, indexed `out_port * total_vcs + vc` (same flattening).
    outputs: Vec<OutVc>,
    /// Round-robin arbitration pointer per output port.
    rr: [usize; NUM_PORTS],
    /// Total buffered flits (fast-path skip for idle routers).
    buffered: usize,
    /// Occupancy bitmask over arbitration slots (`in_port * total_vcs +
    /// vc`): bit set iff that input VC has a buffered flit. Lets switch
    /// allocation iterate only occupied slots instead of scanning all
    /// `NUM_PORTS × total_vcs` of them; requires that product ≤ 64
    /// (validated in `Network::new` as `ConfigError::VcOverflow`).
    occ: u64,
    /// Per-output-port mask of slots whose front packet is routed to that
    /// port (bit set iff `inputs[slot].route == Some(port)`). The
    /// unprobed switch-allocation scan visits only `routed[p] & occ` plus
    /// the still-unrouted occupied slots, skipping slots that would fail
    /// the route check anyway.
    routed: [u64; NUM_PORTS],
}

impl Router {
    fn new(vcs: usize, depth: usize) -> Self {
        Router {
            inputs: (0..NUM_PORTS * vcs).map(|_| InputVc::default()).collect(),
            outputs: (0..NUM_PORTS * vcs)
                .map(|_| OutVc {
                    busy: false,
                    credits: depth,
                })
                .collect(),
            rr: [0; NUM_PORTS],
            buffered: 0,
            occ: 0,
            routed: [0; NUM_PORTS],
        }
    }
}

/// A packet waiting in an NI class queue. Length and destination ride
/// along so injection never reads the coordinator-owned packet slab.
#[derive(Debug, Clone, Copy)]
struct NiQueued {
    id: PacketId,
    len: u16,
    dst: u16,
}

/// The packet an NI is currently injecting, flit by flit.
#[derive(Debug, Clone, Copy)]
struct NiCur {
    id: PacketId,
    /// Next flit index.
    idx: u16,
    len: u16,
    dst: u16,
    /// Local input VC the packet streams into.
    vc: u8,
    /// Memory class (clear = cache), for the flit class flag.
    mem: bool,
}

/// Per-tile network interface: source queues feeding the router's local
/// input port, one flit per cycle.
#[derive(Debug)]
pub(crate) struct Ni {
    /// Per-class queues of waiting packets.
    queues: [VecDeque<NiQueued>; 2],
    /// Packet currently being injected.
    current: Option<NiCur>,
    /// Credits for the router's local input VCs.
    credits: Vec<usize>,
    /// Class round-robin pointer.
    rr_class: usize,
}

impl Ni {
    fn new(vcs: usize, depth: usize) -> Self {
        Ni {
            queues: [VecDeque::new(), VecDeque::new()],
            current: None,
            credits: vec![depth; vcs],
            rr_class: 0,
        }
    }

    fn pending(&self) -> bool {
        self.current.is_some() || !self.queues[0].is_empty() || !self.queues[1].is_empty()
    }
}

fn class_index(class: PacketClass) -> usize {
    match class {
        PacketClass::Cache => 0,
        PacketClass::Memory => 1,
    }
}

/// Dense index set over tiles, iterated in ascending order.
///
/// Activity-tracking invariant: a router's bit is set iff `buffered > 0`
/// (an NI's bit iff `pending()`), so the per-cycle loops visit only tiles
/// with work. Ascending iteration order is load-bearing: the report's f64
/// accumulators are summed in delivery order, so visiting routers in any
/// other order would change low bits of the totals and break bit-exact
/// reproducibility against the pre-optimization simulator.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    fn new(n: usize) -> Self {
        ActiveSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Collect the set members in `lo..hi` into `out`, ascending. This is
    /// the per-cycle worklist snapshot: the serial driver collects the
    /// full range, the shard dispatcher one band per worker.
    pub(crate) fn collect_range(&self, lo: usize, hi: usize, out: &mut Vec<u32>) {
        out.clear();
        let first = lo / 64;
        let last = hi.div_ceil(64);
        for w in first..last {
            let mut bits = self.words[w];
            if w == first {
                bits &= u64::MAX << (lo % 64);
            }
            let base = w * 64;
            if base + 64 > hi {
                bits &= (1u64 << (hi - base)) - 1;
            }
            while bits != 0 {
                out.push((base + bits.trailing_zeros() as usize) as u32);
                bits &= bits - 1;
            }
        }
    }
}

/// A flit crossing a link this cycle, to be buffered at the downstream
/// router once the per-router pass completes.
struct Delivery {
    router: usize,
    port: usize,
    vc: usize,
    flit: Flit,
    ready: u64,
}

/// Flow-level spatial observability state, allocated only when a probe is
/// attached (the `Option<Windower>` pattern): packet lifecycle stamps,
/// the per-class/per-group latency decomposition, and the spatial
/// heatmap. Pure observer — nothing in here is ever read back by the
/// simulation, so the probed run stays bit-identical to the plain one.
struct FlowState {
    /// Lifecycle stamps parallel to the packet slab (slots recycled the
    /// same way).
    stamps: Vec<PacketStamps>,
    /// Measured-packet latency decomposition, delivered as the end-of-run
    /// flow summary.
    summary: FlowSummary,
    /// Per-link / per-VC / per-router spatial counters (all phases).
    heatmap: HeatmapRecord,
    /// Whether the probe asked for per-packet records.
    wants_packets: bool,
    /// Packets delivered this cycle, flushed to `Probe::on_packet` after
    /// the router pass (only filled when `wants_packets`).
    pending: Vec<PacketRecord>,
}

/// Wall-clock lap helper for the self-profiling hook: nanoseconds since
/// `mark`, resetting the mark.
fn lap(mark: &mut Instant) -> u64 {
    let now = Instant::now();
    let nanos = now.duration_since(*mark).as_nanos() as u64;
    *mark = now;
    nanos
}

/// A credit returned upstream once the per-router pass completes.
enum Credit {
    Router {
        router: usize,
        port: usize,
        vc: usize,
    },
    Ni {
        tile: usize,
        vc: usize,
    },
}

/// Immutable per-run context for the router/NI datapath: everything the
/// per-cycle pass reads but never writes, hoisted out of `Network` so a
/// band of routers can be advanced with no access to the coordinator
/// state. Shared across shard workers behind an `Arc`.
pub(crate) struct StepCtx {
    mesh: Mesh,
    topology: Topology,
    routing: RoutingKind,
    crossbar_input_limit: bool,
    /// `router_stages`.
    stages: u64,
    /// `link_cycles`.
    link: u64,
    /// `vcs_per_class`.
    vpc: usize,
    total_vcs: usize,
    /// `NUM_PORTS * total_vcs` arbitration slots.
    slots: usize,
    /// Input port of each arbitration slot (`slot / total_vcs`,
    /// precomputed: the scan runs per buffered flit per output port).
    slot_port: [u8; MAX_ARBITRATION_SLOTS],
    /// `neighbors[tile][port]` for the four cardinal ports, torus wrap
    /// applied; `u16::MAX` marks a mesh edge.
    neighbors: Vec<[u16; 4]>,
    /// Whether a probe is attached: gates observability event emission so
    /// the plain path records nothing.
    probed: bool,
    /// Whether a metrics registry is attached: gates the wall-clock span
    /// timestamps in [`run_band`] (DESIGN.md §17). Like `probed`, false
    /// costs one never-taken branch per band pass.
    timed: bool,
}

/// An observability or coordinator-state side effect recorded by the
/// datapath pass in execution order and replayed by the coordinator at
/// the cycle barrier. Everything order-sensitive (f64 latency sums,
/// telemetry records, slab recycling) lives behind these events; the
/// pass itself only mutates its own band's routers and NIs.
#[derive(Debug, Clone, Copy)]
enum SimEvent {
    /// A flit entered `(router, vc)` from the local NI (heatmap ledger).
    Buffer { r: u32, vc: u8 },
    /// A packet's head flit left its NI (lifecycle stamp).
    HeadInject(PacketId),
    /// A flit left `(router, vc)` through the crossbar (heatmap ledger).
    Pop { r: u32, vc: u8 },
    /// Arbitration skipped an occupied slot: crossbar input in use.
    SwitchStall(u32),
    /// No free output VC in the packet's class.
    VcStall(u32),
    /// Downstream buffer full.
    CreditStall(u32),
    /// A flit crossed the link out of `r` through `port`.
    LinkTraversal { r: u32, port: u8 },
    /// A packet's head flit ejected at its destination.
    HeadEject(PacketId),
    /// A packet's tail flit ejected: the coordinator runs the full
    /// delivery bookkeeping (report, windower, flow record, slab free).
    TailEject(PacketId),
}

/// Per-cycle effects of one band's inject + router pass, drained by the
/// coordinator at the cycle barrier in ascending shard order — the fixed
/// merge order that makes any shard count bit-identical to the serial
/// pass (DESIGN.md §16).
#[derive(Default)]
pub(crate) struct ShardSink {
    /// Flits crossing links this cycle (possibly into another band).
    deliveries: Vec<Delivery>,
    /// Credits returned upstream (possibly into another band).
    credits: Vec<Credit>,
    /// Observability events from the inject phase, in execution order.
    inject_events: Vec<SimEvent>,
    /// Events from the router pass (including tail ejections), in order.
    step_events: Vec<SimEvent>,
    /// Routers that received an NI flit this cycle (activity insert).
    injected_routers: Vec<u32>,
    /// Routers that drained to zero buffered flits (activity remove).
    router_removals: Vec<u32>,
    /// NIs that ran out of queued packets (activity remove).
    ni_removals: Vec<u32>,
    /// Link-traversal count delta.
    link_traversals: u64,
    /// Net change to the global buffered-flit count (injects minus pops;
    /// deliveries are counted when applied).
    buffered: isize,
    /// Wall-clock time spent inside [`run_band`] on this sink's shard
    /// (metrics span `sim/shard/band`; zero unless `StepCtx::timed`).
    /// Drained — with `band_count`/`band_max_nanos` — by the coordinator
    /// at the barrier, so timing never feeds back into simulation state.
    band_nanos: u64,
    band_count: u64,
    band_max_nanos: u64,
}

/// Advance one band's NIs and routers by one cycle. Both id lists are
/// global tile indices within `base..base + routers.len()`, ascending;
/// effects land in `sink`. This is the whole per-cycle datapath — the
/// serial driver calls it once over the full mesh, each shard worker
/// over its own row band.
#[allow(clippy::too_many_arguments)] // the shard-worker handoff: bands + worklists + cycle + ctx + sink
pub(crate) fn run_band(
    nis: &mut [Ni],
    routers: &mut [Router],
    base: usize,
    ni_ids: &[u32],
    router_ids: &[u32],
    cycle: u64,
    ctx: &StepCtx,
    sink: &mut ShardSink,
) {
    let start = ctx.timed.then(Instant::now);
    inject_band(nis, routers, base, ni_ids, cycle, ctx, sink);
    step_band(routers, base, router_ids, cycle, ctx, sink);
    if let Some(s) = start {
        let nanos = s.elapsed().as_nanos() as u64;
        sink.band_nanos += nanos;
        sink.band_count += 1;
        sink.band_max_nanos = sink.band_max_nanos.max(nanos);
    }
}

/// NI injection for one band: one flit per cycle per tile into the
/// router's local input port, credit-gated. Band-local by construction —
/// NI `t` only ever feeds router `t`.
fn inject_band(
    nis: &mut [Ni],
    routers: &mut [Router],
    base: usize,
    ni_ids: &[u32],
    cycle: u64,
    ctx: &StepCtx,
    sink: &mut ShardSink,
) {
    for &t in ni_ids {
        let i = t as usize - base;
        inject_tile_core(&mut nis[i], &mut routers[i], t, cycle, ctx, sink);
        if !nis[i].pending() {
            sink.ni_removals.push(t);
        }
    }
}

/// One NI's injection step: select a packet if idle, then push one flit
/// into the router's local input port, credit-gated.
fn inject_tile_core(
    ni: &mut Ni,
    router: &mut Router,
    t: u32,
    cycle: u64,
    ctx: &StepCtx,
    sink: &mut ShardSink,
) {
    // Select a packet if none is mid-injection.
    if ni.current.is_none() {
        let rr = ni.rr_class;
        for off in 0..2 {
            let class = (rr + off) % 2;
            if ni.queues[class].is_empty() {
                continue;
            }
            // Pick the class VC with the most credits.
            let range = class * ctx.vpc..(class + 1) * ctx.vpc;
            if let Some(vc) = range
                .clone()
                .filter(|&v| ni.credits[v] > 0)
                .max_by_key(|&v| ni.credits[v])
            {
                let q = ni.queues[class].pop_front().expect("non-empty");
                ni.current = Some(NiCur {
                    id: q.id,
                    idx: 0,
                    len: q.len,
                    dst: q.dst,
                    vc: vc as u8,
                    mem: class == 1,
                });
                ni.rr_class = (class + 1) % 2;
                break;
            }
        }
    }
    // Push one flit of the current packet if credit allows.
    if let Some(cur) = ni.current {
        let vc = cur.vc as usize;
        if ni.credits[vc] == 0 {
            return;
        }
        let mut flags = if cur.mem { FLIT_MEM } else { 0 };
        if cur.idx == 0 {
            flags |= FLIT_HEAD;
        }
        if cur.idx + 1 == cur.len {
            flags |= FLIT_TAIL;
        }
        ni.credits[vc] -= 1;
        let slot = P_LOCAL * ctx.total_vcs + vc;
        router.inputs[slot].buf.push_back(TimedFlit {
            flit: Flit {
                packet: cur.id,
                dst: cur.dst,
                flags,
            },
            ready: cycle + ctx.stages,
        });
        router.buffered += 1;
        router.occ |= 1 << slot;
        sink.buffered += 1;
        sink.injected_routers.push(t);
        if ctx.probed {
            sink.inject_events
                .push(SimEvent::Buffer { r: t, vc: cur.vc });
            if cur.idx == 0 {
                sink.inject_events.push(SimEvent::HeadInject(cur.id));
            }
        }
        ni.current = if cur.idx + 1 == cur.len {
            None
        } else {
            Some(NiCur {
                idx: cur.idx + 1,
                ..cur
            })
        };
    }
}

/// Router pass for one band: visit the listed routers in ascending order
/// and advance each by one cycle.
fn step_band(
    routers: &mut [Router],
    base: usize,
    router_ids: &[u32],
    cycle: u64,
    ctx: &StepCtx,
    sink: &mut ShardSink,
) {
    for &rid in router_ids {
        let i = rid as usize - base;
        if routers[i].buffered == 0 {
            sink.router_removals.push(rid);
            continue;
        }
        step_router_core(&mut routers[i], rid as usize, cycle, ctx, sink);
        if routers[i].buffered == 0 {
            sink.router_removals.push(rid);
        }
    }
}

/// One cycle of a single router: routing, VC allocation, switch
/// allocation, traversal, credit return. Touches only this router's own
/// state; cross-router effects (deliveries, credits) and observability
/// events go to `sink`.
fn step_router_core(
    router: &mut Router,
    r: usize,
    cycle: u64,
    ctx: &StepCtx,
    sink: &mut ShardSink,
) {
    let total_vcs = ctx.total_vcs;
    // One crossbar input per port and cycle (switch allocation's physical
    // constraint), unless disabled for ablation.
    let mut input_used: u32 = 0;
    // Per output port: route/VC-allocate eligible inputs, then pick one
    // winner round-robin.
    for out_port in 0..NUM_PORTS {
        let occ = router.occ;
        if occ == 0 {
            break;
        }
        // Candidate slots for this output. The unprobed scan visits only
        // slots whose front packet is already routed here plus the
        // still-unrouted occupied slots (their route is computed lazily on
        // first inspection and may point anywhere): a slot routed to a
        // *different* port would fail the route check with no side
        // effects, so skipping it is behaviour-preserving. The probed scan
        // visits every occupied slot exactly like the original router so
        // the heatmap's switch-stall upper bound keeps its historical
        // definition (pinned by the probed≡unprobed determinism tests).
        let cand = if ctx.probed {
            occ
        } else {
            let routed_any = router.routed[0]
                | router.routed[1]
                | router.routed[2]
                | router.routed[3]
                | router.routed[4];
            (router.routed[out_port] | !routed_any) & occ
        };
        if cand == 0 {
            continue;
        }
        let rr_start = router.rr[out_port];
        // Identical round-robin order to a full slot scan: ascending from
        // `rr_start`, then the wrap-around below it.
        let parts = [
            cand & (u64::MAX << rr_start),
            cand & !(u64::MAX << rr_start),
        ];
        let mut winner = usize::MAX;
        'scan: for mut part in parts {
            while part != 0 {
                let slot = part.trailing_zeros() as usize;
                part &= part - 1;
                let in_port = ctx.slot_port[slot] as usize;
                if ctx.crossbar_input_limit && input_used & (1 << in_port) != 0 {
                    // Arbitration-pressure proxy: the slot may not even
                    // want this output port (routing is checked later) or
                    // may not be switch-ready yet, so this counter is an
                    // upper bound (see HeatmapRecord).
                    if ctx.probed {
                        sink.step_events.push(SimEvent::SwitchStall(r as u32));
                    }
                    continue;
                }
                // Routing + VC allocation for the front flit.
                let front = match router.inputs[slot].buf.front() {
                    Some(tf) if tf.ready <= cycle => tf.flit,
                    _ => continue,
                };
                if router.inputs[slot].route.is_none() {
                    debug_assert!(front.is_head(), "routing state lost mid-packet");
                    let here = TileId(r);
                    let dst = TileId(front.dst as usize);
                    let dir = match (ctx.topology, ctx.routing) {
                        (Topology::Mesh, RoutingKind::Xy) => route_xy(&ctx.mesh, here, dst),
                        (Topology::Mesh, RoutingKind::Yx) => route_yx(&ctx.mesh, here, dst),
                        (Topology::Torus, RoutingKind::Xy) => route_xy_torus(&ctx.mesh, here, dst),
                        (Topology::Torus, RoutingKind::Yx) => route_yx_torus(&ctx.mesh, here, dst),
                    };
                    let p = port_of(dir);
                    router.inputs[slot].route = Some(p);
                    router.routed[p] |= 1 << slot;
                }
                if router.inputs[slot].route != Some(out_port) {
                    continue;
                }
                if out_port != P_LOCAL && router.inputs[slot].out_vc.is_none() {
                    let class = front.class_index();
                    let obase = out_port * total_vcs;
                    let range = class * ctx.vpc..(class + 1) * ctx.vpc;
                    let free = range.clone().find(|&v| !router.outputs[obase + v].busy);
                    if let Some(v) = free {
                        router.outputs[obase + v].busy = true;
                        router.inputs[slot].out_vc = Some(v);
                    } else {
                        if ctx.probed {
                            sink.step_events.push(SimEvent::VcStall(r as u32));
                        }
                        continue; // no VC available this cycle
                    }
                }
                if out_port != P_LOCAL {
                    let ovc = router.inputs[slot].out_vc.expect("allocated");
                    if router.outputs[out_port * total_vcs + ovc].credits == 0 {
                        if ctx.probed {
                            sink.step_events.push(SimEvent::CreditStall(r as u32));
                        }
                        continue; // downstream buffer full
                    }
                }
                winner = slot;
                router.rr[out_port] = (slot + 1) % ctx.slots;
                break 'scan;
            }
        }
        if winner == usize::MAX {
            continue;
        }
        let slot = winner;
        let in_port = ctx.slot_port[slot] as usize;
        let vc = slot - in_port * total_vcs;
        input_used |= 1 << in_port;
        // ---- Traversal: pop and move the flit.
        let tf = router.inputs[slot]
            .buf
            .pop_front()
            .expect("winner has a flit");
        if router.inputs[slot].buf.is_empty() {
            router.occ &= !(1 << slot);
        }
        router.buffered -= 1;
        sink.buffered -= 1;
        if ctx.probed {
            sink.step_events.push(SimEvent::Pop {
                r: r as u32,
                vc: vc as u8,
            });
        }
        let flit = tf.flit;
        // Credit back to whoever feeds this input VC.
        if in_port == P_LOCAL {
            sink.credits.push(Credit::Ni { tile: r, vc });
        } else {
            let up = ctx.neighbors[r][in_port];
            if up != u16::MAX {
                sink.credits.push(Credit::Router {
                    router: up as usize,
                    port: opposite(in_port),
                    vc,
                });
            }
        }
        if out_port == P_LOCAL {
            // Ejection: the coordinator replays the bookkeeping (report,
            // windower, flow record, slab recycling) at the barrier.
            if ctx.probed && flit.is_head() {
                sink.step_events.push(SimEvent::HeadEject(flit.packet));
            }
            if flit.is_tail() {
                sink.step_events.push(SimEvent::TailEject(flit.packet));
            }
        } else {
            let ovc = router.inputs[slot].out_vc.expect("allocated");
            router.outputs[out_port * total_vcs + ovc].credits -= 1;
            sink.link_traversals += 1;
            if ctx.probed {
                sink.step_events.push(SimEvent::LinkTraversal {
                    r: r as u32,
                    port: out_port as u8,
                });
            }
            let next = ctx.neighbors[r][out_port];
            debug_assert!(next != u16::MAX, "route stays on chip");
            // Charge the downstream pipeline unless the flit will eject
            // there.
            let extra = if next == flit.dst { 0 } else { ctx.stages };
            sink.deliveries.push(Delivery {
                router: next as usize,
                port: opposite(out_port),
                vc: ovc,
                flit,
                ready: cycle + ctx.link + extra,
            });
            if flit.is_tail() {
                router.outputs[out_port * total_vcs + ovc].busy = false;
            }
        }
        if flit.is_tail() {
            router.inputs[slot].route = None;
            router.routed[out_port] &= !(1 << slot);
            router.inputs[slot].out_vc = None;
        }
    }
}

/// The simulator.
pub struct Network {
    cfg: SimConfig,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    /// Packet metadata slab: slots are recycled through `free_packet_ids`
    /// when a packet's tail flit ejects, so memory stays proportional to
    /// the number of *in-flight* packets rather than total injections.
    packets: Vec<PacketInfo>,
    /// Recycled slab slots available for the next spawned packet.
    free_packet_ids: Vec<PacketId>,
    /// Current / peak number of live slab entries (memory telemetry).
    live_packets: usize,
    peak_live_packets: usize,
    sources: Vec<SourceSpec>,
    /// Cumulative per-source, per-class measured-delivery accumulators
    /// for the [`SwapController`] ([`SourceCounters`]). Empty unless the
    /// run was started through [`run_controlled`](Network::run_controlled),
    /// so the plain path pays one never-taken branch per delivery.
    source_accum: Vec<SourceCounters>,
    /// Nearest memory controller per tile, precomputed.
    nearest_mc: Vec<TileId>,
    rng: SmallRng,
    report: SimReport,
    /// Measured packets still in flight (for the drain phase).
    inflight_measured: u64,
    /// All packets still in flight (measured or not).
    inflight_total: u64,
    /// Flits forwarded over inter-router links (all phases).
    link_flit_traversals: u64,
    /// Total flits buffered anywhere in the network right now
    /// (incrementally maintained; replaces the per-cycle O(routers) scan).
    total_buffered: usize,
    /// Peak total buffered flits across the network, sampled at the end of
    /// every cycle (same sampling point as the original scan).
    peak_buffered: usize,
    /// Cycles actually simulated.
    cycles_run: u64,
    /// Routers with at least one buffered flit.
    active_routers: ActiveSet,
    /// NIs with a queued or mid-injection packet.
    active_nis: ActiveSet,
    /// Reusable per-cycle effect sink for the serial path (drained, never
    /// dropped, so the steady state allocates nothing). The sharded path
    /// keeps one sink per worker inside the [`ShardPool`] instead.
    ///
    /// [`ShardPool`]: crate::shard::ShardPool
    scratch_sink: ShardSink,
    /// Reusable worklist snapshots for the serial path.
    scratch_rids: Vec<u32>,
    scratch_nids: Vec<u32>,
    /// Windowed telemetry accumulator. `None` unless the run was started
    /// through [`run_probed`](Network::run_probed) with an enabled probe,
    /// so the plain [`run`](Network::run) path pays one never-taken branch
    /// per hook and stays bit-identical to the uninstrumented simulator.
    windower: Option<Windower>,
    /// Spatial/flow observability state. Same contract as
    /// [`windower`](Self::windower): `None` on the plain path, so every
    /// hook costs one never-taken branch when telemetry is off.
    flow: Option<Box<FlowState>>,
    /// Accumulating wall-clock phase profile for the current telemetry
    /// window. Populated only when the probe opts in via
    /// `Probe::wants_profile` — the timings are nondeterministic and are
    /// never fed back into simulation state.
    profile: Option<Box<ProfileRecord>>,
    /// Pending `(cycle, source, class)` arrival events under
    /// [`InjectionProcess::Geometric`]; empty under Bernoulli. Ties pop in
    /// `(source, class)` order — the same order the per-cycle Bernoulli
    /// scan visits sources, so spawn order (and with it every downstream
    /// RNG draw) is well defined.
    arrivals: BinaryHeap<Reverse<(u64, u32, u8)>>,
    /// Uniform draws spent on geometric inter-arrival sampling.
    arrival_draws: u64,
    /// Cycles the event-horizon fast-forward jumped over.
    skipped_cycles: u64,
    /// Write-only runtime metrics sink (DESIGN.md §17). Disabled by
    /// default — every instrument then costs one never-taken branch —
    /// and, enabled or not, it never feeds back into simulation state:
    /// a fixed seed produces a bit-identical [`SimReport`] either way
    /// (pinned by `tests/metrics.rs`).
    metrics: MetricsHandle,
}

/// Wall-clock accumulators for the coordinator-side metric spans, kept
/// out of `Network` so one run's timings never leak into the next.
#[derive(Default)]
struct MetricTimes {
    /// Shard-pool dispatch + barrier wait (`sim/shard/barrier`).
    barrier_nanos: u64,
    barrier_count: u64,
    barrier_max: u64,
    /// Sink merge + event replay + transfer apply (`sim/shard/replay`).
    replay_nanos: u64,
    replay_count: u64,
    replay_max: u64,
    /// Worker-side band passes, drained from the sinks (`sim/shard/band`).
    band_nanos: u64,
    band_count: u64,
    band_max: u64,
    /// Full serial-path cycles (`sim/serial/cycle`).
    serial_nanos: u64,
    serial_count: u64,
    serial_max: u64,
}

/// Class tag stored in arrival events (heap tuples order by it).
const CLASS_CACHE: u8 = 0;
const CLASS_MEM: u8 = 1;

/// Cumulative per-source, per-class delivery accumulators fed to a
/// [`SwapController`] (measured packets only). Indexed by *source*,
/// which stays stable across mid-run retargets — unlike
/// [`SimReport::per_source`], which is indexed by spawn-time tile — so
/// diffing consecutive controller calls recovers each workload thread's
/// cache and memory request rates no matter where it currently sits.
#[derive(Debug, Clone, Default)]
pub struct SourceCounters {
    /// Cache-class deliveries of this source.
    pub cache: LatencyAccum,
    /// Memory-class deliveries of this source.
    pub mem: LatencyAccum,
}

impl SourceCounters {
    /// Delivered packets across both classes.
    pub fn packets(&self) -> u64 {
        self.cache.packets + self.mem.packets
    }
}

/// Mid-run mapping-swap hook driven by [`Network::run_controlled`]
/// (DESIGN.md §14.2).
///
/// The controller is invoked once per **flushed** telemetry window, at
/// the cycle boundary where the window closed, with the completed
/// [`WindowRecord`] and the cumulative per-source, per-class
/// [`SourceCounters`] of the run so far (measured packets only, indexed
/// by source — diff consecutive calls to recover per-source rates
/// within the window).
///
/// Returning `Some(tiles)` retargets source `j` to `tiles[j]` starting
/// with the next cycle: future packets of source `j` spawn from (and,
/// for memory traffic, address the controller nearest to) the new tile,
/// while packets already queued or in flight complete under their
/// spawn-time source/destination — the drain-free in-flight-packet rule.
/// The swap perturbs no RNG draws: Bernoulli generation scans sources in
/// index order regardless of tile, and geometric arrival events are
/// keyed by `(cycle, source, class)` with per-*source* rates, so
/// pre-drawn arrival times stay valid. A fixed seed therefore produces a
/// bit-identical run for a given controller decision sequence.
///
/// The vector must hold exactly one tile per source, each in range and
/// all distinct; anything else aborts the run with the corresponding
/// [`ConfigError`].
pub trait SwapController {
    /// Observe a flushed window; optionally request a source retarget.
    fn on_window(
        &mut self,
        record: &WindowRecord,
        per_source: &[SourceCounters],
    ) -> Option<Vec<noc_model::TileId>>;
}

/// Probe adapter for the controlled run: forwards every window to the
/// real probe while keeping a copy of the last flushed record so the
/// [`SwapController`] can observe it.
struct WindowCapture<'a> {
    inner: &'a mut dyn Probe,
    last: Option<WindowRecord>,
}

impl Probe for WindowCapture<'_> {
    fn is_enabled(&self) -> bool {
        true
    }

    fn on_window(&mut self, record: &WindowRecord) {
        self.inner.on_window(record);
        self.last = Some(record.clone());
    }
}

impl Network {
    /// Build a simulator for `cfg` driven by the validated traffic spec
    /// (tiles without a source stay silent).
    ///
    /// [`TrafficSpec::new`] already rejected duplicate tiles and bad
    /// group ids; this re-checks the config invariants and the source
    /// tiles against `cfg.mesh`, so the constructor path is panic-free.
    pub fn new(cfg: SimConfig, traffic: TrafficSpec) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = cfg.mesh.num_tiles();
        traffic.check_tiles(n)?;
        traffic.check_schedules()?;
        let (sources, num_groups) = traffic.into_parts();
        let vcs = cfg.total_vcs();
        let depth = cfg.buffer_depth;
        let nearest_mc = cfg
            .mesh
            .tiles()
            .map(|t| match cfg.topology {
                Topology::Mesh => cfg.controllers.nearest(&cfg.mesh, t),
                Topology::Torus => cfg.controllers.nearest_torus(&cfg.mesh, t),
            })
            .collect();
        Ok(Network {
            routers: (0..n).map(|_| Router::new(vcs, depth)).collect(),
            nis: (0..n).map(|_| Ni::new(vcs, depth)).collect(),
            packets: Vec::new(),
            free_packet_ids: Vec::new(),
            live_packets: 0,
            peak_live_packets: 0,
            sources,
            source_accum: Vec::new(),
            nearest_mc,
            rng: SmallRng::seed_from_u64(cfg.seed),
            report: {
                let mut r = SimReport::new(num_groups);
                r.per_source = vec![crate::stats::LatencyAccum::default(); n];
                r
            },
            inflight_measured: 0,
            inflight_total: 0,
            link_flit_traversals: 0,
            total_buffered: 0,
            peak_buffered: 0,
            cycles_run: 0,
            active_routers: ActiveSet::new(n),
            active_nis: ActiveSet::new(n),
            scratch_sink: ShardSink::default(),
            scratch_rids: Vec::new(),
            scratch_nids: Vec::new(),
            windower: None,
            flow: None,
            profile: None,
            arrivals: BinaryHeap::new(),
            arrival_draws: 0,
            skipped_cycles: 0,
            metrics: MetricsHandle::disabled(),
            cfg,
        })
    }

    /// Attach a runtime-metrics handle (DESIGN.md §17). The run then
    /// reports `sim_*` counters (cycles, injected/delivered packets,
    /// link traversals, skipped cycles), a `sim_shards` gauge, and the
    /// `sim/shard/{barrier,band,replay}` / `sim/serial/cycle` spans.
    /// Metrics are write-only observers: results stay bit-identical to
    /// a run without the handle (the PR 2 purity contract).
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.metrics = metrics;
        self
    }

    /// Run the configured warm-up + measurement + drain, returning the
    /// report. Telemetry stays off (the [`NoopSink`] path).
    pub fn run(self) -> SimReport {
        self.run_probed(&mut NoopSink)
    }

    /// Run with windowed telemetry delivered to `probe`.
    ///
    /// When `probe.is_enabled()`, a [`WindowRecord`] is flushed to
    /// [`Probe::on_window`] for every `cfg.telemetry_window`-cycle window
    /// (truncated at phase boundaries and at the end of the run — see
    /// `noc-telemetry`), and the run additionally produces the DESIGN.md
    /// §12 observability records: a [`FlowSummary`] (per-class/per-group
    /// latency decomposition over measured packets) and a finalized
    /// [`HeatmapRecord`] (per-link/per-VC/per-router spatial counters over
    /// all phases), each delivered once at end of run. Probes that opt in
    /// via [`Probe::wants_packets`] also receive one [`PacketRecord`] per
    /// delivered packet, and [`Probe::wants_profile`] adds per-window
    /// wall-clock phase profiles ([`ProfileRecord`], nondeterministic).
    /// The probe observes the simulation but never influences it: a fixed
    /// seed produces a bit-identical [`SimReport`] whatever the probe
    /// (pinned by `tests/sim_determinism.rs`).
    ///
    /// [`WindowRecord`]: noc_telemetry::WindowRecord
    pub fn run_probed(self, probe: &mut dyn Probe) -> SimReport {
        match self.run_inner(probe, None) {
            Ok(report) => report,
            // The only fallible step of a run is applying a controller's
            // retarget vector; without a controller this arm cannot be
            // reached, and the empty report keeps the path panic-free.
            Err(_) => SimReport::new(0),
        }
    }

    /// [`run_probed`](Self::run_probed) plus a [`SwapController`]
    /// observing every flushed telemetry window and optionally
    /// retargeting the traffic sources at that boundary — the
    /// deterministic mid-run mapping swap (DESIGN.md §14.2).
    ///
    /// Windowed telemetry is collected even when the probe is disabled
    /// (the controller needs it); the probe still receives records only
    /// according to its own contract. Returns an error if the controller
    /// produces an invalid retarget vector (wrong length, out-of-range
    /// or duplicate tiles); the run is abandoned at that point.
    ///
    /// With a controller that never retargets, the report is
    /// [semantically identical](SimReport::semantic_eq) to the unprobed
    /// run: the extra windowing only changes how far the event-horizon
    /// fast-forward may jump (`skipped_cycles`), never what is computed.
    pub fn run_controlled(
        self,
        probe: &mut dyn Probe,
        controller: &mut dyn SwapController,
    ) -> Result<SimReport, ConfigError> {
        self.run_inner(probe, Some(controller))
    }

    fn run_inner(
        mut self,
        probe: &mut dyn Probe,
        mut controller: Option<&mut dyn SwapController>,
    ) -> Result<SimReport, ConfigError> {
        let ctx = self.step_ctx(probe.is_enabled());
        let shards = self.cfg.effective_shards();
        if shards > 1 {
            let ctx = std::sync::Arc::new(ctx);
            let rows = self.cfg.mesh.rows();
            let cols = self.cfg.mesh.cols();
            // Workers live exactly as long as the drive loop: the scope
            // joins them after the pool (and with it the command channels)
            // is dropped.
            std::thread::scope(|scope| {
                let mut pool =
                    crate::shard::ShardPool::start(scope, rows, cols, shards, ctx.clone());
                let out = self.drive(probe, controller.as_deref_mut(), &ctx, Some(&mut pool));
                drop(pool);
                out
            })
        } else {
            self.drive(probe, controller, &ctx, None)
        }
    }

    /// Immutable datapath context for this run (see [`StepCtx`]).
    fn step_ctx(&self, probed: bool) -> StepCtx {
        let total_vcs = self.cfg.total_vcs();
        let slots = NUM_PORTS * total_vcs;
        let mut slot_port = [0u8; MAX_ARBITRATION_SLOTS];
        for (s, p) in slot_port.iter_mut().enumerate().take(slots) {
            *p = (s / total_vcs) as u8;
        }
        let n = self.cfg.mesh.num_tiles();
        let mut neighbors = vec![[u16::MAX; 4]; n];
        for (t, row) in neighbors.iter_mut().enumerate() {
            for (port, slot) in row.iter_mut().enumerate() {
                if let Some(nb) = neighbor(&self.cfg.mesh, self.cfg.topology, TileId(t), port) {
                    *slot = nb.index() as u16;
                }
            }
        }
        StepCtx {
            mesh: self.cfg.mesh,
            topology: self.cfg.topology,
            routing: self.cfg.routing,
            crossbar_input_limit: self.cfg.crossbar_input_limit,
            stages: self.cfg.router_stages,
            link: self.cfg.link_cycles,
            vpc: self.cfg.vcs_per_class,
            total_vcs,
            slots,
            slot_port,
            neighbors,
            probed,
            timed: self.metrics.enabled(),
        }
    }

    /// The warm-up + measurement + drain loop, shared by the serial and
    /// sharded paths (they differ only in who runs the per-cycle datapath
    /// pass; every coordinator-side effect is applied here, in the same
    /// fixed order).
    fn drive<'c>(
        &mut self,
        probe: &mut dyn Probe,
        mut controller: Option<&mut (dyn SwapController + 'c)>,
        ctx: &StepCtx,
        mut pool: Option<&mut crate::shard::ShardPool>,
    ) -> Result<SimReport, ConfigError> {
        let wall_start = Instant::now();
        // Coordinator-side span accumulators; `timed` hoists the handle
        // check so the disabled path pays one branch per cycle, not four.
        let mut times = MetricTimes::default();
        let timed = self.metrics.enabled();
        if controller.is_some() {
            self.source_accum = vec![SourceCounters::default(); self.sources.len()];
        }
        if probe.is_enabled() || controller.is_some() {
            self.windower = Some(Windower::new(
                self.cfg.telemetry_window,
                self.report.groups.len(),
                self.cfg.warmup_cycles,
                self.cfg.measure_cycles,
            ));
        }
        if probe.is_enabled() {
            self.flow = Some(Box::new(FlowState {
                stamps: Vec::new(),
                summary: FlowSummary::new(self.report.groups.len()),
                heatmap: HeatmapRecord::new(
                    self.cfg.mesh.rows(),
                    self.cfg.mesh.cols(),
                    self.cfg.total_vcs(),
                ),
                wants_packets: probe.wants_packets(),
                pending: Vec::new(),
            }));
            if probe.wants_profile() {
                self.profile = Some(Box::new(ProfileRecord::default()));
            }
        }
        let inject_end = self.cfg.warmup_cycles + self.cfg.measure_cycles;
        let drain_end = inject_end + self.cfg.max_drain_cycles;
        let geometric = self.cfg.injection == InjectionProcess::Geometric;
        if geometric {
            self.seed_arrivals(inject_end);
        }
        // Self-profiling lap mark, advanced after every timed section.
        // `None` unless the probe opted into profiles, so the plain path
        // takes no timestamps beyond the existing `wall_start`.
        let mut mark: Option<Instant> = self.profile.as_ref().map(|_| Instant::now());
        let mut cycle = 0u64;
        while cycle < inject_end || (self.inflight_total > 0 && cycle < drain_end) {
            if cycle < inject_end {
                if geometric {
                    self.generate_geometric(cycle, inject_end);
                } else {
                    self.generate(cycle);
                }
            }
            if let Some(m) = mark.as_mut() {
                let nanos = lap(m);
                if let Some(p) = self.profile.as_mut() {
                    p.generate_nanos += nanos;
                }
            }
            match pool.as_deref_mut() {
                Some(p) => self.cycle_sharded(cycle, p, &mut mark, timed, &mut times),
                None => self.cycle_serial(cycle, ctx, &mut mark, timed, &mut times),
            }
            // `total_buffered` is maintained incrementally; sampling it here
            // (after deliveries are applied) matches the original
            // end-of-cycle scan point exactly.
            self.peak_buffered = self.peak_buffered.max(self.total_buffered);
            // Flush this cycle's delivered-packet records (empty unless the
            // probe asked for per-packet streams) before the window closes,
            // so packet records always precede the window covering them.
            if let Some(fl) = self.flow.as_mut() {
                for rec in fl.pending.drain(..) {
                    probe.on_packet(&rec);
                }
            }
            let mut flushed_window_end = None;
            let mut retarget = None;
            if let Some(w) = self.windower.as_mut() {
                // The current window's (truncation-aware) end, captured
                // before `end_cycle` may flush it and move on.
                let wend = w.current_window_end();
                match controller.as_deref_mut() {
                    Some(ctrl) => {
                        // Tee the flush through a capture so the
                        // controller sees the completed record too.
                        let mut cap = WindowCapture {
                            inner: probe,
                            last: None,
                        };
                        w.end_cycle(cycle, self.total_buffered, self.live_packets, &mut cap);
                        if let Some(rec) = cap.last {
                            retarget = ctrl.on_window(&rec, &self.source_accum);
                        }
                    }
                    None => w.end_cycle(cycle, self.total_buffered, self.live_packets, probe),
                }
                if cycle + 1 == wend {
                    flushed_window_end = Some(wend);
                }
            }
            // Apply a requested mapping swap exactly at the window
            // boundary: packets spawned from the next cycle on use the
            // new source tiles; everything already in flight keeps its
            // spawn-time source and destination.
            if let Some(tiles) = retarget {
                self.retarget_sources(&tiles)?;
            }
            if let Some(m) = mark.as_mut() {
                let nanos = lap(m);
                if let Some(p) = self.profile.as_mut() {
                    p.telemetry_nanos += nanos;
                }
            }
            // A window just flushed: emit its phase profile and start the
            // next one on the same boundary.
            if let Some(wend) = flushed_window_end {
                if let Some(p) = self.profile.as_mut() {
                    let mut rec = **p;
                    rec.end_cycle = wend;
                    **p = ProfileRecord {
                        window_index: rec.window_index + 1,
                        start_cycle: wend,
                        ..ProfileRecord::default()
                    };
                    probe.on_profile(&rec);
                }
            }
            cycle += 1;
            // Event-horizon fast-forward: with nothing in flight (no queued
            // packet, no NI mid-injection, no buffered flit — all implied by
            // `inflight_total == 0`) every cycle until the next arrival is a
            // no-op, so jump straight to it. Clamped to the current
            // telemetry window's final cycle so that cycle executes normally
            // and the window flushes with an exact span; phase boundaries
            // need no extra clamp (windows already truncate at them, and the
            // `measured` flag is evaluated per arrival). Skipping is unsound
            // only during injection with work in flight or during drain —
            // the drain loop exits the moment `inflight_total` hits 0.
            if geometric && self.inflight_total == 0 && cycle < inject_end {
                let mut target = match self.arrivals.peek() {
                    Some(&Reverse((c, _, _))) => c,
                    None => inject_end,
                };
                if let Some(w) = self.windower.as_ref() {
                    target = target.min(w.current_window_end() - 1);
                }
                if target > cycle {
                    self.skipped_cycles += target - cycle;
                    cycle = target;
                }
            }
        }
        if let Some(w) = self.windower.take() {
            w.finish(cycle, self.total_buffered, self.live_packets, probe);
        }
        // Final partial profile window (skipped when the last cycle closed
        // a window exactly, leaving an empty accumulator behind).
        if let Some(p) = self.profile.take() {
            if p.start_cycle < cycle {
                let mut rec = *p;
                rec.end_cycle = cycle;
                probe.on_profile(&rec);
            }
        }
        // End-of-run observability delivery: close the occupancy ledgers,
        // then flow summary before heatmap (documented order).
        if let Some(mut fl) = self.flow.take() {
            fl.heatmap.finalize(cycle);
            probe.on_flow(&fl.summary);
            probe.on_heatmap(&fl.heatmap);
        }
        self.cycles_run = cycle;
        self.report.measured_cycles = self.cfg.measure_cycles;
        self.report.fully_drained = self.inflight_measured == 0;
        self.report.network = crate::stats::NetworkStats {
            link_flit_traversals: self.link_flit_traversals,
            peak_buffered_flits: self.peak_buffered,
            cycles_run: self.cycles_run,
            num_links: 2
                * (self.cfg.mesh.rows() * (self.cfg.mesh.cols() - 1)
                    + self.cfg.mesh.cols() * (self.cfg.mesh.rows() - 1)),
            peak_live_packets: self.peak_live_packets,
            packet_slab_slots: self.packets.len(),
            arrival_draws: self.arrival_draws,
            skipped_cycles: self.skipped_cycles,
            wall_nanos: wall_start.elapsed().as_nanos() as u64,
        };
        // Flush run totals into the metrics registry (write-only; skipped
        // entirely when the handle is disabled). Durations route through
        // `record_span` / `wall_gauge_set`, which the logical clock zeroes
        // so fixed-seed snapshots stay byte-identical.
        if self.metrics.enabled() {
            let m = &self.metrics;
            m.add("sim_runs_total", 1);
            m.add("sim_cycles_total", self.cycles_run);
            m.add("sim_injected_packets_total", self.report.injected);
            m.add("sim_delivered_packets_total", self.report.delivered);
            m.add("sim_link_flit_traversals_total", self.link_flit_traversals);
            m.add("sim_skipped_cycles_total", self.skipped_cycles);
            m.gauge_set("sim_shards", self.cfg.effective_shards() as f64);
            let wall = self.report.network.wall_nanos;
            if wall > 0 {
                m.wall_gauge_set(
                    "sim_cycles_per_sec",
                    self.cycles_run as f64 * 1e9 / wall as f64,
                );
            }
            if times.barrier_count > 0 {
                m.record_span(
                    "sim/shard/barrier",
                    times.barrier_count,
                    times.barrier_nanos,
                    times.barrier_max,
                );
            }
            if times.band_count > 0 {
                m.record_span(
                    "sim/shard/band",
                    times.band_count,
                    times.band_nanos,
                    times.band_max,
                );
            }
            if times.replay_count > 0 {
                m.record_span(
                    "sim/shard/replay",
                    times.replay_count,
                    times.replay_nanos,
                    times.replay_max,
                );
            }
            if times.serial_count > 0 {
                m.record_span(
                    "sim/serial/cycle",
                    times.serial_count,
                    times.serial_nanos,
                    times.serial_max,
                );
            }
        }
        Ok(std::mem::replace(&mut self.report, SimReport::new(0)))
    }

    /// One cycle of the datapath on the serial path: run the full-mesh
    /// band inline, then merge its effect sink exactly as the sharded
    /// barrier would merge many.
    fn cycle_serial(
        &mut self,
        cycle: u64,
        ctx: &StepCtx,
        mark: &mut Option<Instant>,
        timed: bool,
        times: &mut MetricTimes,
    ) {
        let t0 = timed.then(Instant::now);
        let mut sink = std::mem::take(&mut self.scratch_sink);
        let mut nids = std::mem::take(&mut self.scratch_nids);
        let mut rids = std::mem::take(&mut self.scratch_rids);
        let n = ctx.neighbors.len();
        self.active_nis.collect_range(0, n, &mut nids);
        inject_band(
            &mut self.nis,
            &mut self.routers,
            0,
            &nids,
            cycle,
            ctx,
            &mut sink,
        );
        // Same-cycle activation: the router worklist is snapshotted after
        // injection, so a router woken by this cycle's own injected flit
        // is visited (a no-op unless `router_stages == 0` — the flit is
        // not switch-ready before then — but with zero stages it may pop
        // immediately, which is why `effective_shards` pins that corner
        // to the serial path).
        for &t in &sink.injected_routers {
            self.active_routers.insert(t as usize);
        }
        sink.injected_routers.clear();
        if let Some(m) = mark.as_mut() {
            let nanos = lap(m);
            if let Some(p) = self.profile.as_mut() {
                p.inject_nanos += nanos;
            }
        }
        self.active_routers.collect_range(0, n, &mut rids);
        step_band(&mut self.routers, 0, &rids, cycle, ctx, &mut sink);
        self.merge_effects(std::slice::from_mut(&mut sink));
        self.replay_events(cycle, std::slice::from_mut(&mut sink));
        if let Some(m) = mark.as_mut() {
            let nanos = lap(m);
            if let Some(p) = self.profile.as_mut() {
                p.route_nanos += nanos;
            }
        }
        self.apply_transfers(cycle, std::slice::from_mut(&mut sink));
        if let Some(m) = mark.as_mut() {
            let nanos = lap(m);
            if let Some(p) = self.profile.as_mut() {
                p.traverse_nanos += nanos;
            }
        }
        self.scratch_sink = sink;
        self.scratch_nids = nids;
        self.scratch_rids = rids;
        if let Some(t) = t0 {
            let nanos = t.elapsed().as_nanos() as u64;
            times.serial_nanos += nanos;
            times.serial_count += 1;
            times.serial_max = times.serial_max.max(nanos);
        }
    }

    /// One cycle of the datapath on the sharded path: dispatch the cycle
    /// to the workers, block at the barrier, then merge every shard's
    /// effect sink in ascending shard order (DESIGN.md §16).
    fn cycle_sharded(
        &mut self,
        cycle: u64,
        pool: &mut crate::shard::ShardPool,
        mark: &mut Option<Instant>,
        timed: bool,
        times: &mut MetricTimes,
    ) {
        let t0 = timed.then(Instant::now);
        pool.run_cycle(
            cycle,
            &mut self.routers,
            &mut self.nis,
            &self.active_routers,
            &self.active_nis,
        );
        if let Some(t) = t0 {
            let nanos = t.elapsed().as_nanos() as u64;
            times.barrier_nanos += nanos;
            times.barrier_count += 1;
            times.barrier_max = times.barrier_max.max(nanos);
        }
        // The whole worker round-trip lands in the inject span; the
        // profile's phase split is meaningful on the serial path only
        // (wall-clock phases are nondeterministic either way).
        if let Some(m) = mark.as_mut() {
            let nanos = lap(m);
            if let Some(p) = self.profile.as_mut() {
                p.inject_nanos += nanos;
            }
        }
        let mut sinks = pool.take_sinks();
        if timed {
            for s in sinks.iter_mut() {
                times.band_nanos += s.band_nanos;
                times.band_count += s.band_count;
                times.band_max = times.band_max.max(s.band_max_nanos);
                s.band_nanos = 0;
                s.band_count = 0;
                s.band_max_nanos = 0;
            }
        }
        let t1 = timed.then(Instant::now);
        self.merge_effects(&mut sinks);
        self.replay_events(cycle, &mut sinks);
        if let Some(m) = mark.as_mut() {
            let nanos = lap(m);
            if let Some(p) = self.profile.as_mut() {
                p.route_nanos += nanos;
            }
        }
        self.apply_transfers(cycle, &mut sinks);
        if let Some(m) = mark.as_mut() {
            let nanos = lap(m);
            if let Some(p) = self.profile.as_mut() {
                p.traverse_nanos += nanos;
            }
        }
        if let Some(t) = t1 {
            let nanos = t.elapsed().as_nanos() as u64;
            times.replay_nanos += nanos;
            times.replay_count += 1;
            times.replay_max = times.replay_max.max(nanos);
        }
        pool.put_sinks(sinks);
    }

    /// Fold the cheap per-band deltas into coordinator state: activity
    /// worklist membership and global counters. Insertions are applied
    /// before removals; for `router_stages ≥ 1` the two sets are disjoint
    /// (an injected flit cannot pop in the same cycle, so its router
    /// cannot have drained), making the order immaterial.
    fn merge_effects(&mut self, sinks: &mut [ShardSink]) {
        for sink in sinks.iter_mut() {
            for &t in &sink.ni_removals {
                self.active_nis.remove(t as usize);
            }
            sink.ni_removals.clear();
            for &t in &sink.injected_routers {
                self.active_routers.insert(t as usize);
            }
            sink.injected_routers.clear();
            for &r in &sink.router_removals {
                self.active_routers.remove(r as usize);
            }
            sink.router_removals.clear();
            self.link_flit_traversals += sink.link_traversals;
            sink.link_traversals = 0;
            self.total_buffered = (self.total_buffered as isize + sink.buffered) as usize;
            sink.buffered = 0;
        }
    }

    /// Replay the order-sensitive side effects recorded by the datapath
    /// pass: all inject-phase events (ascending tile within a shard,
    /// shards ascending), then all router-pass events in the same order —
    /// exactly the sequence the pre-shard simulator produced inline, so
    /// every f64 accumulation and telemetry record is bit-identical.
    fn replay_events(&mut self, cycle: u64, sinks: &mut [ShardSink]) {
        for sink in sinks.iter_mut() {
            for ev in sink.inject_events.drain(..) {
                self.replay_event(cycle, ev);
            }
        }
        for sink in sinks.iter_mut() {
            for ev in sink.step_events.drain(..) {
                self.replay_event(cycle, ev);
            }
        }
    }

    fn replay_event(&mut self, cycle: u64, ev: SimEvent) {
        match ev {
            SimEvent::TailEject(pid) => self.eject_tail(pid, cycle),
            SimEvent::Buffer { r, vc } => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_buffer(r as usize, vc as usize, cycle);
                }
            }
            SimEvent::HeadInject(pid) => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.stamps[pid as usize].head_inject = cycle;
                }
            }
            SimEvent::Pop { r, vc } => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_pop(r as usize, vc as usize, cycle);
                }
            }
            SimEvent::SwitchStall(r) => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_switch_stall(r as usize);
                }
            }
            SimEvent::VcStall(r) => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_vc_stall(r as usize);
                }
            }
            SimEvent::CreditStall(r) => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_credit_stall(r as usize);
                }
            }
            SimEvent::LinkTraversal { r, port } => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_link_traversal(r as usize, port as usize);
                }
            }
            SimEvent::HeadEject(pid) => {
                if let Some(fl) = self.flow.as_mut() {
                    fl.stamps[pid as usize].head_eject = cycle;
                }
            }
        }
    }

    /// Full tail-ejection bookkeeping for one delivered packet: flow
    /// record, report accumulation, controller counters, windower hook,
    /// in-flight counters and slab recycling — in the exact order of the
    /// pre-shard inline ejection path.
    fn eject_tail(&mut self, pid: PacketId, cycle: u64) {
        let info = self.packets[pid as usize].clone();
        let latency = cycle - info.inject_cycle + 1;
        let ideal = info.hops as u64 * self.cfg.per_hop_cycles() + info.len as u64;
        if let Some(fl) = self.flow.as_mut() {
            let stamps = fl.stamps[pid as usize];
            let rec = PacketRecord {
                src: info.src.index(),
                dst: info.dst.index(),
                cache: info.class == PacketClass::Cache,
                group: info.group,
                flits: info.len,
                hops: info.hops,
                enqueue_cycle: info.inject_cycle,
                inject_cycle: stamps.head_inject,
                head_eject_cycle: stamps.head_eject,
                tail_eject_cycle: cycle,
                measured: info.measured,
            };
            // The flow summary reconciles with the report, so it covers
            // measured packets only; opted-in per-packet streams carry
            // every delivery.
            if info.measured {
                fl.summary.record(&rec);
            }
            if fl.wants_packets {
                fl.pending.push(rec);
            }
        }
        if info.measured {
            self.report.record(
                info.group,
                info.src.index(),
                info.class,
                latency,
                info.hops,
                info.len,
                ideal,
            );
            if !self.source_accum.is_empty() {
                let acc = &mut self.source_accum[info.source as usize];
                match info.class {
                    PacketClass::Cache => acc.cache.record(latency, info.hops, info.len, ideal),
                    PacketClass::Memory => acc.mem.record(latency, info.hops, info.len, ideal),
                }
            }
            self.inflight_measured -= 1;
        }
        if let Some(w) = self.windower.as_mut() {
            w.on_eject(
                info.class == PacketClass::Cache,
                info.group,
                latency,
                info.hops,
                info.len,
                ideal,
            );
        }
        self.inflight_total -= 1;
        // The tail leaving the network means no live flit references this
        // id any more: recycle the slab slot.
        self.free_packet_ids.push(pid);
        self.live_packets -= 1;
    }

    /// Apply the cross-router transfers at the barrier: every shard's
    /// deliveries (ascending shard order), then every shard's credits —
    /// the same all-deliveries-then-all-credits order as the serial pass.
    fn apply_transfers(&mut self, cycle: u64, sinks: &mut [ShardSink]) {
        let total_vcs = self.cfg.total_vcs();
        for sink in sinks.iter_mut() {
            for d in sink.deliveries.drain(..) {
                let router = &mut self.routers[d.router];
                router.inputs[d.port * total_vcs + d.vc]
                    .buf
                    .push_back(TimedFlit {
                        flit: d.flit,
                        ready: d.ready,
                    });
                router.buffered += 1;
                router.occ |= 1 << (d.port * total_vcs + d.vc);
                self.total_buffered += 1;
                self.active_routers.insert(d.router);
                if let Some(fl) = self.flow.as_mut() {
                    fl.heatmap.on_buffer(d.router, d.vc, cycle);
                }
            }
        }
        for sink in sinks.iter_mut() {
            for c in sink.credits.drain(..) {
                match c {
                    Credit::Router { router, port, vc } => {
                        self.routers[router].outputs[port * total_vcs + vc].credits += 1;
                    }
                    Credit::Ni { tile, vc } => {
                        self.nis[tile].credits[vc] += 1;
                    }
                }
            }
        }
    }

    /// Retarget source `j` to `tiles[j]` for all future spawns, after
    /// validating the vector (one tile per source, in range, all
    /// distinct). Schedules, groups and pre-drawn arrival events are
    /// untouched — the workload follows its thread to the new tile.
    fn retarget_sources(&mut self, tiles: &[TileId]) -> Result<(), ConfigError> {
        if tiles.len() != self.sources.len() {
            return Err(ConfigError::RetargetLength {
                got: tiles.len(),
                expected: self.sources.len(),
            });
        }
        let n = self.cfg.mesh.num_tiles();
        let mut seen = vec![false; n];
        for &t in tiles {
            if t.index() >= n {
                return Err(ConfigError::SourceTileOutOfRange {
                    tile: t.index(),
                    num_tiles: n,
                });
            }
            if seen[t.index()] {
                return Err(ConfigError::DuplicateSourceTile(t.index()));
            }
            seen[t.index()] = true;
        }
        for (s, &t) in self.sources.iter_mut().zip(tiles) {
            s.tile = t;
        }
        Ok(())
    }

    /// Seed the arrival heap for [`InjectionProcess::Geometric`]: one
    /// pending event per `(source, class)` whose schedule produces an
    /// arrival before `inject_end`. Sources are sampled in ascending index
    /// order, cache class before memory — the same order the Bernoulli
    /// scan consumes the RNG, so same-cycle events pop identically.
    fn seed_arrivals(&mut self, inject_end: u64) {
        for si in 0..self.sources.len() {
            if let Some(c) = self.sources[si].cache.next_arrival(
                0,
                inject_end,
                &mut self.rng,
                &mut self.arrival_draws,
            ) {
                self.arrivals.push(Reverse((c, si as u32, CLASS_CACHE)));
            }
            if let Some(c) = self.sources[si].mem.next_arrival(
                0,
                inject_end,
                &mut self.rng,
                &mut self.arrival_draws,
            ) {
                self.arrivals.push(Reverse((c, si as u32, CLASS_MEM)));
            }
        }
    }

    /// Geometric packet generation: pop every arrival event due this
    /// cycle, spawn its packet, and resample that `(source, class)` pair's
    /// next arrival. Equivalent in distribution to [`generate`]
    /// (`Network::generate`) but O(arrivals) instead of O(sources) per
    /// cycle.
    fn generate_geometric(&mut self, cycle: u64, inject_end: u64) {
        let measured = cycle >= self.cfg.warmup_cycles;
        let n = self.cfg.mesh.num_tiles();
        while let Some(&Reverse((c, si, class))) = self.arrivals.peek() {
            if c > cycle {
                break;
            }
            self.arrivals.pop();
            let si = si as usize;
            if class == CLASS_CACHE {
                let dst = TileId(self.rng.gen_range(0..n));
                self.spawn_packet(si, PacketClass::Cache, dst, cycle, measured);
            } else {
                let dst = self.nearest_mc[self.sources[si].tile.index()];
                self.spawn_packet(si, PacketClass::Memory, dst, cycle, measured);
            }
            let sched = if class == CLASS_CACHE {
                &self.sources[si].cache
            } else {
                &self.sources[si].mem
            };
            if let Some(next) = sched.next_arrival(
                cycle + 1,
                inject_end,
                &mut self.rng,
                &mut self.arrival_draws,
            ) {
                self.arrivals.push(Reverse((next, si as u32, class)));
            }
        }
    }

    /// Bernoulli packet generation at every source.
    fn generate(&mut self, cycle: u64) {
        let measured = cycle >= self.cfg.warmup_cycles;
        let n = self.cfg.mesh.num_tiles();
        for si in 0..self.sources.len() {
            // cache class
            let rate = self.sources[si].cache.rate_at(cycle);
            if rate > 0.0 && self.rng.gen_bool(rate.min(1.0)) {
                let dst = TileId(self.rng.gen_range(0..n));
                self.spawn_packet(si, PacketClass::Cache, dst, cycle, measured);
            }
            // memory class
            let rate = self.sources[si].mem.rate_at(cycle);
            if rate > 0.0 && self.rng.gen_bool(rate.min(1.0)) {
                let dst = self.nearest_mc[self.sources[si].tile.index()];
                self.spawn_packet(si, PacketClass::Memory, dst, cycle, measured);
            }
        }
    }

    fn spawn_packet(
        &mut self,
        source_idx: usize,
        class: PacketClass,
        dst: TileId,
        cycle: u64,
        measured: bool,
    ) {
        let src = self.sources[source_idx].tile;
        let group = self.sources[source_idx].group;
        let len = if self.rng.gen_bool(self.cfg.long_fraction) {
            self.cfg.long_flits
        } else {
            1
        };
        let hops = self.cfg.topology.hops(&self.cfg.mesh, src, dst) as u32;
        if measured {
            self.report.injected += 1;
        }
        if let Some(w) = self.windower.as_mut() {
            w.on_inject(len as u64);
        }
        if src == dst {
            // Local bank / local controller: no network traversal, zero
            // latency (the Eq. (2) exception).
            if measured {
                self.report.record(group, src.index(), class, 0, 0, len, 0);
                if !self.source_accum.is_empty() {
                    let acc = &mut self.source_accum[source_idx];
                    match class {
                        PacketClass::Cache => acc.cache.record(0, 0, len, 0),
                        PacketClass::Memory => acc.mem.record(0, 0, len, 0),
                    }
                }
            }
            if let Some(w) = self.windower.as_mut() {
                w.on_eject(class == PacketClass::Cache, group, 0, 0, len, 0);
            }
            if let Some(fl) = self.flow.as_mut() {
                // All four lifecycle stamps coincide: the decomposition is
                // all-zero, matching the recorded zero latency.
                let rec = PacketRecord {
                    src: src.index(),
                    dst: dst.index(),
                    cache: class == PacketClass::Cache,
                    group,
                    flits: len,
                    hops: 0,
                    enqueue_cycle: cycle,
                    inject_cycle: cycle,
                    head_eject_cycle: cycle,
                    tail_eject_cycle: cycle,
                    measured,
                };
                if measured {
                    fl.summary.record(&rec);
                }
                if fl.wants_packets {
                    fl.pending.push(rec);
                }
            }
            return;
        }
        let info = PacketInfo {
            src,
            dst,
            source: source_idx as u32,
            class,
            group,
            len,
            inject_cycle: cycle,
            hops,
            measured,
        };
        // Slab allocation: reuse a slot freed by a delivered packet if one
        // exists. Packet ids carry no ordering semantics anywhere in the
        // router pipeline, so recycling them cannot change behaviour.
        let id = match self.free_packet_ids.pop() {
            Some(id) => {
                self.packets[id as usize] = info;
                id
            }
            None => {
                let id = self.packets.len() as PacketId;
                self.packets.push(info);
                id
            }
        };
        if let Some(fl) = self.flow.as_mut() {
            // Keep the stamp slab parallel to the packet slab and reset the
            // recycled slot.
            if fl.stamps.len() <= id as usize {
                fl.stamps.resize(id as usize + 1, PacketStamps::default());
            }
            fl.stamps[id as usize] = PacketStamps::default();
        }
        self.live_packets += 1;
        self.peak_live_packets = self.peak_live_packets.max(self.live_packets);
        self.nis[src.index()].queues[class_index(class)].push_back(NiQueued {
            id,
            len,
            dst: dst.index() as u16,
        });
        self.active_nis.insert(src.index());
        self.inflight_total += 1;
        if measured {
            self.inflight_measured += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::Schedule;
    use noc_model::MemoryControllers;

    fn quiet_config(mesh: Mesh) -> SimConfig {
        let mut cfg = SimConfig::paper_defaults(mesh);
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 2_000;
        cfg.max_drain_cycles = 5_000;
        cfg
    }

    /// Test shorthand for the validated construction path.
    fn net(cfg: SimConfig, sources: Vec<SourceSpec>, groups: usize) -> Network {
        Network::new(cfg, TrafficSpec::new(sources, groups).expect("traffic")).expect("config")
    }

    /// One source, one deterministic destination (memory traffic to a
    /// single controller) — uncontended latency must match Eq. (2) exactly.
    #[test]
    fn uncontended_latency_matches_eq2() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        // single controller far from the source: src (0,0), mc (3,3) → 6 hops
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 0.0; // all single-flit
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01), // sparse: no self-contention
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.fully_drained);
        assert!(report.memory.packets > 0, "no packets generated");
        // H=6, per-hop 4, 1 flit → latency 25, td_q = 0.
        assert!(
            (report.memory.apl() - 25.0).abs() < 1e-9,
            "APL {}",
            report.memory.apl()
        );
        assert!(report.mean_td_q().abs() < 1e-9);
    }

    /// Same setup on a torus: the wraparound links shorten (0,0)→(3,3)
    /// from 6 mesh hops to 2 torus hops, and the simulated uncontended
    /// latency must follow Eq. (2) with the torus hop count.
    #[test]
    fn torus_uncontended_latency_matches_eq2() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.topology = Topology::Torus;
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 0.0;
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01),
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.fully_drained);
        assert!(report.memory.packets > 0, "no packets generated");
        // H = torus_hops((0,0),(3,3)) = 2, per-hop 4, 1 flit → latency 9.
        assert!(
            (report.memory.apl() - 9.0).abs() < 1e-9,
            "APL {}",
            report.memory.apl()
        );
        assert!(report.mean_td_q().abs() < 1e-9);
    }

    /// A torus run at the paper's low loads must deliver every measured
    /// packet (the shortest-direction router is deadlock-free in practice
    /// at validation loads) under both routing variants.
    #[test]
    fn torus_delivers_everything_at_low_load() {
        for routing in [RoutingKind::Xy, RoutingKind::Yx] {
            let mesh = Mesh::square(4);
            let mut cfg = quiet_config(mesh);
            cfg.topology = Topology::Torus;
            cfg.routing = routing;
            cfg.measure_cycles = 3_000;
            let sources: Vec<SourceSpec> = mesh
                .tiles()
                .map(|t| SourceSpec {
                    tile: t,
                    group: 0,
                    cache: Schedule::Constant(0.02),
                    mem: Schedule::Constant(0.01),
                })
                .collect();
            let report = net(cfg, sources, 1).run();
            assert!(report.fully_drained, "torus {routing:?} failed to drain");
            assert_eq!(report.injected, report.delivered);
        }
    }

    #[test]
    fn long_packets_add_serialization() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 1.0; // all 5-flit
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01),
        };
        let report = net(cfg, vec![src], 1).run();
        // H=6: 6·4 + 5 = 29 cycles. Back-to-back 5-flit injections can
        // occasionally overlap at the NI, so allow a sub-cycle of queueing.
        assert!(
            (report.memory.apl() - 29.0).abs() < 0.5,
            "APL {}",
            report.memory.apl()
        );
        // No packet can beat the ideal.
        assert!(report.memory.apl() >= 29.0 - 1e-9);
    }

    #[test]
    fn flit_conservation_under_load() {
        // Every measured packet injected must be delivered after drain.
        let mesh = Mesh::square(4);
        let cfg = quiet_config(mesh);
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(0.01),
                mem: Schedule::Constant(0.002),
            })
            .collect();
        let report = net(cfg, sources, 2).run();
        assert!(report.fully_drained, "drain failed");
        assert_eq!(report.injected, report.delivered);
        assert!(report.injected > 0);
    }

    #[test]
    fn low_load_tdq_below_one_cycle() {
        // The paper's observation: td_q ≈ 0–1 cycles at evaluated loads.
        let mesh = Mesh::square(8);
        let mut cfg = quiet_config(mesh);
        cfg.warmup_cycles = 1_000;
        cfg.measure_cycles = 10_000;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::per_kilocycle(8.0), // Table 3 scale
                mem: Schedule::per_kilocycle(1.2),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.fully_drained);
        let tdq = report.mean_td_q();
        assert!((0.0..1.0).contains(&tdq), "td_q {tdq} out of paper range");
    }

    #[test]
    fn self_packets_count_as_zero_latency() {
        // A corner tile sending memory traffic to its own controller.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.measure_cycles = 300;
        let src = SourceSpec {
            tile: TileId(0), // corner = controller tile
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.05),
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.memory.packets > 0);
        assert_eq!(report.memory.apl(), 0.0);
        assert_eq!(report.injected, report.delivered);
    }

    #[test]
    fn cache_destinations_cover_the_mesh() {
        // With uniform hashing, mean cache hop count from a corner must be
        // close to the analytic H̄C (Eq. 3).
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.warmup_cycles = 0;
        // ~3000 packets: the sample std of mean hops is ≈0.03, so the 0.15
        // tolerance is ~5σ and the test is robust to the RNG stream (the
        // original 60k-cycle/0.01-rate version sampled only ~580 packets
        // and sat within 3σ of failure).
        cfg.measure_cycles = 150_000;
        cfg.seed = 3;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.02),
            mem: Schedule::Constant(0.0),
        };
        let report = net(cfg, vec![src], 1).run();
        // analytic mean hops from corner of 4×4 = 3.0 (over all dst incl self)
        let measured = report.cache.total_hops as f64 / report.cache.packets as f64;
        assert!((measured - 3.0).abs() < 0.15, "mean hops {measured} vs 3.0");
    }

    #[test]
    fn deterministic_contention_creates_queueing() {
        // Two heavy sources in the same row share the path to a single
        // far-away controller: the shared links must show td_q > 0.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(3)]).expect("valid placement");
        cfg.long_fraction = 1.0;
        cfg.measure_cycles = 5_000;
        cfg.max_drain_cycles = 50_000;
        let mk = |t: usize| SourceSpec {
            tile: TileId(t),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.15), // 0.75 flits/cycle each: contended
        };
        let report = net(cfg, vec![mk(0), mk(1)], 1).run();
        assert!(report.fully_drained, "{}", report.summary());
        assert!(
            report.mean_td_q() > 0.1,
            "expected queueing under contention, td_q {}",
            report.mean_td_q()
        );
    }

    #[test]
    fn stress_tiny_buffers_still_conserves() {
        // Worst-case resources: 1-flit buffers, 1 VC per class. Wormhole +
        // XY must stay deadlock-free and deliver everything.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.buffer_depth = 1;
        cfg.vcs_per_class = 1;
        cfg.measure_cycles = 4_000;
        cfg.max_drain_cycles = 100_000;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.05),
                mem: Schedule::Constant(0.01),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.fully_drained, "{}", report.summary());
        assert_eq!(report.injected, report.delivered);
    }

    #[test]
    fn congested_memory_does_not_stop_cache_traffic() {
        // Class-partitioned VCs: saturating the memory class must not
        // prevent cache packets from draining.
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.measure_cycles = 4_000;
        cfg.max_drain_cycles = 400_000;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.02),
                mem: Schedule::Constant(0.2), // memory class saturated
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.cache.packets > 0);
        // Cache latency inflates a little (shared switches/links) but must
        // stay far below the collapsed memory-class latency.
        assert!(
            report.cache.apl() < report.memory.apl(),
            "cache {} vs memory {}",
            report.cache.apl(),
            report.memory.apl()
        );
    }

    #[test]
    fn undrained_runs_are_reported() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.measure_cycles = 2_000;
        cfg.max_drain_cycles = 0; // no drain allowed
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.05),
                mem: Schedule::Constant(0.01),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(!report.fully_drained);
        assert!(report.delivered < report.injected);
    }

    #[test]
    fn yx_routing_delivers_everything() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.routing = crate::config::RoutingKind::Yx;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.02),
                mem: Schedule::Constant(0.004),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        assert!(report.fully_drained);
        assert_eq!(report.injected, report.delivered);
    }

    #[test]
    fn link_utilization_reported() {
        let mesh = Mesh::square(4);
        let cfg = quiet_config(mesh);
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: Schedule::Constant(0.02),
                mem: Schedule::Constant(0.004),
            })
            .collect();
        let report = net(cfg, sources, 1).run();
        let util = report.network.mean_link_utilization();
        assert!(util > 0.0 && util < 1.0, "utilization {util}");
        assert!(report.network.peak_buffered_flits > 0);
        assert_eq!(report.network.num_links, 2 * (4 * 3 + 4 * 3));
    }

    #[test]
    fn idealized_switch_is_never_slower() {
        let mesh = Mesh::square(4);
        let run = |limit: bool| {
            let mut cfg = quiet_config(mesh);
            cfg.crossbar_input_limit = limit;
            cfg.measure_cycles = 8_000;
            let sources: Vec<SourceSpec> = mesh
                .tiles()
                .map(|t| SourceSpec {
                    tile: t,
                    group: 0,
                    cache: Schedule::Constant(0.05),
                    mem: Schedule::Constant(0.01),
                })
                .collect();
            net(cfg, sources, 1).run()
        };
        let physical = run(true);
        let ideal = run(false);
        assert!(physical.fully_drained && ideal.fully_drained);
        // Identical traffic (same seed): the idealized switch can only
        // reduce queueing.
        assert!(
            ideal.g_apl() <= physical.g_apl() + 1e-9,
            "ideal {} vs physical {}",
            ideal.g_apl(),
            physical.g_apl()
        );
    }

    #[test]
    fn duplicate_sources_rejected() {
        let s = SourceSpec::idle(TileId(0));
        assert_eq!(
            TrafficSpec::new(vec![s.clone(), s], 1).unwrap_err(),
            ConfigError::DuplicateSourceTile(0)
        );
    }

    #[test]
    fn out_of_range_tile_rejected_by_network() {
        let mesh = Mesh::square(2);
        let cfg = quiet_config(mesh);
        let spec = TrafficSpec::new(vec![SourceSpec::idle(TileId(9))], 1).expect("shape ok");
        assert_eq!(
            Network::new(cfg, spec).err(),
            Some(ConfigError::SourceTileOutOfRange {
                tile: 9,
                num_tiles: 4
            })
        );
    }

    #[test]
    fn invalid_config_rejected_by_network() {
        let mesh = Mesh::square(2);
        let mut cfg = quiet_config(mesh);
        cfg.vcs_per_class = 8; // 5 ports × 16 VCs = 80 slots > 64
        let spec = TrafficSpec::new(vec![SourceSpec::idle(TileId(0))], 1).expect("shape ok");
        assert_eq!(
            Network::new(cfg, spec).err(),
            Some(ConfigError::VcOverflow {
                ports: 5,
                total_vcs: 16
            })
        );
    }

    /// Geometric sampling + fast-forward must preserve the Eq. (2)
    /// uncontended-latency invariant exactly: every measured packet takes
    /// `H·(stages+link) + L` cycles, td_q = 0.
    #[test]
    fn geometric_uncontended_latency_matches_eq2() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.injection = crate::config::InjectionProcess::Geometric;
        cfg.controllers =
            MemoryControllers::try_custom(&mesh, vec![TileId(15)]).expect("valid placement");
        cfg.long_fraction = 0.0; // all single-flit
        cfg.measure_cycles = 5_000;
        let src = SourceSpec {
            tile: TileId(0),
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.01), // sparse: no self-contention
        };
        let report = net(cfg, vec![src], 1).run();
        assert!(report.fully_drained);
        assert!(report.memory.packets > 0, "no packets generated");
        // H=6, per-hop 4, 1 flit → latency 25, td_q = 0 — and APL equality
        // (not just proximity) proves *every* packet hit the ideal.
        assert!(
            (report.memory.apl() - 25.0).abs() < 1e-9,
            "APL {}",
            report.memory.apl()
        );
        assert!(report.mean_td_q().abs() < 1e-9);
        // The fast path actually engaged: one draw per packet (plus any
        // discarded cross-epoch draws — none for a constant schedule) and
        // long quiescent stretches skipped.
        assert!(report.network.arrival_draws > 0);
        assert!(
            report.network.skipped_cycles > report.network.cycles_run / 2,
            "skipped {} of {} cycles",
            report.network.skipped_cycles,
            report.network.cycles_run
        );
    }

    #[test]
    fn geometric_conserves_flits_under_load() {
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.injection = crate::config::InjectionProcess::Geometric;
        let sources: Vec<SourceSpec> = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: t.index() % 2,
                cache: Schedule::Constant(0.01),
                mem: Schedule::Constant(0.002),
            })
            .collect();
        let report = net(cfg, sources, 2).run();
        assert!(report.fully_drained, "drain failed");
        assert_eq!(report.injected, report.delivered);
        assert!(report.injected > 0);
    }

    /// Same scenario, both injection processes: the arrival *distribution*
    /// is identical, so mean rates must agree (streams differ — this is a
    /// statistical check, pinned exactly by `tests/sim_determinism.rs`).
    #[test]
    fn geometric_mean_injection_rate_matches_bernoulli() {
        let mesh = Mesh::square(4);
        let run = |inj: crate::config::InjectionProcess| {
            let mut cfg = quiet_config(mesh);
            cfg.injection = inj;
            cfg.measure_cycles = 60_000;
            let spec =
                TrafficSpec::uniform(&mesh, Schedule::Constant(0.008), Schedule::Constant(0.002));
            Network::new(cfg, spec).expect("config").run()
        };
        let b = run(crate::config::InjectionProcess::BernoulliPerCycle);
        let g = run(crate::config::InjectionProcess::Geometric);
        assert_eq!(b.network.arrival_draws, 0);
        assert!(g.network.arrival_draws > 0);
        // 16 tiles × 0.01 pkt/cycle × 60k cycles ≈ 9600 expected packets;
        // σ ≈ √9600 ≈ 98, so 5% is a ~5σ band for the ratio.
        let ratio = g.injected as f64 / b.injected as f64;
        assert!((ratio - 1.0).abs() < 0.05, "injection ratio {ratio}");
    }

    /// The probe observes but must not perturb — under Geometric too, even
    /// though window-boundary clamping changes which cycles get skipped.
    #[test]
    fn geometric_probed_run_is_semantically_identical() {
        use noc_telemetry::{Phase, RingSink};
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.injection = crate::config::InjectionProcess::Geometric;
        cfg.warmup_cycles = 300;
        cfg.telemetry_window = 250;
        let spec =
            TrafficSpec::uniform(&mesh, Schedule::Constant(0.002), Schedule::Constant(0.0004));
        let plain = Network::new(cfg.clone(), spec.clone())
            .expect("config")
            .run();
        let mut ring = RingSink::new(4096);
        let probed = Network::new(cfg.clone(), spec)
            .expect("config")
            .run_probed(&mut ring);
        assert!(plain.semantic_eq(&probed), "probe perturbed the simulation");
        // Clamping at window boundaries may reduce the probed run's skip
        // tally, but never below zero or above the plain run's.
        assert!(probed.network.skipped_cycles <= plain.network.skipped_cycles);
        assert!(ring.dropped() == 0);
        let windows: Vec<_> = ring.windows().collect();
        assert!(!windows.is_empty());
        // Window spans must tile the run exactly despite skipped regions.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
        }
        assert_eq!(
            windows.last().expect("nonempty").end_cycle,
            probed.network.cycles_run
        );
        let measured: u64 = windows
            .iter()
            .filter(|w| w.phase == Phase::Measure)
            .map(|w| w.width())
            .sum();
        assert_eq!(measured, cfg.measure_cycles);
    }

    /// The probe observes but must not perturb: a probed run's report is
    /// bit-identical to the unprobed run, and its measure-phase windows
    /// tile the measurement exactly.
    #[test]
    fn probed_run_is_bit_identical_and_windows_tile() {
        use noc_telemetry::{Phase, RingSink};
        let mesh = Mesh::square(4);
        let mut cfg = quiet_config(mesh);
        cfg.warmup_cycles = 300;
        cfg.telemetry_window = 250;
        let spec = TrafficSpec::uniform(&mesh, Schedule::Constant(0.02), Schedule::Constant(0.004));
        let plain = Network::new(cfg.clone(), spec.clone())
            .expect("config")
            .run();
        let mut ring = RingSink::new(4096);
        let probed = Network::new(cfg.clone(), spec)
            .expect("config")
            .run_probed(&mut ring);
        assert!(plain.semantic_eq(&probed), "probe perturbed the simulation");
        assert!(ring.dropped() == 0);
        let windows: Vec<_> = ring.windows().collect();
        assert!(!windows.is_empty());
        let measured: u64 = windows
            .iter()
            .filter(|w| w.phase == Phase::Measure)
            .map(|w| w.width())
            .sum();
        assert_eq!(measured, cfg.measure_cycles);
        let injected: u64 = windows.iter().map(|w| w.injected_packets).sum();
        let ejected: u64 = windows.iter().map(|w| w.ejected_packets).sum();
        // Windows count *all* packets (warm-up included), so they can only
        // exceed the measured-only report counters; after a full drain
        // every injected packet ejected.
        assert!(injected >= probed.injected);
        assert_eq!(injected, ejected);
        // Consecutive windows tile the run without gaps.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
        }
        assert_eq!(
            windows.last().expect("nonempty").end_cycle,
            probed.network.cycles_run
        );
    }
}
