//! Sharded parallel simulation: row-band mesh partitioning with a
//! cycle-boundary barrier (DESIGN.md §16).
//!
//! The mesh is split into horizontal row bands, one worker thread per
//! band. Every cycle the coordinator sends each worker a command naming
//! the cycle and the band's active routers/NIs; the worker advances its
//! band's NI injection and router pass ([`run_band`]) against its own
//! slice of the router/NI arrays, accumulating all cross-band and
//! order-sensitive effects in a private [`ShardSink`]. The coordinator
//! then receives every sink — *in ascending shard order*, which is the
//! barrier — and merges them exactly as the serial path merges its one
//! sink, so any shard count is bit-identical to `shards = 1`.
//!
//! # Safety
//!
//! Workers access the coordinator's `Vec<Router>` / `Vec<Ni>` through raw
//! band pointers. Soundness rests on three invariants:
//!
//! 1. **Disjointness** — band `i` covers tiles `base..base + len`, and
//!    bands partition `0..n`: no two workers ever alias an element, and
//!    band pointers are derived per cycle without overlap.
//! 2. **Temporal exclusivity** — pointers are re-derived from the live
//!    `&mut` slices at every [`ShardPool::run_cycle`] call and sent with
//!    the command; the coordinator touches neither array between sending
//!    the commands and receiving every response, and workers only touch
//!    their band between receiving a command and sending its response.
//!    The mpsc channel endpoints provide the happens-before edges in both
//!    directions.
//! 3. **Stability** — both `Vec`s are sized at construction and never
//!    reallocated during a run, so a band pointer derived at dispatch
//!    stays valid until the barrier.
//!
//! Workers hold no simulator state of their own: RNG draws, telemetry,
//! the packet slab and every f64 accumulation stay on the coordinator,
//! which is why the RNG stream and all report fields are trivially
//! unchanged by the shard count.

use crate::network::{run_band, ActiveSet, Ni, Router, ShardSink, StepCtx};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::Scope;

/// Raw pointers to one band's slice of the router/NI arrays, re-derived
/// every cycle (see the module-level safety notes).
struct BandPtr {
    routers: *mut Router,
    nis: *mut Ni,
    base: usize,
    len: usize,
}

// SAFETY: the pointers name a disjoint band of the coordinator's arrays
// and are only dereferenced between the command send and the response
// send of the same cycle (module-level invariants 1–3).
unsafe impl Send for BandPtr {}

/// One cycle's work order for a shard worker.
struct ShardCmd {
    cycle: u64,
    band: BandPtr,
    router_ids: Vec<u32>,
    ni_ids: Vec<u32>,
    sink: ShardSink,
}

/// Worker response: the filled sink plus the recycled id buffers.
type ShardRes = (ShardSink, Vec<u32>, Vec<u32>);

struct ShardHandle {
    /// First tile of the band.
    base: usize,
    /// Tiles in the band.
    len: usize,
    tx: Sender<ShardCmd>,
    rx: Receiver<ShardRes>,
    /// Recycled worklist buffers (router ids, NI ids).
    spare: Option<(Vec<u32>, Vec<u32>)>,
}

/// The per-run worker pool: one thread per row band, driven one cycle at
/// a time by [`run_cycle`](ShardPool::run_cycle). Dropping the pool
/// closes the command channels, which ends every worker loop — the
/// enclosing `thread::scope` then joins them.
pub(crate) struct ShardPool {
    handles: Vec<ShardHandle>,
    /// Each shard's effect sink, parked here between cycles (index =
    /// shard = ascending band order, the deterministic merge order).
    sinks: Vec<ShardSink>,
}

impl ShardPool {
    /// Partition `rows` into `shards` contiguous row bands (callers
    /// guarantee `1 ≤ shards ≤ rows` via `SimConfig::effective_shards`)
    /// and spawn one worker per band onto `scope`.
    pub(crate) fn start<'scope, 'env>(
        scope: &'scope Scope<'scope, 'env>,
        rows: usize,
        cols: usize,
        shards: usize,
        ctx: Arc<StepCtx>,
    ) -> ShardPool {
        let mut handles = Vec::with_capacity(shards);
        let mut sinks = Vec::with_capacity(shards);
        for i in 0..shards {
            let r0 = i * rows / shards;
            let r1 = (i + 1) * rows / shards;
            let base = r0 * cols;
            let len = (r1 - r0) * cols;
            let (cmd_tx, cmd_rx) = channel::<ShardCmd>();
            let (res_tx, res_rx) = channel::<ShardRes>();
            let ctx = Arc::clone(&ctx);
            scope.spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    let ShardCmd {
                        cycle,
                        band,
                        router_ids,
                        ni_ids,
                        mut sink,
                    } = cmd;
                    // SAFETY: module-level invariants 1–3 — the band is
                    // disjoint from every other worker's, the coordinator
                    // is parked in `recv` until this worker responds, and
                    // the arrays outlive the cycle.
                    let routers = unsafe { std::slice::from_raw_parts_mut(band.routers, band.len) };
                    let nis = unsafe { std::slice::from_raw_parts_mut(band.nis, band.len) };
                    run_band(
                        nis,
                        routers,
                        band.base,
                        &ni_ids,
                        &router_ids,
                        cycle,
                        &ctx,
                        &mut sink,
                    );
                    if res_tx.send((sink, router_ids, ni_ids)).is_err() {
                        break;
                    }
                }
            });
            handles.push(ShardHandle {
                base,
                len,
                tx: cmd_tx,
                rx: res_rx,
                spare: Some((Vec::new(), Vec::new())),
            });
            sinks.push(ShardSink::default());
        }
        ShardPool { handles, sinks }
    }

    /// Advance every band by one cycle: dispatch all commands, then block
    /// at the barrier until every shard has responded. On return the
    /// per-shard sinks (in ascending shard order) hold the cycle's
    /// effects, ready for the coordinator's merge.
    pub(crate) fn run_cycle(
        &mut self,
        cycle: u64,
        routers: &mut [Router],
        nis: &mut [Ni],
        active_routers: &ActiveSet,
        active_nis: &ActiveSet,
    ) {
        let rbase = routers.as_mut_ptr();
        let nbase = nis.as_mut_ptr();
        for (i, h) in self.handles.iter_mut().enumerate() {
            let (mut rids, mut nids) = h.spare.take().unwrap_or_default();
            active_routers.collect_range(h.base, h.base + h.len, &mut rids);
            active_nis.collect_range(h.base, h.base + h.len, &mut nids);
            let sink = std::mem::take(&mut self.sinks[i]);
            // SAFETY: `base + len ≤ routers.len()` by the band partition,
            // so both offsets stay within the allocations.
            let band = BandPtr {
                routers: unsafe { rbase.add(h.base) },
                nis: unsafe { nbase.add(h.base) },
                base: h.base,
                len: h.len,
            };
            // A send can only fail if the worker died (worker code is
            // panic-free by the crate's gate); the paired `recv` below
            // then reports it by leaving the sink empty.
            let _ = h.tx.send(ShardCmd {
                cycle,
                band,
                router_ids: rids,
                ni_ids: nids,
                sink,
            });
        }
        for (i, h) in self.handles.iter_mut().enumerate() {
            if let Ok((sink, rids, nids)) = h.rx.recv() {
                self.sinks[i] = sink;
                h.spare = Some((rids, nids));
            }
        }
    }

    /// Take the per-shard sinks for merging (ascending shard order).
    pub(crate) fn take_sinks(&mut self) -> Vec<ShardSink> {
        std::mem::take(&mut self.sinks)
    }

    /// Return the drained sinks for reuse next cycle.
    pub(crate) fn put_sinks(&mut self, sinks: Vec<ShardSink>) {
        self.sinks = sinks;
    }
}
