//! Packets and flits.

use noc_model::{PacketClass, TileId};

/// Identifier of an in-flight packet (index into the simulator's packet
/// table).
pub type PacketId = u32;

/// Flag bit: this flit is its packet's head.
pub const FLIT_HEAD: u8 = 1;
/// Flag bit: this flit is its packet's tail.
pub const FLIT_TAIL: u8 = 1 << 1;
/// Flag bit: the packet travels in the memory class (clear = cache).
pub const FLIT_MEM: u8 = 1 << 2;

/// One flit on the wire. The payload is irrelevant to timing, but the
/// flit carries everything the router datapath needs — destination tile
/// and class alongside the position markers — so routing, VC allocation
/// and delivery never have to chase the packet id into the metadata
/// slab. That keeps the hot arbitration loop free of slab cache misses
/// and makes a router shard self-contained: the slab stays owned by the
/// coordinator, which resolves ids only when a tail ejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    pub packet: PacketId,
    /// Destination tile index (meshes are capped at 65536 tiles —
    /// `ConfigError::MeshTooLarge`).
    pub dst: u16,
    /// Position and class bits ([`FLIT_HEAD`] | [`FLIT_TAIL`] |
    /// [`FLIT_MEM`]).
    pub flags: u8,
}

impl Flit {
    /// Whether this is the packet's head flit.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.flags & FLIT_HEAD != 0
    }

    /// Whether this is the packet's tail flit.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.flags & FLIT_TAIL != 0
    }

    /// Traffic-class index (0 = cache, 1 = memory), matching the VC
    /// partition.
    #[inline]
    pub fn class_index(&self) -> usize {
        ((self.flags & FLIT_MEM) >> 2) as usize
    }
}

/// Metadata of a packet, kept in a side table.
#[derive(Debug, Clone)]
pub struct PacketInfo {
    pub src: TileId,
    pub dst: TileId,
    /// Index of the traffic source that spawned the packet. `src` is the
    /// spawn-time *tile*; the source index stays stable across mid-run
    /// retargets ([`SwapController`](crate::SwapController)), so
    /// per-source accounting follows the workload, not the floorplan.
    pub source: u32,
    pub class: PacketClass,
    /// Traffic group (application id) for per-application accounting.
    pub group: usize,
    /// Length in flits.
    pub len: u16,
    /// Cycle the packet was created at the source NI.
    pub inject_cycle: u64,
    /// Minimal hop count of its route.
    pub hops: u32,
    /// Whether the packet was created during the measurement window.
    pub measured: bool,
}

/// Observability-only lifecycle stamps of an in-flight packet, kept in a
/// side slab parallel to the [`PacketInfo`] slab and only when a probe is
/// attached. `PacketInfo.inject_cycle` already records creation at the
/// source NI (the enqueue stamp); these add the two head-flit transitions
/// needed for the DESIGN.md §12 latency decomposition. Never read by the
/// simulation itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketStamps {
    /// Cycle the head flit entered the source router's local input port.
    pub head_inject: u64,
    /// Cycle the head flit ejected at the destination.
    pub head_eject: u64,
}

impl PacketInfo {
    /// Expand into the flit sequence.
    pub fn flits(&self, id: PacketId) -> impl Iterator<Item = Flit> + '_ {
        let len = self.len;
        let dst = self.dst.index() as u16;
        let class = if self.class == PacketClass::Memory {
            FLIT_MEM
        } else {
            0
        };
        (0..len).map(move |i| {
            let mut flags = class;
            if i == 0 {
                flags |= FLIT_HEAD;
            }
            if i + 1 == len {
                flags |= FLIT_TAIL;
            }
            Flit {
                packet: id,
                dst,
                flags,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_expansion_markers() {
        let p = PacketInfo {
            src: TileId(0),
            dst: TileId(5),
            source: 0,
            class: PacketClass::Cache,
            group: 0,
            len: 5,
            inject_cycle: 0,
            hops: 3,
            measured: true,
        };
        let flits: Vec<Flit> = p.flits(7).collect();
        assert_eq!(flits.len(), 5);
        assert!(flits[0].is_head() && !flits[0].is_tail());
        assert!(flits[4].is_tail() && !flits[4].is_head());
        assert!(flits[1..4].iter().all(|f| !f.is_head() && !f.is_tail()));
        assert!(flits.iter().all(|f| f.packet == 7));
        assert!(flits.iter().all(|f| f.dst == 5));
        assert!(flits.iter().all(|f| f.class_index() == 0));
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let p = PacketInfo {
            src: TileId(0),
            dst: TileId(1),
            source: 0,
            class: PacketClass::Memory,
            group: 1,
            len: 1,
            inject_cycle: 3,
            hops: 1,
            measured: false,
        };
        let flits: Vec<Flit> = p.flits(0).collect();
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_head() && flits[0].is_tail());
        assert_eq!(flits[0].class_index(), 1);
    }
}
