//! Packets and flits.

use noc_model::{PacketClass, TileId};

/// Identifier of an in-flight packet (index into the simulator's packet
/// table).
pub type PacketId = u32;

/// One flit on the wire. Flits carry only their packet id and position
/// markers; the payload is irrelevant to timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    pub packet: PacketId,
    pub is_head: bool,
    pub is_tail: bool,
}

/// Metadata of a packet, kept in a side table.
#[derive(Debug, Clone)]
pub struct PacketInfo {
    pub src: TileId,
    pub dst: TileId,
    /// Index of the traffic source that spawned the packet. `src` is the
    /// spawn-time *tile*; the source index stays stable across mid-run
    /// retargets ([`SwapController`](crate::SwapController)), so
    /// per-source accounting follows the workload, not the floorplan.
    pub source: u32,
    pub class: PacketClass,
    /// Traffic group (application id) for per-application accounting.
    pub group: usize,
    /// Length in flits.
    pub len: u16,
    /// Cycle the packet was created at the source NI.
    pub inject_cycle: u64,
    /// Minimal hop count of its route.
    pub hops: u32,
    /// Whether the packet was created during the measurement window.
    pub measured: bool,
}

/// Observability-only lifecycle stamps of an in-flight packet, kept in a
/// side slab parallel to the [`PacketInfo`] slab and only when a probe is
/// attached. `PacketInfo.inject_cycle` already records creation at the
/// source NI (the enqueue stamp); these add the two head-flit transitions
/// needed for the DESIGN.md §12 latency decomposition. Never read by the
/// simulation itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketStamps {
    /// Cycle the head flit entered the source router's local input port.
    pub head_inject: u64,
    /// Cycle the head flit ejected at the destination.
    pub head_eject: u64,
}

impl PacketInfo {
    /// Expand into the flit sequence.
    pub fn flits(&self, id: PacketId) -> impl Iterator<Item = Flit> + '_ {
        let len = self.len;
        (0..len).map(move |i| Flit {
            packet: id,
            is_head: i == 0,
            is_tail: i + 1 == len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_expansion_markers() {
        let p = PacketInfo {
            src: TileId(0),
            dst: TileId(5),
            source: 0,
            class: PacketClass::Cache,
            group: 0,
            len: 5,
            inject_cycle: 0,
            hops: 3,
            measured: true,
        };
        let flits: Vec<Flit> = p.flits(7).collect();
        assert_eq!(flits.len(), 5);
        assert!(flits[0].is_head && !flits[0].is_tail);
        assert!(flits[4].is_tail && !flits[4].is_head);
        assert!(flits[1..4].iter().all(|f| !f.is_head && !f.is_tail));
        assert!(flits.iter().all(|f| f.packet == 7));
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let p = PacketInfo {
            src: TileId(0),
            dst: TileId(1),
            source: 0,
            class: PacketClass::Memory,
            group: 1,
            len: 1,
            inject_cycle: 3,
            hops: 1,
            measured: false,
        };
        let flits: Vec<Flit> = p.flits(0).collect();
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_head && flits[0].is_tail);
    }
}
