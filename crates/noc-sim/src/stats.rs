//! Measurement accumulators and the simulation report.

use noc_model::PacketClass;
use serde_like_display::display_f64;

// The latency accumulator moved to `noc-telemetry` (windowed telemetry
// records and end-of-run reports share one histogram implementation);
// re-exported here so existing `noc_sim::stats::LatencyAccum` /
// `noc_sim::LatencyAccum` imports keep working.
pub use noc_telemetry::LatencyAccum;

/// Tiny helper module so the report prints nicely without serde_json.
mod serde_like_display {
    pub fn display_f64(x: f64) -> String {
        format!("{x:.3}")
    }
}

/// Aggregate network-level counters (all simulation phases, not just the
/// measurement window).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkStats {
    /// Flits forwarded over inter-router links.
    pub link_flit_traversals: u64,
    /// Peak number of flits buffered anywhere in the network at once.
    pub peak_buffered_flits: usize,
    /// Total cycles simulated (warm-up + measure + drain).
    pub cycles_run: u64,
    /// Unidirectional inter-router links in the mesh.
    pub num_links: usize,
    /// Peak number of packets simultaneously alive (queued at an NI or with
    /// flits in the network). Bounds the packet-table footprint.
    pub peak_live_packets: usize,
    /// Final size of the packet slab: with slot recycling this tracks
    /// `peak_live_packets`, not the total packet count.
    pub packet_slab_slots: usize,
    /// Uniform draws consumed by geometric inter-arrival sampling — one
    /// per generated packet plus one per discarded cross-epoch draw.
    /// Always 0 under `InjectionProcess::BernoulliPerCycle`.
    pub arrival_draws: u64,
    /// Cycles the event-horizon fast-forward jumped over while the network
    /// was fully quiescent (counted inside `cycles_run`). Excluded from
    /// [`semantic_eq`]: probed runs clamp jumps at telemetry window
    /// boundaries, so like [`wall_nanos`](Self::wall_nanos) this describes
    /// how the run executed, not what it computed.
    ///
    /// [`semantic_eq`]: NetworkStats::semantic_eq
    pub skipped_cycles: u64,
    /// Wall-clock time of the whole `run()` call, in nanoseconds.
    /// Nondeterministic; excluded from [`semantic_eq`].
    ///
    /// [`semantic_eq`]: NetworkStats::semantic_eq
    pub wall_nanos: u64,
}

impl NetworkStats {
    /// Alias for [`link_flit_traversals`](Self::link_flit_traversals):
    /// flits forwarded over inter-router links, i.e. total flit-hops over
    /// all phases. The heatmap conservation law says the per-link counts
    /// of a probed run's `HeatmapRecord` sum to exactly this.
    pub fn flit_hops(&self) -> u64 {
        self.link_flit_traversals
    }

    /// Mean link utilization: flit-traversals per link per cycle.
    pub fn mean_link_utilization(&self) -> f64 {
        if self.cycles_run == 0 || self.num_links == 0 {
            0.0
        } else {
            self.link_flit_traversals as f64 / (self.cycles_run as f64 * self.num_links as f64)
        }
    }

    /// Simulator throughput: simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.cycles_run as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Work throughput: link flit-traversals per wall-clock second.
    pub fn flit_hops_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.link_flit_traversals as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Equality of everything the simulation semantics determine — i.e.
    /// all counters except the wall-clock measurement and the fast-forward
    /// jump tally (see [`skipped_cycles`](Self::skipped_cycles)).
    pub fn semantic_eq(&self, other: &NetworkStats) -> bool {
        self.link_flit_traversals == other.link_flit_traversals
            && self.peak_buffered_flits == other.peak_buffered_flits
            && self.cycles_run == other.cycles_run
            && self.num_links == other.num_links
            && self.peak_live_packets == other.peak_live_packets
            && self.packet_slab_slots == other.packet_slab_slots
            && self.arrival_draws == other.arrival_draws
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-group (application) accumulators.
    pub groups: Vec<LatencyAccum>,
    /// Per-source-tile accumulators (validating the TC/TM heatmaps from
    /// measurement).
    pub per_source: Vec<LatencyAccum>,
    /// Per-class accumulators.
    pub cache: LatencyAccum,
    pub memory: LatencyAccum,
    /// Cycles in the measurement window.
    pub measured_cycles: u64,
    /// Measured packets injected / delivered (conservation check: equal
    /// after a successful drain).
    pub injected: u64,
    pub delivered: u64,
    /// Whether the drain phase delivered every measured packet.
    pub fully_drained: bool,
    /// Network-level counters (links, buffers).
    pub network: NetworkStats,
}

impl SimReport {
    pub(crate) fn new(num_groups: usize) -> Self {
        SimReport {
            groups: vec![LatencyAccum::default(); num_groups],
            per_source: Vec::new(),
            cache: LatencyAccum::default(),
            memory: LatencyAccum::default(),
            measured_cycles: 0,
            injected: 0,
            delivered: 0,
            fully_drained: false,
            network: NetworkStats::default(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        group: usize,
        src: usize,
        class: PacketClass,
        latency: u64,
        hops: u32,
        flits: u16,
        ideal: u64,
    ) {
        self.groups[group].record(latency, hops, flits, ideal);
        if src < self.per_source.len() {
            self.per_source[src].record(latency, hops, flits, ideal);
        }
        match class {
            PacketClass::Cache => self.cache.record(latency, hops, flits, ideal),
            PacketClass::Memory => self.memory.record(latency, hops, flits, ideal),
        }
        self.delivered += 1;
    }

    /// Per-group APLs.
    pub fn group_apls(&self) -> Vec<f64> {
        self.groups.iter().map(LatencyAccum::apl).collect()
    }

    /// Maximum per-group APL.
    pub fn max_apl(&self) -> f64 {
        self.group_apls().into_iter().fold(0.0, f64::max)
    }

    /// Global APL over every measured packet.
    pub fn g_apl(&self) -> f64 {
        let mut all = LatencyAccum::default();
        all.merge(&self.cache);
        all.merge(&self.memory);
        all.apl()
    }

    /// Mean measured per-hop queueing latency across classes.
    pub fn mean_td_q(&self) -> f64 {
        let mut all = LatencyAccum::default();
        all.merge(&self.cache);
        all.merge(&self.memory);
        all.mean_td_q()
    }

    /// Total flit-hops (dynamic-energy proxy consumed by the power model),
    /// counting only measured packets.
    pub fn total_flit_hops(&self) -> u64 {
        self.cache.flit_hops + self.memory.flit_hops
    }

    /// Total flits injected by measured packets.
    pub fn total_flits(&self) -> u64 {
        self.cache.total_flits + self.memory.total_flits
    }

    /// Equality of everything a fixed seed determines: every accumulator
    /// (bit-for-bit, including f64 sums) and every network counter except
    /// the wall-clock time. Two runs of the same seeded scenario must
    /// satisfy `a.semantic_eq(&b)` — the regression tests rely on it.
    pub fn semantic_eq(&self, other: &SimReport) -> bool {
        self.groups == other.groups
            && self.per_source == other.per_source
            && self.cache == other.cache
            && self.memory == other.memory
            && self.measured_cycles == other.measured_cycles
            && self.injected == other.injected
            && self.delivered == other.delivered
            && self.fully_drained == other.fully_drained
            && self.network.semantic_eq(&other.network)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "g-APL {} | max-APL {} | td_q {} | {}/{} packets{}",
            display_f64(self.g_apl()),
            display_f64(self.max_apl()),
            display_f64(self.mean_td_q()),
            self.delivered,
            self.injected,
            if self.fully_drained {
                ""
            } else {
                " (UNDRAINED)"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_classes() {
        let mut r = SimReport::new(2);
        r.record(0, 0, PacketClass::Cache, 10, 2, 1, 9);
        r.record(1, 0, PacketClass::Memory, 30, 5, 5, 25);
        assert!((r.g_apl() - 20.0).abs() < 1e-12);
        assert!((r.group_apls()[0] - 10.0).abs() < 1e-12);
        assert!((r.max_apl() - 30.0).abs() < 1e-12);
        assert_eq!(r.total_flit_hops(), 2 + 25);
        assert_eq!(r.delivered, 2);
    }
}
