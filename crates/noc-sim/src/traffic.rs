//! Traffic sources: per-tile injection processes and the validated
//! [`TrafficSpec`] bundle the simulator consumes.

use crate::config::ConfigError;
use noc_model::{Mesh, TileId};

/// A time-varying packet injection rate (packets per cycle).
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Constant rate.
    Constant(f64),
    /// Piecewise-constant rate over fixed-length epochs (trace replay).
    /// Cycles beyond the last epoch wrap around, so short traces can drive
    /// long simulations.
    Piecewise { epoch_cycles: u64, rates: Vec<f64> },
}

impl Schedule {
    /// Constant schedule given a rate in requests per kilocycle (the unit
    /// used by the `workload` crate).
    pub fn per_kilocycle(rate: f64) -> Self {
        Schedule::Constant(rate / 1000.0)
    }

    /// Piecewise schedule from per-kilocycle epoch rates.
    pub fn trace_per_kilocycle(epoch_cycles: u64, rates: &[f64]) -> Self {
        assert!(epoch_cycles > 0 && !rates.is_empty());
        Schedule::Piecewise {
            epoch_cycles,
            rates: rates.iter().map(|r| r / 1000.0).collect(),
        }
    }

    /// Injection probability for the given cycle.
    pub fn rate_at(&self, cycle: u64) -> f64 {
        match self {
            Schedule::Constant(r) => *r,
            Schedule::Piecewise {
                epoch_cycles,
                rates,
            } => {
                let epoch = (cycle / epoch_cycles) as usize % rates.len();
                rates[epoch]
            }
        }
    }

    /// Mean rate over one period of the schedule.
    pub fn mean_rate(&self) -> f64 {
        match self {
            Schedule::Constant(r) => *r,
            Schedule::Piecewise { rates, .. } => rates.iter().sum::<f64>() / rates.len() as f64,
        }
    }
}

/// One tile's traffic description.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// The tile this source injects from.
    pub tile: TileId,
    /// Traffic group (application id) for per-application accounting.
    pub group: usize,
    /// Cache-request injection schedule.
    pub cache: Schedule,
    /// Memory-request injection schedule.
    pub mem: Schedule,
}

impl SourceSpec {
    /// A silent source (useful for unmapped tiles).
    pub fn idle(tile: TileId) -> Self {
        SourceSpec {
            tile,
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.0),
        }
    }
}

/// A validated traffic description: the sources and the number of
/// traffic groups (applications) they are partitioned into.
///
/// This is the unit `Network::new` consumes (it used to take the raw
/// `(sources, num_groups)` pair, leaving every caller to re-implement
/// the duplicate/group checks). Construction validates that groups are
/// declared, every source's group is in range, and no two sources share
/// a tile; tile-vs-mesh range is checked against the config's mesh when
/// the spec reaches the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    sources: Vec<SourceSpec>,
    num_groups: usize,
}

impl TrafficSpec {
    /// Validate and bundle a traffic description.
    pub fn new(sources: Vec<SourceSpec>, num_groups: usize) -> Result<Self, ConfigError> {
        if num_groups == 0 {
            return Err(ConfigError::NoGroups);
        }
        let mut tiles: Vec<usize> = sources.iter().map(|s| s.tile.index()).collect();
        tiles.sort_unstable();
        if let Some(w) = tiles.windows(2).find(|w| w[0] == w[1]) {
            return Err(ConfigError::DuplicateSourceTile(w[0]));
        }
        for s in &sources {
            if s.group >= num_groups {
                return Err(ConfigError::GroupOutOfRange {
                    group: s.group,
                    num_groups,
                });
            }
        }
        Ok(TrafficSpec {
            sources,
            num_groups,
        })
    }

    /// One single-group source per tile of `mesh`, all with the same
    /// schedules — the uniform-traffic pattern used by validation tests
    /// and load sweeps.
    pub fn uniform(mesh: &Mesh, cache: Schedule, mem: Schedule) -> Self {
        let sources = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: cache.clone(),
                mem: mem.clone(),
            })
            .collect();
        TrafficSpec {
            sources,
            num_groups: 1,
        }
    }

    /// The validated sources.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// Number of traffic groups (applications).
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Check every source tile against a mesh of `num_tiles` tiles.
    pub(crate) fn check_tiles(&self, num_tiles: usize) -> Result<(), ConfigError> {
        for s in &self.sources {
            if s.tile.index() >= num_tiles {
                return Err(ConfigError::SourceTileOutOfRange {
                    tile: s.tile.index(),
                    num_tiles,
                });
            }
        }
        Ok(())
    }

    /// Decompose into the raw parts.
    pub fn into_parts(self) -> (Vec<SourceSpec>, usize) {
        (self.sources, self.num_groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = Schedule::per_kilocycle(5.0);
        assert!((s.rate_at(0) - 0.005).abs() < 1e-12);
        assert!((s.rate_at(999_999) - 0.005).abs() < 1e-12);
        assert!((s.mean_rate() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn piecewise_wraps() {
        let s = Schedule::trace_per_kilocycle(100, &[10.0, 20.0]);
        assert!((s.rate_at(0) - 0.01).abs() < 1e-12);
        assert!((s.rate_at(99) - 0.01).abs() < 1e-12);
        assert!((s.rate_at(100) - 0.02).abs() < 1e-12);
        assert!((s.rate_at(200) - 0.01).abs() < 1e-12, "wraps around");
        assert!((s.mean_rate() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn idle_source_is_silent() {
        let s = SourceSpec::idle(TileId(3));
        assert_eq!(s.cache.rate_at(42), 0.0);
        assert_eq!(s.mem.rate_at(42), 0.0);
    }

    #[test]
    fn traffic_spec_validates() {
        let ok = TrafficSpec::new(vec![SourceSpec::idle(TileId(0))], 1).expect("valid");
        assert_eq!(ok.sources().len(), 1);
        assert_eq!(ok.num_groups(), 1);

        let s = SourceSpec::idle(TileId(2));
        assert_eq!(
            TrafficSpec::new(vec![s.clone(), s.clone()], 1).unwrap_err(),
            ConfigError::DuplicateSourceTile(2)
        );
        assert_eq!(
            TrafficSpec::new(vec![s.clone()], 0).unwrap_err(),
            ConfigError::NoGroups
        );
        let mut grouped = s;
        grouped.group = 3;
        assert_eq!(
            TrafficSpec::new(vec![grouped], 2).unwrap_err(),
            ConfigError::GroupOutOfRange {
                group: 3,
                num_groups: 2
            }
        );
    }

    #[test]
    fn uniform_covers_the_mesh() {
        let mesh = Mesh::square(4);
        let spec =
            TrafficSpec::uniform(&mesh, Schedule::per_kilocycle(5.0), Schedule::Constant(0.0));
        assert_eq!(spec.sources().len(), 16);
        assert_eq!(spec.num_groups(), 1);
        assert!(spec.sources().iter().all(|s| s.group == 0));
        let (sources, groups) = spec.into_parts();
        assert_eq!((sources.len(), groups), (16, 1));
    }

    #[test]
    fn tile_range_checked_against_mesh() {
        let spec = TrafficSpec::new(vec![SourceSpec::idle(TileId(99))], 1).expect("valid shape");
        assert_eq!(
            spec.check_tiles(16).unwrap_err(),
            ConfigError::SourceTileOutOfRange {
                tile: 99,
                num_tiles: 16
            }
        );
        assert_eq!(spec.check_tiles(100), Ok(()));
    }
}
