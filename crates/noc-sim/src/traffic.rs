//! Traffic sources: per-tile injection processes.

use noc_model::TileId;

/// A time-varying packet injection rate (packets per cycle).
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Constant rate.
    Constant(f64),
    /// Piecewise-constant rate over fixed-length epochs (trace replay).
    /// Cycles beyond the last epoch wrap around, so short traces can drive
    /// long simulations.
    Piecewise { epoch_cycles: u64, rates: Vec<f64> },
}

impl Schedule {
    /// Constant schedule given a rate in requests per kilocycle (the unit
    /// used by the `workload` crate).
    pub fn per_kilocycle(rate: f64) -> Self {
        Schedule::Constant(rate / 1000.0)
    }

    /// Piecewise schedule from per-kilocycle epoch rates.
    pub fn trace_per_kilocycle(epoch_cycles: u64, rates: &[f64]) -> Self {
        assert!(epoch_cycles > 0 && !rates.is_empty());
        Schedule::Piecewise {
            epoch_cycles,
            rates: rates.iter().map(|r| r / 1000.0).collect(),
        }
    }

    /// Injection probability for the given cycle.
    pub fn rate_at(&self, cycle: u64) -> f64 {
        match self {
            Schedule::Constant(r) => *r,
            Schedule::Piecewise {
                epoch_cycles,
                rates,
            } => {
                let epoch = (cycle / epoch_cycles) as usize % rates.len();
                rates[epoch]
            }
        }
    }

    /// Mean rate over one period of the schedule.
    pub fn mean_rate(&self) -> f64 {
        match self {
            Schedule::Constant(r) => *r,
            Schedule::Piecewise { rates, .. } => rates.iter().sum::<f64>() / rates.len() as f64,
        }
    }
}

/// One tile's traffic description.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// The tile this source injects from.
    pub tile: TileId,
    /// Traffic group (application id) for per-application accounting.
    pub group: usize,
    /// Cache-request injection schedule.
    pub cache: Schedule,
    /// Memory-request injection schedule.
    pub mem: Schedule,
}

impl SourceSpec {
    /// A silent source (useful for unmapped tiles).
    pub fn idle(tile: TileId) -> Self {
        SourceSpec {
            tile,
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = Schedule::per_kilocycle(5.0);
        assert!((s.rate_at(0) - 0.005).abs() < 1e-12);
        assert!((s.rate_at(999_999) - 0.005).abs() < 1e-12);
        assert!((s.mean_rate() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn piecewise_wraps() {
        let s = Schedule::trace_per_kilocycle(100, &[10.0, 20.0]);
        assert!((s.rate_at(0) - 0.01).abs() < 1e-12);
        assert!((s.rate_at(99) - 0.01).abs() < 1e-12);
        assert!((s.rate_at(100) - 0.02).abs() < 1e-12);
        assert!((s.rate_at(200) - 0.01).abs() < 1e-12, "wraps around");
        assert!((s.mean_rate() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn idle_source_is_silent() {
        let s = SourceSpec::idle(TileId(3));
        assert_eq!(s.cache.rate_at(42), 0.0);
        assert_eq!(s.mem.rate_at(42), 0.0);
    }
}
