//! Traffic sources: per-tile injection processes and the validated
//! [`TrafficSpec`] bundle the simulator consumes.

use crate::config::ConfigError;
use noc_model::{Mesh, TileId};
use rand::Rng;

/// A time-varying packet injection rate (packets per cycle).
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Constant rate.
    Constant(f64),
    /// Piecewise-constant rate over fixed-length epochs (trace replay).
    /// Cycles beyond the last epoch wrap around, so short traces can drive
    /// long simulations.
    Piecewise { epoch_cycles: u64, rates: Vec<f64> },
}

impl Schedule {
    /// Constant schedule given a rate in requests per kilocycle (the unit
    /// used by the `workload` crate).
    pub fn per_kilocycle(rate: f64) -> Self {
        Schedule::Constant(rate / 1000.0)
    }

    /// Piecewise schedule from per-kilocycle epoch rates.
    ///
    /// Shape problems (`epoch_cycles == 0`, no rates) are not panics here:
    /// they surface as typed [`ConfigError`]s when the schedule reaches
    /// [`TrafficSpec::new`] or the simulator (see [`Schedule::validate`]).
    pub fn trace_per_kilocycle(epoch_cycles: u64, rates: &[f64]) -> Self {
        Schedule::Piecewise {
            epoch_cycles,
            rates: rates.iter().map(|r| r / 1000.0).collect(),
        }
    }

    /// Injection probability for the given cycle. Total: degenerate
    /// piecewise shapes (rejected by [`Schedule::validate`]) read as silent
    /// rather than panicking.
    pub fn rate_at(&self, cycle: u64) -> f64 {
        match self {
            Schedule::Constant(r) => *r,
            Schedule::Piecewise {
                epoch_cycles,
                rates,
            } => {
                if *epoch_cycles == 0 || rates.is_empty() {
                    return 0.0;
                }
                let epoch = (cycle / epoch_cycles) as usize % rates.len();
                rates[epoch]
            }
        }
    }

    /// Check the schedule describes a valid per-cycle arrival probability
    /// stream: rates non-negative and finite, piecewise shapes non-empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let check = |r: f64| {
            if r.is_nan() || r.is_infinite() || r < 0.0 {
                Err(ConfigError::BadRate(r))
            } else {
                Ok(())
            }
        };
        match self {
            Schedule::Constant(r) => check(*r),
            Schedule::Piecewise {
                epoch_cycles,
                rates,
            } => {
                if *epoch_cycles == 0 {
                    return Err(ConfigError::ZeroEpochCycles);
                }
                if rates.is_empty() {
                    return Err(ConfigError::EmptyTrace);
                }
                rates.iter().try_for_each(|&r| check(r))
            }
        }
    }

    /// First cycle at or after `cycle` where the rate may change: the end
    /// of the piecewise epoch containing `cycle`. Constant schedules never
    /// change (`u64::MAX`).
    fn epoch_end(&self, cycle: u64) -> u64 {
        match self {
            Schedule::Constant(_) => u64::MAX,
            Schedule::Piecewise { epoch_cycles, .. } => {
                if *epoch_cycles == 0 {
                    u64::MAX
                } else {
                    (cycle / epoch_cycles)
                        .saturating_add(1)
                        .saturating_mul(*epoch_cycles)
                }
            }
        }
    }

    /// Draw the next arrival cycle in `[from, horizon)` by geometric
    /// inter-arrival sampling, or `None` if no arrival lands before
    /// `horizon`.
    ///
    /// Within a constant-rate epoch the inter-arrival gap of a Bernoulli
    /// process is geometric, so one inverse-CDF draw
    /// (`gap = floor(ln(1-u) / ln(1-p))`, `u` uniform in `[0, 1)` so the
    /// argument of the log stays in `(0, 1]`) replaces per-cycle trials
    /// exactly: `P(gap = k) = (1-p)^k · p`. A draw that lands beyond the
    /// current epoch is discarded and the sampler resamples from the next
    /// epoch's start — valid by memorylessness, and what keeps
    /// [`Schedule::Piecewise`] boundaries exact. `draws` counts uniform
    /// draws consumed (the report's `arrival_draws` telemetry).
    pub(crate) fn next_arrival(
        &self,
        mut from: u64,
        horizon: u64,
        rng: &mut impl Rng,
        draws: &mut u64,
    ) -> Option<u64> {
        loop {
            if from >= horizon {
                return None;
            }
            let p = self.rate_at(from).min(1.0);
            let epoch_end = self.epoch_end(from).min(horizon);
            if p <= 0.0 {
                from = epoch_end;
                continue;
            }
            if p >= 1.0 {
                return Some(from);
            }
            *draws += 1;
            let u: f64 = rng.gen();
            let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
            // f64→u64 casts saturate, so a tail draw (u → 1) cannot wrap.
            let next = from.saturating_add(gap as u64);
            if next < epoch_end {
                return Some(next);
            }
            from = epoch_end;
        }
    }

    /// Mean rate over one period of the schedule.
    pub fn mean_rate(&self) -> f64 {
        match self {
            Schedule::Constant(r) => *r,
            Schedule::Piecewise { rates, .. } => rates.iter().sum::<f64>() / rates.len() as f64,
        }
    }
}

/// One tile's traffic description.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// The tile this source injects from.
    pub tile: TileId,
    /// Traffic group (application id) for per-application accounting.
    pub group: usize,
    /// Cache-request injection schedule.
    pub cache: Schedule,
    /// Memory-request injection schedule.
    pub mem: Schedule,
}

impl SourceSpec {
    /// A silent source (useful for unmapped tiles).
    pub fn idle(tile: TileId) -> Self {
        SourceSpec {
            tile,
            group: 0,
            cache: Schedule::Constant(0.0),
            mem: Schedule::Constant(0.0),
        }
    }
}

/// A validated traffic description: the sources and the number of
/// traffic groups (applications) they are partitioned into.
///
/// This is the unit `Network::new` consumes (it used to take the raw
/// `(sources, num_groups)` pair, leaving every caller to re-implement
/// the duplicate/group checks). Construction validates that groups are
/// declared, every source's group is in range, and no two sources share
/// a tile; tile-vs-mesh range is checked against the config's mesh when
/// the spec reaches the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    sources: Vec<SourceSpec>,
    num_groups: usize,
}

impl TrafficSpec {
    /// Validate and bundle a traffic description.
    pub fn new(sources: Vec<SourceSpec>, num_groups: usize) -> Result<Self, ConfigError> {
        if num_groups == 0 {
            return Err(ConfigError::NoGroups);
        }
        let mut tiles: Vec<usize> = sources.iter().map(|s| s.tile.index()).collect();
        tiles.sort_unstable();
        if let Some(w) = tiles.windows(2).find(|w| w[0] == w[1]) {
            return Err(ConfigError::DuplicateSourceTile(w[0]));
        }
        for s in &sources {
            if s.group >= num_groups {
                return Err(ConfigError::GroupOutOfRange {
                    group: s.group,
                    num_groups,
                });
            }
            s.cache.validate()?;
            s.mem.validate()?;
        }
        Ok(TrafficSpec {
            sources,
            num_groups,
        })
    }

    /// One single-group source per tile of `mesh`, all with the same
    /// schedules — the uniform-traffic pattern used by validation tests
    /// and load sweeps.
    pub fn uniform(mesh: &Mesh, cache: Schedule, mem: Schedule) -> Self {
        let sources = mesh
            .tiles()
            .map(|t| SourceSpec {
                tile: t,
                group: 0,
                cache: cache.clone(),
                mem: mem.clone(),
            })
            .collect();
        TrafficSpec {
            sources,
            num_groups: 1,
        }
    }

    /// The validated sources.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// Number of traffic groups (applications).
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Check every source tile against a mesh of `num_tiles` tiles.
    pub(crate) fn check_tiles(&self, num_tiles: usize) -> Result<(), ConfigError> {
        for s in &self.sources {
            if s.tile.index() >= num_tiles {
                return Err(ConfigError::SourceTileOutOfRange {
                    tile: s.tile.index(),
                    num_tiles,
                });
            }
        }
        Ok(())
    }

    /// Re-check every source schedule. [`TrafficSpec::new`] already did
    /// this, but [`TrafficSpec::uniform`] constructs directly, so the
    /// simulator re-validates at `Network::new`.
    pub(crate) fn check_schedules(&self) -> Result<(), ConfigError> {
        for s in &self.sources {
            s.cache.validate()?;
            s.mem.validate()?;
        }
        Ok(())
    }

    /// Decompose into the raw parts.
    pub fn into_parts(self) -> (Vec<SourceSpec>, usize) {
        (self.sources, self.num_groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let s = Schedule::per_kilocycle(5.0);
        assert!((s.rate_at(0) - 0.005).abs() < 1e-12);
        assert!((s.rate_at(999_999) - 0.005).abs() < 1e-12);
        assert!((s.mean_rate() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn piecewise_wraps() {
        let s = Schedule::trace_per_kilocycle(100, &[10.0, 20.0]);
        assert!((s.rate_at(0) - 0.01).abs() < 1e-12);
        assert!((s.rate_at(99) - 0.01).abs() < 1e-12);
        assert!((s.rate_at(100) - 0.02).abs() < 1e-12);
        assert!((s.rate_at(200) - 0.01).abs() < 1e-12, "wraps around");
        assert!((s.mean_rate() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn idle_source_is_silent() {
        let s = SourceSpec::idle(TileId(3));
        assert_eq!(s.cache.rate_at(42), 0.0);
        assert_eq!(s.mem.rate_at(42), 0.0);
    }

    #[test]
    fn traffic_spec_validates() {
        let ok = TrafficSpec::new(vec![SourceSpec::idle(TileId(0))], 1).expect("valid");
        assert_eq!(ok.sources().len(), 1);
        assert_eq!(ok.num_groups(), 1);

        let s = SourceSpec::idle(TileId(2));
        assert_eq!(
            TrafficSpec::new(vec![s.clone(), s.clone()], 1).unwrap_err(),
            ConfigError::DuplicateSourceTile(2)
        );
        assert_eq!(
            TrafficSpec::new(vec![s.clone()], 0).unwrap_err(),
            ConfigError::NoGroups
        );
        let mut grouped = s;
        grouped.group = 3;
        assert_eq!(
            TrafficSpec::new(vec![grouped], 2).unwrap_err(),
            ConfigError::GroupOutOfRange {
                group: 3,
                num_groups: 2
            }
        );
    }

    #[test]
    fn uniform_covers_the_mesh() {
        let mesh = Mesh::square(4);
        let spec =
            TrafficSpec::uniform(&mesh, Schedule::per_kilocycle(5.0), Schedule::Constant(0.0));
        assert_eq!(spec.sources().len(), 16);
        assert_eq!(spec.num_groups(), 1);
        assert!(spec.sources().iter().all(|s| s.group == 0));
        let (sources, groups) = spec.into_parts();
        assert_eq!((sources.len(), groups), (16, 1));
    }

    #[test]
    fn schedule_validation_rejects_bad_shapes() {
        assert_eq!(
            Schedule::Constant(-0.1).validate().unwrap_err(),
            ConfigError::BadRate(-0.1)
        );
        assert!(Schedule::Constant(f64::NAN).validate().is_err());
        assert!(Schedule::Constant(f64::INFINITY).validate().is_err());
        assert_eq!(
            Schedule::trace_per_kilocycle(0, &[1.0])
                .validate()
                .unwrap_err(),
            ConfigError::ZeroEpochCycles
        );
        assert_eq!(
            Schedule::trace_per_kilocycle(10, &[])
                .validate()
                .unwrap_err(),
            ConfigError::EmptyTrace
        );
        assert!(Schedule::trace_per_kilocycle(10, &[1.0, -2.0])
            .validate()
            .is_err());
        assert_eq!(Schedule::Constant(0.5).validate(), Ok(()));
        assert_eq!(
            Schedule::trace_per_kilocycle(10, &[1.0, 2.0]).validate(),
            Ok(())
        );
        // Degenerate shapes read as silent instead of panicking.
        assert_eq!(Schedule::trace_per_kilocycle(0, &[1.0]).rate_at(5), 0.0);
        assert_eq!(Schedule::trace_per_kilocycle(10, &[]).rate_at(5), 0.0);
        // TrafficSpec::new propagates schedule validation.
        let mut bad = SourceSpec::idle(TileId(0));
        bad.mem = Schedule::Constant(-1.0);
        assert_eq!(
            TrafficSpec::new(vec![bad], 1).unwrap_err(),
            ConfigError::BadRate(-1.0)
        );
    }

    #[test]
    fn next_arrival_respects_horizon_and_zero_rates() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut draws = 0u64;
        assert_eq!(
            Schedule::Constant(0.0).next_arrival(0, 1_000_000, &mut rng, &mut draws),
            None
        );
        assert_eq!(
            Schedule::Constant(0.5).next_arrival(10, 10, &mut rng, &mut draws),
            None,
            "from == horizon"
        );
        assert_eq!(draws, 0, "no uniform spent on degenerate cases");
        // A saturated rate arrives immediately, without a draw.
        assert_eq!(
            Schedule::Constant(1.0).next_arrival(7, 100, &mut rng, &mut draws),
            Some(7)
        );
        assert_eq!(draws, 0);
    }

    #[test]
    fn next_arrival_matches_geometric_distribution() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut draws = 0u64;
        let p = 0.25;
        let s = Schedule::Constant(p);
        let n = 40_000u64;
        let (mut sum, mut zero) = (0u64, 0u64);
        for _ in 0..n {
            let gap = s
                .next_arrival(0, u64::MAX, &mut rng, &mut draws)
                .expect("p > 0");
            sum += gap;
            zero += u64::from(gap == 0);
        }
        assert_eq!(draws, n, "one uniform per arrival");
        // E[gap] = (1-p)/p = 3; P(gap = 0) = p. Both within ~5 sigma.
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean gap {mean}");
        let frac0 = zero as f64 / n as f64;
        assert!((frac0 - p).abs() < 0.011, "P(gap=0) {frac0}");
    }

    #[test]
    fn next_arrival_skips_silent_epochs_exactly() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(4);
        let mut draws = 0u64;
        // Rate 1.0 in odd epochs only: the first arrival from cycle 0 must
        // be exactly the start of the first saturated epoch.
        let s = Schedule::Piecewise {
            epoch_cycles: 50,
            rates: vec![0.0, 1.0],
        };
        assert_eq!(s.next_arrival(0, 1_000, &mut rng, &mut draws), Some(50));
        assert_eq!(draws, 0);
        // From inside the silent epoch, same answer.
        assert_eq!(s.next_arrival(17, 1_000, &mut rng, &mut draws), Some(50));
        // A horizon inside the silent epoch yields nothing.
        assert_eq!(s.next_arrival(100, 150, &mut rng, &mut draws), None);
        assert_eq!(draws, 0);
    }

    #[test]
    fn tile_range_checked_against_mesh() {
        let spec = TrafficSpec::new(vec![SourceSpec::idle(TileId(99))], 1).expect("valid shape");
        assert_eq!(
            spec.check_tiles(16).unwrap_err(),
            ConfigError::SourceTileOutOfRange {
                tile: 99,
                num_tiles: 16
            }
        );
        assert_eq!(spec.check_tiles(100), Ok(()));
    }
}
